//! Quickstart: bridge two heterogeneous protocols **at runtime from
//! models only**.
//!
//! This example builds a miniature pair of incompatible protocols — a
//! binary request/response protocol and a text request/response protocol
//! — entirely from XML model documents (no protocol-specific code), then
//! deploys a Starlink bridge between them and watches a message cross.
//!
//! Run with `cargo run --example quickstart`.

use starlink::core::Starlink;
use starlink::net::{Actor, Context, Datagram, SimAddr, SimNet};

/// MDL for "Beep", a binary protocol: 8-bit opcode, 16-bit payload.
const BEEP_MDL: &str = r#"
  <MDL protocol="Beep" kind="binary">
    <Header type="Beep"><Op>8</Op></Header>
    <Message type="BeepReq"><Rule>Op=1</Rule><Val>16</Val></Message>
    <Message type="BeepResp"><Rule>Op=2</Rule><Val>16</Val></Message>
  </MDL>"#;

/// MDL for "Chat", a text protocol: `VERB arg\r\n` plus header pairs.
const CHAT_MDL: &str = r#"
  <MDL protocol="Chat" kind="text">
    <Types><Arg>Integer</Arg></Types>
    <Header type="Chat">
      <Verb>32</Verb>
      <Arg>13,10</Arg>
      <Fields>13,10:58</Fields>
    </Header>
    <Message type="ChatAsk"><Rule>Verb=ASK</Rule></Message>
    <Message type="ChatTell"><Rule>Verb=TELL</Rule></Message>
  </MDL>"#;

/// The merged automaton: Beep's request becomes Chat's ask; Chat's answer
/// becomes Beep's response. Both colours, the δ-transitions and the
/// translation logic live in one model document (the Fig. 5/8 format).
const BRIDGE_MODEL: &str = r#"
  <Bridge name="beep-chat">
    <ColoredAutomaton protocol="Beep">
      <Color>
        <transport_protocol>udp</transport_protocol>
        <port>4000</port>
        <mode>async</mode>
        <multicast>yes</multicast>
        <group>239.1.0.1</group>
      </Color>
      <State name="b0" initial="true"/>
      <State name="b1" accepting="true"/>
      <Transition from="b0" action="receive" message="BeepReq" to="b1"/>
      <Transition from="b1" action="send" message="BeepResp" to="b0"/>
    </ColoredAutomaton>
    <ColoredAutomaton protocol="Chat">
      <Color>
        <transport_protocol>udp</transport_protocol>
        <port>5000</port>
        <mode>async</mode>
        <multicast>yes</multicast>
        <group>239.1.0.2</group>
      </Color>
      <State name="c0" initial="true"/>
      <State name="c1"/>
      <State name="c2" accepting="true"/>
      <Transition from="c0" action="send" message="ChatAsk" to="c1"/>
      <Transition from="c1" action="receive" message="ChatTell" to="c2"/>
    </ColoredAutomaton>
    <Equivalence target="ChatAsk" sources="BeepReq"/>
    <Equivalence target="BeepResp" sources="ChatTell"/>
    <Delta from="Beep:b1" to="Chat:c0">
      <TranslationLogic>
        <Assignment>
          <Field><Message>ChatAsk</Message><Xpath>/field/primitiveField[label='Arg']/value</Xpath></Field>
          <Field><Message>BeepReq</Message><Xpath>/field/primitiveField[label='Val']/value</Xpath></Field>
        </Assignment>
      </TranslationLogic>
    </Delta>
    <Delta from="Chat:c2" to="Beep:b1">
      <TranslationLogic>
        <Assignment>
          <Field><Message>BeepResp</Message><Xpath>/field/primitiveField[label='Val']/value</Xpath></Field>
          <Field><Message>ChatTell</Message><Xpath>/field/primitiveField[label='Arg']/value</Xpath></Field>
        </Assignment>
      </TranslationLogic>
    </Delta>
  </Bridge>"#;

/// A legacy Beep client: multicasts BeepReq(21), prints the response.
struct BeepClient;

impl Actor for BeepClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(4000).unwrap();
        println!("[{}] beep client: sending BeepReq(21)", ctx.now());
        ctx.udp_send(4000, SimAddr::new("239.1.0.1", 4000), vec![1u8, 0, 21]);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let val = (u16::from(datagram.payload[1]) << 8) | u16::from(datagram.payload[2]);
        println!("[{}] beep client: got BeepResp({val})", ctx.now());
        assert_eq!(val, 42);
    }
}

/// A legacy Chat service: answers `ASK n` with `TELL 2n`.
struct ChatService;

impl Actor for ChatService {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(5000).unwrap();
        ctx.join_group(SimAddr::new("239.1.0.2", 5000));
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let text = String::from_utf8_lossy(&datagram.payload).into_owned();
        let first = text.lines().next().unwrap_or_default();
        println!("[{}] chat service: got {first:?}", ctx.now());
        let n: u64 = first.strip_prefix("ASK ").and_then(|s| s.trim().parse().ok()).unwrap();
        let reply = format!("TELL {}\r\n\r\n", n * 2);
        ctx.udp_send(5000, datagram.from, reply.into_bytes());
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load the protocol models at runtime — this *is* the parser/
    //    composer generation step of §IV-A.
    let mut framework = Starlink::new();
    framework.load_mdl_xml(BEEP_MDL)?;
    framework.load_mdl_xml(CHAT_MDL)?;
    println!("loaded MDLs for: {:?}", framework.protocols());

    // 2. Load the merged automaton + translation logic and validate the
    //    merge constraints of §III-C.
    let merged = framework.load_bridge_xml(BRIDGE_MODEL)?;
    let report = merged.check_merge();
    println!("merge report: {report}");

    // 3. Deploy and run.
    let (engine, stats) = framework.deploy(merged)?;
    let mut sim = SimNet::new(1);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor("10.0.0.3", ChatService);
    sim.add_actor("10.0.0.1", BeepClient);
    sim.run_until_idle();

    println!(
        "bridge completed {} session(s); translation time {}",
        stats.session_count(),
        stats.translation_times()[0],
    );
    assert!(stats.errors().is_empty());
    println!("quickstart ok: a binary-protocol client was answered by a text-protocol service.");
    Ok(())
}
