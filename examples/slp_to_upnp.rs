//! Case study §V-B: **SLP to UPnP** — the paper's hardest case, with
//! "heterogeneity of the protocol messages and the behaviour message
//! sequence": SLP is binary request/response; UPnP needs an SSDP search
//! *and* an HTTP description fetch (the Fig. 4 merged automaton).
//!
//! Run with `cargo run --example slp_to_upnp`.

use starlink::core::Starlink;
use starlink::net::SimNet;
use starlink::protocols::{bridges, slp, upnp, Calibration, DiscoveryProbe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Seven models are loaded for this case (§V-B): the three MDLs, the
    // three coloured automata, and the merged automaton — here the MDLs
    // load from their XML documents and the automata come embedded in the
    // merged model.
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework)?;

    let merged = bridges::slp_to_upnp();
    println!("merged automaton '{}' with parts:", merged.name());
    for part in merged.parts() {
        println!(
            "  {} — {} states, colour {}",
            part.protocol(),
            part.states().len(),
            part.colors()[0]
        );
    }
    let report = merged.check_merge();
    println!(
        "merge check: mergeable={} (weak={}, strong={})",
        report.is_mergeable(),
        report.weakly_merged,
        report.strongly_merged
    );

    let (engine, stats) = framework.deploy(merged)?;

    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(2026);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        upnp::UpnpDevice::new(
            "urn:schemas-upnp-org:service:printer:1",
            "10.0.0.3",
            Calibration::paper(),
        ),
    );
    sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
    sim.run_until_idle();

    // Show what crossed the wire.
    println!("\nnetwork trace:");
    for entry in sim.trace() {
        println!("  [{}] {}", entry.at, entry.description);
    }

    let result = probe.first().expect("SLP client was answered");
    println!("\nSLP client received URL {:?} after {}", result.url, result.elapsed);
    println!(
        "bridge translation time: {} (paper case 1 median: 337 ms)",
        stats.translation_times()[0]
    );
    assert_eq!(result.url, "http://10.0.0.3:5000");
    Ok(())
}
