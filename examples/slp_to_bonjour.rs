//! Case study §V-A: **SLP to Bonjour** — "both binary protocols and
//! their message sequences are similar. They differ in message content
//! and network addresses" (the Fig. 10 merged automaton).
//!
//! The five models of §V-A are loaded: the SLP MDL (Fig. 7), the DNS MDL,
//! the SLP automaton (Fig. 1), the mDNS automaton (Fig. 9), and the
//! merged automaton (Fig. 10) — here exported to its XML document first
//! and loaded back, to demonstrate that the bridge is pure model.
//!
//! Run with `cargo run --example slp_to_bonjour`.

use starlink::automata::bridge_to_xml;
use starlink::core::Starlink;
use starlink::net::SimNet;
use starlink::protocols::{bridges, mdns, slp, Calibration, DiscoveryProbe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut framework = Starlink::new();
    framework.load_mdl_xml(slp::mdl_xml())?; // model i: SLP messages (Fig. 7)
    framework.load_mdl_xml(mdns::mdl_xml())?; // model ii: DNS messages

    // Models iii–v: the coloured automata + merge, via the XML document.
    let bridge_xml = bridge_to_xml(&bridges::slp_to_bonjour());
    println!("merged-automaton model document ({} bytes of XML):\n", bridge_xml.len());
    for line in bridge_xml.lines().take(24) {
        println!("  {line}");
    }
    println!("  ...\n");
    let merged = framework.load_bridge_xml(&bridge_xml)?;
    assert!(merged.check_merge().is_mergeable());

    let (engine, stats) = framework.deploy(merged)?;

    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(11);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::paper(),
        ),
    );
    sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
    sim.run_until_idle();

    let result = probe.first().expect("SLP client was answered");
    println!("SLP client received URL {:?} after {}", result.url, result.elapsed);
    println!(
        "bridge translation time: {} (paper case 2 median: 271 ms)",
        stats.translation_times()[0]
    );
    assert_eq!(result.url, "service:printer://10.0.0.3:631");
    Ok(())
}
