//! The full case-study matrix: all twelve protocol pairs (the paper's
//! §V six plus the six WS-Discovery cases), each running a legacy
//! client of one family against a legacy service of another with the
//! Starlink bridge in between.
//!
//! Run with `cargo run --example discovery_matrix`.

use starlink::core::Starlink;
use starlink::net::SimNet;
use starlink::protocols::{
    bridges::{self, BridgeCase, Family},
    mdns, slp, upnp, wsd, Calibration, DiscoveryProbe,
};

const CLIENT: &str = "10.0.0.1";
const BRIDGE: &str = "10.0.0.2";
const SERVICE: &str = "10.0.0.3";

fn run(case: BridgeCase, calibration: Calibration) -> (String, u64, u64) {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let (engine, stats) = framework.deploy(case.build(BRIDGE)).expect("deploys");

    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(42 + case.number() as u64);
    sim.add_actor(BRIDGE, engine);
    match case.target() {
        Family::Upnp => {
            sim.add_actor(
                SERVICE,
                upnp::UpnpDevice::new(
                    "urn:schemas-upnp-org:service:printer:1",
                    SERVICE,
                    calibration,
                ),
            );
        }
        Family::Bonjour => {
            sim.add_actor(
                SERVICE,
                mdns::BonjourService::new(
                    "_printer._tcp.local",
                    "service:printer://10.0.0.3:631",
                    calibration,
                ),
            );
        }
        Family::Slp => {
            sim.add_actor(
                SERVICE,
                slp::SlpService::new(
                    "service:printer",
                    "service:printer://10.0.0.3:631",
                    calibration,
                ),
            );
        }
        Family::Wsd => {
            sim.add_actor(
                SERVICE,
                wsd::WsdTarget::new("dn:printer", "http://10.0.0.3:5357/device", calibration),
            );
        }
    }
    match case.source() {
        Family::Slp => {
            sim.add_actor(CLIENT, slp::SlpClient::new("service:printer", probe.clone()));
        }
        Family::Upnp => {
            sim.add_actor(
                CLIENT,
                upnp::UpnpClient::new(
                    "urn:schemas-upnp-org:service:printer:1",
                    calibration,
                    probe.clone(),
                ),
            );
        }
        Family::Bonjour => {
            sim.add_actor(
                CLIENT,
                mdns::BonjourClient::new("_printer._tcp.local", calibration, probe.clone()),
            );
        }
        Family::Wsd => {
            sim.add_actor(CLIENT, wsd::WsdClient::new("dn:printer", calibration, probe.clone()));
        }
    }
    sim.run_until_idle();
    let result = probe.first().expect("discovery completed");
    (result.url, result.elapsed.as_millis(), stats.translation_times()[0].as_millis())
}

fn main() {
    println!("case-study matrix (paper calibration; cases 7-12 are the WSD extension):\n");
    println!(
        "{:<4} {:<18} {:<36} {:>12} {:>14} {:>12}",
        "#",
        "case",
        "URL delivered to the legacy client",
        "client (ms)",
        "bridge (ms)",
        "paper (ms)"
    );
    for &case in BridgeCase::all() {
        let (url, client_ms, bridge_ms) = run(case, Calibration::paper());
        let paper =
            case.paper_median_ms().map(|ms| ms.to_string()).unwrap_or_else(|| "-".to_owned());
        println!(
            "{:<4} {:<18} {:<36} {:>12} {:>14} {:>12}",
            case.number(),
            case.name(),
            url,
            client_ms,
            bridge_ms,
            paper,
        );
    }
    println!("\nall twelve heterogeneous pairs interoperate — the §V hypothesis scales to a fourth family.");
}
