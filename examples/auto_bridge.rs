//! The paper's future work, working: the framework **generates the
//! merged automaton itself** from an ontology (§VII: "ontologies
//! describing two protocols would be reasoned upon and the semantic
//! matches would be inferred, i.e., the fields where data can be
//! translated").
//!
//! Run with `cargo run --example auto_bridge`.

use starlink::automata::bridge_to_xml;
use starlink::core::{synthesize_bridge, Ontology, Starlink};
use starlink::net::SimNet;
use starlink::protocols::{bridges, mdns, slp, Calibration, DiscoveryProbe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework)?;

    // The ontology: concepts over fields, vocabulary conversions,
    // protocol constants. This is the only human input — the δs, the
    // equivalences and the assignments are inferred.
    let ontology = Ontology::new()
        .concept("SLPSrvRequest", "SRVType", "service-type-slp")
        .concept("DNS_Question", "QName", "service-type-dns")
        .conversion("service-type-slp", "service-type-dns", "slp-to-dns-type")
        .concept("DNS_Response", "RData", "service-url")
        .concept("SLPSrvReply", "URLEntry", "service-url")
        .concept("SLPSrvRequest", "XID", "txn")
        .concept("DNS_Question", "ID", "txn")
        .concept("SLPSrvReply", "XID", "txn")
        .constant("DNS_Question", "QDCount", 1u64)
        .constant("DNS_Question", "QType", 12u64)
        .constant("DNS_Question", "QClass", 1u64)
        .constant("SLPSrvReply", "Version", 2u64)
        .constant("SLPSrvReply", "LifeTime", 60u64);

    let merged = synthesize_bridge(
        &framework,
        "auto-slp-bonjour",
        slp::service_automaton(),
        mdns::client_automaton(),
        &ontology,
    )?;

    println!("generated merged automaton (model document):\n");
    println!("{}", bridge_to_xml(&merged));

    let (engine, stats) = framework.deploy(merged)?;
    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(3);
    sim.add_actor("10.0.0.2", engine);
    sim.add_actor(
        "10.0.0.3",
        mdns::BonjourService::new(
            "_printer._tcp.local",
            "service:printer://10.0.0.3:631",
            Calibration::paper(),
        ),
    );
    sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
    sim.run_until_idle();

    let result = probe.first().expect("lookup answered");
    println!(
        "SLP client received {:?} through the machine-generated bridge ({} session, {}).",
        result.url,
        stats.session_count(),
        stats.translation_times()[0]
    );
    Ok(())
}
