//! # Starlink
//!
//! A from-scratch Rust reproduction of **"Starlink: Runtime
//! Interoperability between Heterogeneous Middleware Protocols"**
//! (Bromberg, Grace, Réveillère — ICDCS 2011).
//!
//! Starlink creates protocol bridges *at runtime* from high-level models
//! only: abstract message descriptions (MDL), k-coloured automata for
//! protocol behaviour, and merged automata carrying translation logic.
//! This facade crate re-exports the full stack:
//!
//! | module | crate | paper section |
//! |--------|-------|---------------|
//! | [`xml`] | `starlink-xml` | model document syntax |
//! | [`message`] | `starlink-message` | §III-A abstract messages |
//! | [`mdl`] | `starlink-mdl` | §IV-A message description language |
//! | [`automata`] | `starlink-automata` | §III-B/C/D coloured + merged automata |
//! | [`net`] | `starlink-net` | network engine (simulator) |
//! | [`core`] | `starlink-core` | §IV framework + automata engine |
//! | [`protocols`] | `starlink-protocols` | §V SLP / Bonjour / UPnP substrates + WS-Discovery |
//!
//! ## Quickstart: deploy the Fig. 10 bridge
//!
//! ```
//! use starlink::core::Starlink;
//! use starlink::net::SimNet;
//! use starlink::protocols::{bridges, slp, mdns, Calibration, DiscoveryProbe};
//!
//! // 1. Load the protocol models (MDL documents) at runtime.
//! let mut framework = Starlink::new();
//! bridges::load_all_mdls(&mut framework)?;
//!
//! // 2. Build + deploy the SLP→Bonjour merged automaton (Fig. 10).
//! let (engine, stats) = framework.deploy(bridges::slp_to_bonjour())?;
//!
//! // 3. Drop legacy peers and the bridge into a simulated network.
//! let probe = DiscoveryProbe::new();
//! let mut sim = SimNet::new(7);
//! sim.add_actor("10.0.0.2", engine);
//! sim.add_actor(
//!     "10.0.0.3",
//!     mdns::BonjourService::new(
//!         "_printer._tcp.local",
//!         "service:printer://10.0.0.3:631",
//!         Calibration::fast(),
//!     ),
//! );
//! sim.add_actor("10.0.0.1", slp::SlpClient::new("service:printer", probe.clone()));
//! sim.run_until_idle();
//!
//! // The SLP client's lookup was answered by the Bonjour responder.
//! assert_eq!(probe.first().unwrap().url, "service:printer://10.0.0.3:631");
//! assert_eq!(stats.session_count(), 1);
//! # Ok::<(), starlink::core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use starlink_automata as automata;
pub use starlink_core as core;
pub use starlink_mdl as mdl;
pub use starlink_message as message;
pub use starlink_net as net;
pub use starlink_protocols as protocols;
pub use starlink_xml as xml;
