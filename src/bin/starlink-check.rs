//! `starlink-check` — static verification over Starlink model files.
//!
//! Walks the given files and directories, sniffs each XML document's
//! root element, and runs the matching analysis pass:
//!
//! | root element         | analysis                                    |
//! |----------------------|---------------------------------------------|
//! | `<MDL>`              | [`starlink::mdl::analyze_mdl`] (MDL001–009) |
//! | `<ColoredAutomaton>` | [`starlink::automata::analyze_automaton`]   |
//! | `<Bridge>`           | [`starlink::automata::analyze_merged`]      |
//!
//! Documents that fail to parse or load report `XML001` with the source
//! position. Every diagnostic carries a stable lint code, a severity,
//! and (when the construct came from XML) a `line:column` span — see
//! `docs/CHECKS.md` for the full catalogue.
//!
//! ```text
//! starlink-check [--deny-warnings] [--explain-fusion] [PATH...]
//! ```
//!
//! Exit status is `1` when any error-severity diagnostic fires (or any
//! warning under `--deny-warnings`), `2` on usage errors, `0` otherwise.
//! `--explain-fusion` additionally deploys all twelve synthesized
//! bridge cases and reports, per case, whether the engine compiled the
//! fused fast path or which `FUSxxx` category rejected it.

use starlink::core::{check_model_source, EngineConfig, Starlink, XML_LINT_CODE};
use starlink::protocols::bridges::{self, BridgeCase};
use starlink::xml::{diag, Diagnostic, Severity};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// Host address used when materializing the synthesized bridges for
/// `--explain-fusion`; only the reverse UPnP cases embed it (LOCATION
/// header) and the value never leaves the diagnostic output.
const EXPLAIN_HOST: &str = "192.0.2.1";

fn usage() -> String {
    "usage: starlink-check [--deny-warnings] [--explain-fusion] [PATH...]\n\
     \n\
     Statically verifies Starlink model files (MDL specs, coloured\n\
     automata, bridges). Directories are walked recursively for *.xml.\n\
     \n\
     options:\n\
     \x20 --deny-warnings   exit non-zero on warnings, not just errors\n\
     \x20 --explain-fusion  deploy the 12 bridge cases and report why\n\
     \x20                   each one fused or stayed interpreted\n\
     \x20 --help            show this message"
        .to_owned()
}

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut explain_fusion = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--explain-fusion" => explain_fusion = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("starlink-check: unknown option `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    if paths.is_empty() && !explain_fusion {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }

    let mut files = Vec::new();
    for path in &paths {
        if let Err(message) = collect_xml_files(path, &mut files) {
            eprintln!("starlink-check: {message}");
            return ExitCode::from(2);
        }
    }
    files.sort();
    files.dedup();

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for file in &files {
        let diags = check_file(file);
        errors += diags.iter().filter(|d| d.severity() == Severity::Error).count();
        warnings += diags.iter().filter(|d| d.severity() == Severity::Warning).count();
        if diags.is_empty() {
            println!("{}: ok", file.display());
        } else {
            println!("{}:", file.display());
            for line in diag::render(&diags).lines() {
                println!("  {line}");
            }
        }
    }

    if explain_fusion {
        let (fusion_errors, report) = explain_fusion_report();
        errors += fusion_errors;
        println!("{report}");
    }

    if !files.is_empty() || errors + warnings > 0 {
        println!(
            "starlink-check: {} file(s), {errors} error(s), {warnings} warning(s)",
            files.len()
        );
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Recursively gathers `*.xml` files under `path` (or `path` itself
/// when it is a file, whatever its extension).
fn collect_xml_files(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let meta =
        std::fs::metadata(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if meta.is_file() {
        out.push(path.to_path_buf());
        return Ok(());
    }
    let entries = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read directory {}: {e}", path.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read directory {}: {e}", path.display()))?;
        let child = entry.path();
        if child.is_dir() {
            collect_xml_files(&child, out)?;
        } else if child.extension().and_then(|e| e.to_str()) == Some("xml") {
            out.push(child);
        }
    }
    Ok(())
}

/// Parses one model file and runs the analysis matching its root
/// element via [`check_model_source`]; unreadable files become
/// [`XML_LINT_CODE`] diagnostics so the summary and exit code account
/// for them uniformly.
fn check_file(path: &Path) -> Vec<Diagnostic> {
    match std::fs::read_to_string(path) {
        Ok(source) => check_model_source(&source),
        Err(e) => vec![Diagnostic::error(XML_LINT_CODE, format!("cannot read file: {e}"))],
    }
}

/// Deploys each of the twelve bridge cases and reports the fused-plan
/// outcome: `fused`, or the `FUSxxx` reject category with its reason.
/// Returns the number of deploy failures (which count as errors).
fn explain_fusion_report() -> (usize, String) {
    use std::fmt::Write as _;
    let mut report = String::from("fusion report (12 bridge cases):\n");
    let mut errors = 0usize;
    for &case in BridgeCase::all() {
        let mut framework = Starlink::new();
        if let Err(e) = bridges::load_all_mdls(&mut framework) {
            errors += 1;
            let _ = writeln!(
                report,
                "  case {:>2} {}: MDL load failed: {e}",
                case.number(),
                case.name()
            );
            continue;
        }
        let config = EngineConfig {
            correlator: Some(Arc::new(bridges::default_correlator())),
            ..EngineConfig::default()
        };
        match framework.deploy_with(case.build(EXPLAIN_HOST), config) {
            Ok((engine, _stats)) => match engine.fused_reject() {
                None => {
                    let _ = writeln!(report, "  case {:>2} {}: fused", case.number(), case.name());
                }
                Some(reject) => {
                    let _ = writeln!(
                        report,
                        "  case {:>2} {}: interpreted [{}] {reject}",
                        case.number(),
                        case.name(),
                        reject.code()
                    );
                }
            },
            Err(e) => {
                errors += 1;
                let _ = writeln!(
                    report,
                    "  case {:>2} {}: deploy refused: {e}",
                    case.number(),
                    case.name()
                );
            }
        }
    }
    (errors, report)
}
