//! λ network actions (§III-C): "an action λi ∈ {λ} is the network
//! function ... that may require as arguments some fields extracted from
//! previously received messages stored in one state of an automaton".
//!
//! The canonical example is Fig. 5 line 11: `set_host(host, port)` points
//! the network engine's next TCP connection at an address discovered in a
//! message (the SSDP response's location).

use crate::error::{AutomataError, Result};
use crate::translation::{evaluate_source, FunctionRegistry, MessageStore, ValueSource};
use std::fmt;

/// An unevaluated λ action attached to a δ-transition.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkAction {
    /// Action keyword (`set_host`, ...).
    pub name: String,
    /// Arguments, evaluated against the message store when the transition
    /// is taken.
    pub args: Vec<ValueSource>,
}

impl NetworkAction {
    /// Creates an action.
    pub fn new(name: impl Into<String>, args: Vec<ValueSource>) -> Self {
        NetworkAction { name: name.into(), args }
    }

    /// The `set_host` keyword operator of Fig. 5.
    pub fn set_host(host: ValueSource, port: ValueSource) -> Self {
        NetworkAction::new("set_host", vec![host, port])
    }

    /// Evaluates the action's arguments, producing a directive the
    /// network engine can execute.
    ///
    /// # Errors
    ///
    /// Fails when arguments cannot be evaluated or have wrong types.
    pub fn resolve(
        &self,
        store: &MessageStore,
        functions: &FunctionRegistry,
    ) -> Result<ResolvedAction> {
        let mut values = Vec::with_capacity(self.args.len());
        for arg in &self.args {
            values.push(evaluate_source(arg, store, functions)?);
        }
        match self.name.as_str() {
            "set_host" => {
                let host = values
                    .first()
                    .ok_or_else(|| {
                        AutomataError::Translation("set_host requires a host argument".into())
                    })?
                    .to_text();
                let port = values
                    .get(1)
                    .ok_or_else(|| {
                        AutomataError::Translation("set_host requires a port argument".into())
                    })?
                    .as_u64()?;
                let port = u16::try_from(port).map_err(|_| {
                    AutomataError::Translation(format!("set_host port {port} out of range"))
                })?;
                Ok(ResolvedAction::SetHost { host, port })
            }
            _ => Ok(ResolvedAction::Custom { name: self.name.clone(), args: values }),
        }
    }
}

impl fmt::Display for NetworkAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match arg {
                ValueSource::Field { message, path, .. } => write!(f, "{message}.{path}")?,
                ValueSource::Literal(v) => write!(f, "{v}")?,
                ValueSource::Function { name, .. } => write!(f, "{name}(..)")?,
            }
        }
        write!(f, ")")
    }
}

/// A λ action after argument evaluation — what the network engine
/// executes while crossing a δ-transition.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedAction {
    /// Point the next synchronous (TCP) exchange at `host:port`.
    SetHost {
        /// Destination host.
        host: String,
        /// Destination port.
        port: u16,
    },
    /// An engine-specific action with evaluated arguments.
    Custom {
        /// Action keyword.
        name: String,
        /// Evaluated arguments.
        args: Vec<starlink_message::Value>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_message::{AbstractMessage, Field, Value};

    fn store() -> MessageStore {
        let mut store = MessageStore::new();
        let mut resp = AbstractMessage::new("SSDP", "SSDP_Resp");
        resp.push_field(Field::primitive("LOCATION", "http://10.0.0.9:5000/desc.xml"));
        store.insert(resp);
        store
    }

    #[test]
    fn set_host_from_fig5_line11() {
        // set_host(s22.SSDP_Resp.IP, s22.SSDP_Resp.PORT) — here computed
        // via URL functions from the LOCATION header.
        let action = NetworkAction::set_host(
            ValueSource::function("url-host", vec![ValueSource::field("SSDP_Resp", "LOCATION")]),
            ValueSource::function("url-port", vec![ValueSource::field("SSDP_Resp", "LOCATION")]),
        );
        let resolved = action.resolve(&store(), &FunctionRegistry::with_builtins()).unwrap();
        assert_eq!(resolved, ResolvedAction::SetHost { host: "10.0.0.9".into(), port: 5000 });
    }

    #[test]
    fn set_host_requires_two_args() {
        let action = NetworkAction::new("set_host", vec![ValueSource::literal("h")]);
        assert!(action.resolve(&store(), &FunctionRegistry::with_builtins()).is_err());
    }

    #[test]
    fn set_host_port_range_checked() {
        let action = NetworkAction::new(
            "set_host",
            vec![ValueSource::literal("h"), ValueSource::literal(70000u64)],
        );
        assert!(action.resolve(&store(), &FunctionRegistry::with_builtins()).is_err());
    }

    #[test]
    fn custom_actions_pass_through() {
        let action = NetworkAction::new("flush_queues", vec![ValueSource::literal(3u64)]);
        let resolved = action.resolve(&store(), &FunctionRegistry::with_builtins()).unwrap();
        assert_eq!(
            resolved,
            ResolvedAction::Custom { name: "flush_queues".into(), args: vec![Value::Unsigned(3)] }
        );
    }

    #[test]
    fn display_is_readable() {
        let action = NetworkAction::set_host(
            ValueSource::field("SSDP_Resp", "IP"),
            ValueSource::field("SSDP_Resp", "PORT"),
        );
        assert_eq!(action.to_string(), "set_host(SSDP_Resp.IP, SSDP_Resp.PORT)");
    }
}
