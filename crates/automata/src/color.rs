//! Automaton colours (§III-B): the low-level network semantics attached
//! to states — transport protocol, port, synchrony mode, multicast group.
//!
//! "An automaton Ak is said to be k-colored if all its states are
//! k-colored, and if there exists a function f such as
//! f(⟨(key1,val1),...⟩) = k" — the colour is a list of key/value pairs and
//! k is a perfect hash of it. Here the canonical, order-normalised
//! rendering of the pairs is the hash preimage and [`ColorKey`] is the
//! collision-free key (string identity is a perfect hash).

use std::collections::BTreeMap;
use std::fmt;

/// Transport protocol of a colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transport {
    /// Datagram transport.
    Udp,
    /// Stream transport (connection-oriented).
    Tcp,
}

impl Transport {
    /// Canonical attribute value.
    pub fn as_str(&self) -> &'static str {
        match self {
            Transport::Udp => "udp",
            Transport::Tcp => "tcp",
        }
    }

    /// Parses the attribute value.
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "udp" => Some(Transport::Udp),
            "tcp" => Some(Transport::Tcp),
            _ => None,
        }
    }
}

/// Interaction mode of a colour: whether responses arrive asynchronously
/// (datagram listeners) or synchronously (request/response on one
/// connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// Responses arrive asynchronously.
    Async,
    /// Responses are received synchronously on the same exchange.
    Sync,
}

impl Mode {
    /// Canonical attribute value.
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Async => "async",
            Mode::Sync => "sync",
        }
    }

    /// Parses the attribute value.
    pub fn parse(text: &str) -> Option<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "async" => Some(Mode::Async),
            "sync" => Some(Mode::Sync),
            _ => None,
        }
    }
}

/// The unique key `k` of a colour — the output of the paper's perfect
/// hash function `f` over the colour's key/value pairs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColorKey(String);

impl ColorKey {
    /// The canonical textual form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ColorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A colour: the network semantics shared by the states it paints.
///
/// ```
/// use starlink_automata::{Color, Transport, Mode};
///
/// // Fig. 1: the SLP colour.
/// let slp = Color::new(Transport::Udp, 427, Mode::Async)
///     .multicast("239.255.255.253");
/// assert!(slp.is_multicast());
/// assert_eq!(slp.key().as_str(),
///     "group=239.255.255.253;mode=async;multicast=yes;port=427;transport_protocol=udp");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Color {
    transport: Transport,
    port: u16,
    mode: Mode,
    /// Multicast group address, when the colour is multicast.
    group: Option<String>,
    /// Additional free-form attributes (kept sorted for canonical keys).
    extra: BTreeMap<String, String>,
}

impl Color {
    /// Creates a unicast colour.
    pub fn new(transport: Transport, port: u16, mode: Mode) -> Self {
        Color { transport, port, mode, group: None, extra: BTreeMap::new() }
    }

    /// Builder: makes the colour multicast on `group`.
    pub fn multicast(mut self, group: impl Into<String>) -> Self {
        self.group = Some(group.into());
        self
    }

    /// Builder: attaches a free-form attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra.insert(key.into(), value.into());
        self
    }

    /// The transport protocol.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// The port number.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The interaction mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The multicast group, when set.
    pub fn group(&self) -> Option<&str> {
        self.group.as_deref()
    }

    /// True when the colour is multicast.
    pub fn is_multicast(&self) -> bool {
        self.group.is_some()
    }

    /// Extra attributes.
    pub fn extras(&self) -> &BTreeMap<String, String> {
        &self.extra
    }

    /// The key/value pair list defining this colour, sorted by key (the
    /// preimage of the paper's hash function `f`).
    pub fn pairs(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = vec![
            ("transport_protocol".into(), self.transport.as_str().into()),
            ("port".into(), self.port.to_string()),
            ("mode".into(), self.mode.as_str().into()),
            ("multicast".into(), if self.is_multicast() { "yes".into() } else { "no".into() }),
        ];
        if let Some(group) = &self.group {
            pairs.push(("group".into(), group.clone()));
        }
        for (k, v) in &self.extra {
            pairs.push((k.clone(), v.clone()));
        }
        pairs.sort();
        pairs
    }

    /// Computes the colour key `k = f(pairs)`; equal colours always yield
    /// equal keys and distinct colours distinct keys (perfect hashing via
    /// canonical strings).
    pub fn key(&self) -> ColorKey {
        let text =
            self.pairs().iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(";");
        ColorKey(text)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}/{}", self.transport.as_str(), self.port, self.mode.as_str())?;
        if let Some(group) = &self.group {
            write!(f, " multicast {group}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slp() -> Color {
        Color::new(Transport::Udp, 427, Mode::Async).multicast("239.255.255.253")
    }

    fn ssdp() -> Color {
        Color::new(Transport::Udp, 1900, Mode::Async).multicast("239.255.255.250")
    }

    fn http() -> Color {
        Color::new(Transport::Tcp, 80, Mode::Sync)
    }

    #[test]
    fn fig_1_2_3_colors_are_distinct() {
        // "a specific and different color has been affected for the SLP,
        // SSDP, and HTTP automata".
        let keys = [slp().key(), ssdp().key(), http().key()];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn equal_colors_have_equal_keys() {
        assert_eq!(slp().key(), slp().key());
        assert_eq!(slp(), slp());
    }

    #[test]
    fn key_is_order_insensitive_for_extras() {
        let a = Color::new(Transport::Udp, 1, Mode::Async).attr("x", "1").attr("y", "2");
        let b = Color::new(Transport::Udp, 1, Mode::Async).attr("y", "2").attr("x", "1");
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn unicast_has_no_group() {
        assert!(!http().is_multicast());
        assert!(http().key().as_str().contains("multicast=no"));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(slp().to_string(), "udp:427/async multicast 239.255.255.253");
        assert_eq!(http().to_string(), "tcp:80/sync");
    }

    #[test]
    fn transport_and_mode_parse() {
        assert_eq!(Transport::parse("UDP"), Some(Transport::Udp));
        assert_eq!(Transport::parse("x"), None);
        assert_eq!(Mode::parse("sync"), Some(Mode::Sync));
        assert_eq!(Mode::parse("x"), None);
    }
}
