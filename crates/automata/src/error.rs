//! Error type for automata construction, merging and execution.

use starlink_message::MessageError;
use std::fmt;

/// Error raised by the automata layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutomataError {
    /// A state id did not exist in the automaton.
    UnknownState(String),
    /// A part (protocol automaton) name did not exist in a merged automaton.
    UnknownPart(String),
    /// A structural rule of colored automata was violated.
    Invalid(String),
    /// The merge constraints of §III-C were violated.
    NotMergeable(String),
    /// Translation logic failed to apply.
    Translation(String),
    /// An execution step was illegal (no matching transition, wrong state
    /// kind, ...).
    Execution(String),
    /// An XML model document was malformed.
    Xml {
        /// Human-readable reason.
        message: String,
        /// Where the offending construct sits in the source document
        /// (1-based line/column; `0:0` when unknown).
        position: starlink_xml::Position,
    },
    /// An underlying abstract-message operation failed.
    Message(MessageError),
}

impl AutomataError {
    /// Creates an XML model error without a source position.
    pub fn xml(message: impl Into<String>) -> Self {
        AutomataError::Xml { message: message.into(), position: starlink_xml::Position::default() }
    }
}

impl fmt::Display for AutomataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomataError::UnknownState(id) => write!(f, "unknown state {id:?}"),
            AutomataError::UnknownPart(name) => write!(f, "unknown automaton part {name:?}"),
            AutomataError::Invalid(msg) => write!(f, "invalid automaton: {msg}"),
            AutomataError::NotMergeable(msg) => write!(f, "automata are not mergeable: {msg}"),
            AutomataError::Translation(msg) => write!(f, "translation error: {msg}"),
            AutomataError::Execution(msg) => write!(f, "execution error: {msg}"),
            AutomataError::Xml { message, position } => {
                write!(f, "invalid automaton XML")?;
                if *position != starlink_xml::Position::default() {
                    write!(f, " at {position}")?;
                }
                write!(f, ": {message}")
            }
            AutomataError::Message(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for AutomataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutomataError::Message(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MessageError> for AutomataError {
    fn from(err: MessageError) -> Self {
        AutomataError::Message(err)
    }
}

/// Convenient result alias for automata operations.
pub type Result<T> = std::result::Result<T, AutomataError>;
