//! Static analyses over coloured and merged automata — the automata
//! layer of `starlink-check`.
//!
//! | Code   | Severity | Meaning                                                  |
//! |--------|----------|----------------------------------------------------------|
//! | AUT001 | warning  | state unreachable from the initial state                 |
//! | AUT002 | error    | dead state: no accepting state reachable from it         |
//! | AUT003 | warning  | receive state from which no send transition is reachable |
//! | AUT004 | warning  | colour configuration: unused or duplicate colours        |
//! | AUT005 | info/err | λ-audit: no-op δ-transitions (info), δ-cycles (error)    |
//!
//! [`analyze_automaton`] checks one coloured automaton in isolation;
//! [`analyze_merged`] checks a merged automaton, where reachability
//! flows across δ-transitions: a part state entered only through a δ is
//! *not* unreachable, and a receive state whose answer is sent from
//! another part (after a δ crossing) is *not* flagged.
//!
//! Both functions accept the source XML [`Element`] the model was
//! loaded from (when there is one) so diagnostics carry line/column
//! spans of the offending `<State>`, `<Color>` or `<Delta>` element.

use crate::automaton::{Action, ColoredAutomaton};
use crate::merge::{DeltaTransition, GlobalState, MergedAutomaton};
use starlink_xml::{Diagnostic, Element, Position};

/// Resolves source spans inside a `<ColoredAutomaton>` or `<Bridge>`
/// document. All lookups degrade to `Position::default()` (`0:0`) when
/// the document — or the element within it — is absent.
struct Spans<'a> {
    root: Option<&'a Element>,
    /// True when `root` is a `<Bridge>` wrapping per-part automata.
    bridge: bool,
}

impl<'a> Spans<'a> {
    fn new(root: Option<&'a Element>) -> Self {
        let bridge = root.map(|r| r.name() == "Bridge").unwrap_or(false);
        Spans { root, bridge }
    }

    /// The `<ColoredAutomaton>` element describing `protocol`.
    fn part(&self, protocol: &str) -> Option<&'a Element> {
        let root = self.root?;
        if !self.bridge {
            return Some(root);
        }
        root.children_named("ColoredAutomaton").find(|el| el.attr("protocol") == Some(protocol))
    }

    /// Span of `<State name="...">` within a part.
    fn state(&self, protocol: &str, state: &str) -> Position {
        self.part(protocol)
            .and_then(|el| el.children_named("State").find(|s| s.attr("name") == Some(state)))
            .map(|el| el.position())
            .unwrap_or_default()
    }

    /// Span of the `index`-th `<Color>` within a part.
    fn color(&self, protocol: &str, index: usize) -> Position {
        self.part(protocol)
            .and_then(|el| el.children_named("Color").nth(index))
            .map(|el| el.position())
            .unwrap_or_default()
    }

    /// Span of the `<Delta from="..." to="...">` element.
    fn delta(&self, from: &str, to: &str) -> Position {
        self.root
            .and_then(|root| {
                root.children_named("Delta")
                    .find(|el| el.attr("from") == Some(from) && el.attr("to") == Some(to))
            })
            .map(|el| el.position())
            .unwrap_or_default()
    }
}

/// The combined state graph of one or more parts: nodes are part states
/// flattened into one index space, edges are message transitions plus
/// (for merged automata) δ-transitions.
struct Graph<'a> {
    parts: &'a [ColoredAutomaton],
    /// Node index of state 0 of each part.
    offsets: Vec<usize>,
    /// Forward adjacency.
    next: Vec<Vec<usize>>,
    /// Nodes that are the target of a receive transition.
    receive_entered: Vec<bool>,
    /// Nodes with an outgoing send transition.
    sends: Vec<bool>,
    /// Accepting nodes.
    accepting: Vec<bool>,
}

impl<'a> Graph<'a> {
    fn build(parts: &'a [ColoredAutomaton], deltas: &[DeltaTransition]) -> Self {
        let mut offsets = Vec::with_capacity(parts.len());
        let mut total = 0;
        for part in parts {
            offsets.push(total);
            total += part.states().len();
        }
        let mut next = vec![Vec::new(); total];
        let mut receive_entered = vec![false; total];
        let mut sends = vec![false; total];
        let mut accepting = vec![false; total];
        for (p, part) in parts.iter().enumerate() {
            for state in part.states() {
                accepting[offsets[p] + state.id.0] = state.accepting;
            }
            for t in part.transitions() {
                let from = offsets[p] + t.from.0;
                let to = offsets[p] + t.to.0;
                next[from].push(to);
                match t.action {
                    Action::Receive => receive_entered[to] = true,
                    Action::Send => sends[from] = true,
                }
            }
        }
        for delta in deltas {
            if let (Some(from), Some(to)) =
                (index_of(&offsets, parts, delta.from), index_of(&offsets, parts, delta.to))
            {
                next[from].push(to);
            }
        }
        Graph { parts, offsets, next, receive_entered, sends, accepting }
    }

    /// Forward reachability from `start`.
    fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.next.len()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(node) = stack.pop() {
            for &to in &self.next[node] {
                if !seen[to] {
                    seen[to] = true;
                    stack.push(to);
                }
            }
        }
        seen
    }

    /// Nodes from which some node satisfying `goal` is reachable
    /// (including goal nodes themselves).
    fn can_reach(&self, goal: impl Fn(usize) -> bool) -> Vec<bool> {
        // Backward BFS over reversed edges.
        let mut prev = vec![Vec::new(); self.next.len()];
        for (from, tos) in self.next.iter().enumerate() {
            for &to in tos {
                prev[to].push(from);
            }
        }
        let mut seen = vec![false; self.next.len()];
        let mut stack: Vec<usize> = (0..self.next.len()).filter(|&n| goal(n)).collect();
        for &n in &stack {
            seen[n] = true;
        }
        while let Some(node) = stack.pop() {
            for &from in &prev[node] {
                if !seen[from] {
                    seen[from] = true;
                    stack.push(from);
                }
            }
        }
        seen
    }

    /// `"PROTO:name"` display form of a node.
    fn name(&self, node: usize) -> String {
        let (p, s) = self.split(node);
        format!("{}:{}", self.parts[p].protocol(), self.parts[p].states()[s].name)
    }

    fn split(&self, node: usize) -> (usize, usize) {
        let p = match self.offsets.binary_search(&node) {
            Ok(exact) => exact,
            Err(insert) => insert - 1,
        };
        (p, node - self.offsets[p])
    }
}

fn index_of(offsets: &[usize], parts: &[ColoredAutomaton], gs: GlobalState) -> Option<usize> {
    let part = parts.get(gs.part.0)?;
    if gs.state.0 >= part.states().len() {
        return None;
    }
    Some(offsets[gs.part.0] + gs.state.0)
}

/// Runs AUT001–AUT003 over the combined graph and AUT004 per part.
fn analyze_graph(
    graph: &Graph<'_>,
    initial: usize,
    spans: &Spans<'_>,
    subject: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let state_pos = |node: usize| {
        let (p, s) = graph.split(node);
        spans.state(graph.parts[p].protocol(), &graph.parts[p].states()[s].name)
    };

    // AUT001: unreachable states.
    let reachable = graph.reachable_from(initial);
    for (node, reached) in reachable.iter().enumerate() {
        if !reached {
            diags.push(
                Diagnostic::warning(
                    "AUT001",
                    format!(
                        "state {} is unreachable from the initial state; no execution \
                         can ever enter it",
                        graph.name(node)
                    ),
                )
                .at(state_pos(node))
                .on(subject),
            );
        }
    }

    // AUT002: dead states — execution can enter but never complete a
    // session. With no accepting states at all, every run is doomed.
    if !graph.accepting.iter().any(|&a| a) {
        diags.push(
            Diagnostic::error(
                "AUT002",
                "automaton has no accepting state: no session can ever complete",
            )
            .at(spans.root.map(|r| r.position()).unwrap_or_default())
            .on(subject),
        );
    } else {
        let alive = graph.can_reach(|n| graph.accepting[n]);
        for node in 0..graph.next.len() {
            if reachable[node] && !alive[node] {
                diags.push(
                    Diagnostic::error(
                        "AUT002",
                        format!(
                            "state {} is dead: no accepting state is reachable from it, \
                             so any session entering it hangs forever",
                            graph.name(node)
                        ),
                    )
                    .at(state_pos(node))
                    .on(subject),
                );
            }
        }
    }

    // AUT003: a non-accepting state entered by a receive from which no
    // send is reachable — the automaton absorbs a message and the
    // conversation can never be answered.
    let can_send = graph.can_reach(|n| graph.sends[n]);
    for node in 0..graph.next.len() {
        if graph.receive_entered[node]
            && !graph.accepting[node]
            && reachable[node]
            && !can_send[node]
        {
            diags.push(
                Diagnostic::warning(
                    "AUT003",
                    format!(
                        "state {} is entered by a receive but no send transition is \
                         reachable from it: the message is absorbed without an answer",
                        graph.name(node)
                    ),
                )
                .at(state_pos(node))
                .on(subject),
            );
        }
    }

    // AUT004: colour configuration, per part.
    for part in graph.parts {
        let mut used = vec![false; part.colors().len()];
        for state in part.states() {
            if let Some(slot) = used.get_mut(state.color) {
                *slot = true;
            }
        }
        for (index, in_use) in used.iter().enumerate() {
            if !in_use {
                diags.push(
                    Diagnostic::warning(
                        "AUT004",
                        format!(
                            "colour #{index} ({}) of {} is not used by any state",
                            part.colors()[index],
                            part.protocol()
                        ),
                    )
                    .at(spans.color(part.protocol(), index))
                    .on(subject),
                );
            }
        }
        for (index, color) in part.colors().iter().enumerate() {
            if part.colors()[..index].iter().any(|c| c.key() == color.key()) {
                diags.push(
                    Diagnostic::warning(
                        "AUT004",
                        format!(
                            "colour #{index} of {} duplicates an earlier colour ({})",
                            part.protocol(),
                            color
                        ),
                    )
                    .at(spans.color(part.protocol(), index))
                    .on(subject),
                );
            }
        }
    }

    diags
}

/// Analyzes one coloured automaton in isolation.
///
/// Pass the source `<ColoredAutomaton>` element as `doc` when the
/// automaton was loaded from XML so diagnostics carry spans.
pub fn analyze_automaton(automaton: &ColoredAutomaton, doc: Option<&Element>) -> Vec<Diagnostic> {
    let spans = Spans::new(doc);
    let parts = std::slice::from_ref(automaton);
    let graph = Graph::build(parts, &[]);
    let subject = format!("automaton:{}", automaton.protocol());
    analyze_graph(&graph, automaton.initial().0, &spans, &subject)
}

/// Analyzes a merged automaton: AUT001–AUT004 over the combined state
/// graph (reachability flows across δ-transitions) plus the AUT005
/// λ-transition audit.
///
/// Pass the source `<Bridge>` element as `doc` when available.
pub fn analyze_merged(merged: &MergedAutomaton, doc: Option<&Element>) -> Vec<Diagnostic> {
    let spans = Spans::new(doc);
    let graph = Graph::build(merged.parts(), merged.deltas());
    let subject = format!("bridge:{}", merged.name());
    let initial = index_of(&graph.offsets, merged.parts(), merged.initial()).unwrap_or(0);
    let mut diags = analyze_graph(&graph, initial, &spans, &subject);
    diags.extend(audit_deltas(merged, &spans, &subject));
    diags
}

/// AUT005: the λ-transition audit.
fn audit_deltas(merged: &MergedAutomaton, spans: &Spans<'_>, subject: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let name_of = |gs: GlobalState| merged.state_name(gs);
    let delta_pos = |d: &DeltaTransition| spans.delta(&name_of(d.from), &name_of(d.to));

    for delta in merged.deltas() {
        if delta.actions.is_empty() && delta.assignments.is_empty() {
            diags.push(
                Diagnostic::info(
                    "AUT005",
                    format!(
                        "δ {} → {} carries no λ actions and no translation assignments; \
                         the colour change performs no work",
                        name_of(delta.from),
                        name_of(delta.to)
                    ),
                )
                .at(delta_pos(delta))
                .on(subject),
            );
        }
    }

    // δ-only cycles: a loop of colour changes with no message exchange
    // between them would bounce a session between parts forever.
    let deltas = merged.deltas();
    let nodes: Vec<GlobalState> = {
        let mut v: Vec<GlobalState> = deltas.iter().flat_map(|d| [d.from, d.to]).collect();
        v.sort();
        v.dedup();
        v
    };
    let index = |gs: GlobalState| nodes.binary_search(&gs).expect("collected above");
    let mut next = vec![Vec::new(); nodes.len()];
    for delta in deltas {
        next[index(delta.from)].push(index(delta.to));
    }
    // Iterative colour-marking DFS (white/grey/black) for cycle detection.
    let mut mark = vec![0u8; nodes.len()];
    for start in 0..nodes.len() {
        if mark[start] != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        mark[start] = 1;
        while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
            if *edge < next[node].len() {
                let to = next[node][*edge];
                *edge += 1;
                match mark[to] {
                    0 => {
                        mark[to] = 1;
                        stack.push((to, 0));
                    }
                    1 => {
                        let cycle: Vec<String> = stack
                            .iter()
                            .map(|&(n, _)| name_of(nodes[n]))
                            .chain(std::iter::once(name_of(nodes[to])))
                            .collect();
                        diags.push(
                            Diagnostic::error(
                                "AUT005",
                                format!(
                                    "δ-transitions form a cycle with no message exchange: {}",
                                    cycle.join(" → ")
                                ),
                            )
                            .at(spans.root.map(|r| r.position()).unwrap_or_default())
                            .on(subject),
                        );
                        // One report per component is enough.
                        for m in &mut mark {
                            if *m == 1 {
                                *m = 2;
                            }
                        }
                        stack.clear();
                    }
                    _ => {}
                }
            } else {
                mark[node] = 2;
                stack.pop();
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{Color, Mode, Transport};
    use crate::merge::{Delta, MergedAutomaton};
    use starlink_xml::Severity;

    fn color() -> Color {
        Color::new(Transport::Udp, 427, Mode::Async).multicast("239.255.255.253")
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code()).collect()
    }

    #[test]
    fn clean_automaton_yields_no_diagnostics() {
        let a = ColoredAutomaton::builder("SLP")
            .color(color())
            .state("s0")
            .state_accepting("s1")
            .receive("s0", "Req", "s1")
            .send("s1", "Reply", "s0")
            .build()
            .unwrap();
        assert!(analyze_automaton(&a, None).is_empty());
    }

    #[test]
    fn unreachable_state_is_aut001() {
        let a = ColoredAutomaton::builder("X")
            .color(color())
            .state_accepting("s0")
            .state("orphan")
            .build()
            .unwrap();
        let diags = analyze_automaton(&a, None);
        assert!(codes(&diags).contains(&"AUT001"), "{diags:?}");
        assert!(diags.iter().any(|d| d.message().contains("orphan")));
    }

    #[test]
    fn dead_state_and_missing_accepting_are_aut002() {
        // No accepting state at all.
        let a = ColoredAutomaton::builder("X").color(color()).state("s0").build().unwrap();
        let diags = analyze_automaton(&a, None);
        assert_eq!(codes(&diags), vec!["AUT002"]);
        assert_eq!(diags[0].severity(), Severity::Error);

        // A trap state next to an accepting one.
        let a = ColoredAutomaton::builder("X")
            .color(color())
            .state("s0")
            .state_accepting("ok")
            .state("trap")
            .receive("s0", "Good", "ok")
            .receive("s0", "Bad", "trap")
            .build()
            .unwrap();
        let diags = analyze_automaton(&a, None);
        assert!(diags.iter().any(|d| d.code() == "AUT002" && d.message().contains("trap")));
        // `trap` is also receive-entered with no reachable send.
        assert!(diags.iter().any(|d| d.code() == "AUT003"));
    }

    #[test]
    fn accepting_receive_tail_is_not_flagged() {
        // The classic client shape: send, await answer, accept.
        let a = ColoredAutomaton::builder("X")
            .color(color())
            .state("s0")
            .state("s1")
            .state_accepting("s2")
            .send("s0", "Query", "s1")
            .receive("s1", "Resp", "s2")
            .build()
            .unwrap();
        assert!(analyze_automaton(&a, None).is_empty());
    }

    #[test]
    fn unused_color_is_aut004() {
        let a = ColoredAutomaton::builder("X")
            .color(color())
            .state_accepting("s0")
            .color(Color::new(Transport::Tcp, 80, Mode::Sync))
            .build()
            .unwrap();
        let diags = analyze_automaton(&a, None);
        assert!(codes(&diags).contains(&"AUT004"), "{diags:?}");
    }

    #[test]
    fn merged_reachability_crosses_deltas() {
        // Part B is only entered through a δ; none of its states may be
        // reported unreachable, and A's receive state finds its send in B.
        let a = ColoredAutomaton::builder("A")
            .color(color())
            .state("a0")
            .state_accepting("a1")
            .receive("a0", "Req", "a1")
            .send("a1", "Reply", "a0")
            .build()
            .unwrap();
        let b = ColoredAutomaton::builder("B")
            .color(Color::new(Transport::Udp, 5353, Mode::Async).multicast("224.0.0.251"))
            .state("b0")
            .state("b1")
            .state_accepting("b2")
            .send("b0", "Query", "b1")
            .receive("b1", "Resp", "b2")
            .build()
            .unwrap();
        let merged = MergedAutomaton::builder("a-b")
            .part(a)
            .part(b)
            .delta(Delta::new("A:a1", "B:b0"))
            .delta(Delta::new("B:b2", "A:a1"))
            .build()
            .unwrap();
        let diags = analyze_merged(&merged, None);
        assert!(
            diags.iter().all(|d| d.severity() < Severity::Warning),
            "only the no-op-δ info notes expected, got {diags:?}"
        );
        // Both bare δs are reported by the λ audit at info level.
        assert_eq!(diags.iter().filter(|d| d.code() == "AUT005").count(), 2);
    }

    #[test]
    fn delta_cycle_is_aut005_error() {
        let a =
            ColoredAutomaton::builder("A").color(color()).state_accepting("a0").build().unwrap();
        let b = ColoredAutomaton::builder("B")
            .color(Color::new(Transport::Tcp, 80, Mode::Sync))
            .state_accepting("b0")
            .build()
            .unwrap();
        let merged = MergedAutomaton::builder("loop")
            .part(a)
            .part(b)
            .delta(Delta::new("A:a0", "B:b0"))
            .delta(Delta::new("B:b0", "A:a0"))
            .build()
            .unwrap();
        let diags = analyze_merged(&merged, None);
        assert!(
            diags.iter().any(|d| d.code() == "AUT005" && d.severity() == Severity::Error),
            "{diags:?}"
        );
    }
}
