//! # starlink-automata
//!
//! The behavioural models of the Starlink framework (§III of the paper):
//!
//! * **k-coloured automata** ([`ColoredAutomaton`], §III-B) — protocol
//!   behaviour as send/receive transitions over abstract message names,
//!   with states painted by [`Color`]s carrying the low-level network
//!   semantics (transport, port, mode, multicast group);
//! * **merged automata** ([`MergedAutomaton`], §III-C) — several coloured
//!   automata chained by δ-transitions; [`MergedAutomaton::check_merge`]
//!   validates the paper's merge constraints (equations (2)–(4)) and
//!   classifies the merge as weak or strong;
//! * **translation logic** ([`Assignment`], [`FunctionRegistry`], §III-D)
//!   — field assignments between semantically equivalent messages
//!   ([`EquivalenceMap`], the ⊨ operator) and translation functions `T`;
//! * **λ network actions** ([`NetworkAction`], e.g. `set_host`) executed
//!   at the network layer while crossing a δ-transition;
//! * **execution** ([`Execution`], §IV-B) — per-state message queues, the
//!   history operator ⇒, and automatic bridging through δ-transitions;
//! * **model I/O** — XML loading/writing ([`load_bridge`],
//!   [`bridge_to_xml`], Fig. 8 grammar) and Graphviz export
//!   ([`automaton_to_dot`], [`merged_to_dot`]) regenerating the paper's
//!   figures.
//!
//! ## Example
//!
//! ```
//! use starlink_automata::*;
//!
//! // Fig. 1 + Fig. 9 merged as in Fig. 10 (SLP ↔ Bonjour).
//! let slp = ColoredAutomaton::builder("SLP")
//!     .color(Color::new(Transport::Udp, 427, Mode::Async).multicast("239.255.255.253"))
//!     .state("s0")
//!     .state_accepting("s1")
//!     .receive("s0", "SLPSrvRequest", "s1")
//!     .send("s1", "SLPSrvReply", "s0")
//!     .build()?;
//! let dns = ColoredAutomaton::builder("DNS")
//!     .color(Color::new(Transport::Udp, 5353, Mode::Async).multicast("224.0.0.251"))
//!     .state("s0")
//!     .state("s1")
//!     .state_accepting("s2")
//!     .send("s0", "DNS_Question", "s1")
//!     .receive("s1", "DNS_Response", "s2")
//!     .build()?;
//! let merged = MergedAutomaton::builder("slp-bonjour")
//!     .part(slp)
//!     .part(dns)
//!     .equivalence("DNS_Question", &["SLPSrvRequest"])
//!     .equivalence("SLPSrvReply", &["DNS_Response"])
//!     .delta(Delta::new("SLP:s1", "DNS:s0"))
//!     .delta(Delta::new("DNS:s2", "SLP:s1"))
//!     .build()?;
//! let report = merged.check_merge();
//! assert!(report.is_mergeable());
//! assert!(report.strongly_merged);
//! # Ok::<(), starlink_automata::AutomataError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod analyze;
mod automaton;
mod color;
mod dot;
mod equivalence;
mod error;
mod execution;
mod fused;
mod merge;
mod translation;
mod xml_load;

pub use actions::{NetworkAction, ResolvedAction};
pub use analyze::{analyze_automaton, analyze_merged};
pub use automaton::{Action, AutomatonBuilder, ColoredAutomaton, State, StateId, Transition};
pub use color::{Color, ColorKey, Mode, Transport};
pub use dot::{automaton_to_dot, merged_to_dot};
pub use equivalence::{
    holds_for_instance, uncovered_mandatory_fields, EquivalenceDecl, EquivalenceMap,
};
pub use error::{AutomataError, Result};
pub use execution::{Execution, HistoryEntry, StepOutcome};
pub use fused::{
    compile_steps, FuseError, FusedArg, FusedFn, FusedOut, FusedSource, FusedStep, SlotRef,
};
pub use merge::{
    Delta, DeltaTransition, GlobalState, MergeReport, MergedAutomaton, MergedAutomatonBuilder,
    PartId,
};
pub use translation::{
    apply_assignments, evaluate_source, Assignment, FunctionRegistry, MessageStore, ValueSource,
};
pub use xml_load::{
    automaton_to_element, automaton_to_xml, bridge_to_element, bridge_to_xml, load_automaton,
    load_automaton_element, load_bridge, load_bridge_element,
};
