//! Merged automata (§III-C): `A{k1...kn} = (Q, M, q0, F, Act, →, ⇒, δ→, ⊨, P)`.
//!
//! A merged automaton chains the k-coloured automata of several protocols
//! through **δ-transitions** — colour changes carrying λ network actions
//! and translation logic instead of messages. [`MergedAutomaton::check_merge`]
//! verifies the paper's merge constraints (equations (2) and (3)) and the
//! weak-merge chain condition (equation (4)).

use crate::actions::NetworkAction;
use crate::automaton::{Action, ColoredAutomaton, State, StateId, Transition};
use crate::color::Color;
use crate::equivalence::EquivalenceMap;
use crate::error::{AutomataError, Result};
use crate::translation::Assignment;
use std::collections::BTreeSet;
use std::fmt;

/// Index of a part (one protocol's automaton) within a merged automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartId(pub usize);

/// A state of the merged automaton: a part plus a state within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalState {
    /// Which protocol automaton.
    pub part: PartId,
    /// Which state within that automaton.
    pub state: StateId,
}

impl fmt::Display for GlobalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.part.0, self.state)
    }
}

/// A δ-transition: `s --δ({λ})--> s'` between states of *different*
/// parts, carrying λ actions and the translation logic applied while
/// bridging (§IV-B's "bridge state").
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaTransition {
    /// Source state.
    pub from: GlobalState,
    /// Destination state (in another part).
    pub to: GlobalState,
    /// λ actions (`set_host`, ...) executed at the network layer.
    pub actions: Vec<NetworkAction>,
    /// Field assignments applied to the message store.
    pub assignments: Vec<Assignment>,
}

/// A δ-transition under construction, with states referenced as
/// `"PROTOCOL:state_name"` strings.
#[derive(Debug, Clone)]
pub struct Delta {
    from: String,
    to: String,
    actions: Vec<NetworkAction>,
    assignments: Vec<Assignment>,
}

impl Delta {
    /// Creates a δ from `from` to `to` (e.g. `"SLP:s1"` → `"SSDP:s0"`).
    pub fn new(from: impl Into<String>, to: impl Into<String>) -> Self {
        Delta { from: from.into(), to: to.into(), actions: Vec::new(), assignments: Vec::new() }
    }

    /// Attaches a λ action.
    pub fn action(mut self, action: NetworkAction) -> Self {
        self.actions.push(action);
        self
    }

    /// Attaches a translation assignment.
    pub fn assignment(mut self, assignment: Assignment) -> Self {
        self.assignments.push(assignment);
        self
    }
}

/// The result of checking the merge constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// Violations of the structural constraints (2)/(3) or of the
    /// equivalence requirements; empty when mergeable.
    pub violations: Vec<String>,
    /// Equation (4): the δ-transitions chain the parts in a directed path
    /// starting and ending in the same automaton.
    pub weakly_merged: bool,
    /// Parts are mergeable two-by-two (δ in both directions for every
    /// connected pair).
    pub strongly_merged: bool,
    /// The part chain discovered for the weak-merge condition.
    pub chain: Vec<PartId>,
}

impl MergeReport {
    /// True when the automaton satisfies the paper's merge definition.
    pub fn is_mergeable(&self) -> bool {
        self.violations.is_empty() && self.weakly_merged
    }
}

impl fmt::Display for MergeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "mergeable: {} (weak: {}, strong: {})",
            self.is_mergeable(),
            self.weakly_merged,
            self.strongly_merged
        )?;
        for violation in &self.violations {
            writeln!(f, "  violation: {violation}")?;
        }
        Ok(())
    }
}

/// A merged automaton over `n` protocol parts.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedAutomaton {
    name: String,
    parts: Vec<ColoredAutomaton>,
    deltas: Vec<DeltaTransition>,
    equivalences: EquivalenceMap,
    initial: GlobalState,
}

impl MergedAutomaton {
    /// Starts building a merged automaton.
    pub fn builder(name: impl Into<String>) -> MergedAutomatonBuilder {
        MergedAutomatonBuilder {
            name: name.into(),
            parts: Vec::new(),
            deltas: Vec::new(),
            equivalences: EquivalenceMap::new(),
            initial: None,
        }
    }

    /// Wraps a single coloured automaton as a trivial merged automaton
    /// (no δ-transitions) so it can be executed by the same engine.
    pub fn from_single(automaton: ColoredAutomaton) -> Self {
        let initial = GlobalState { part: PartId(0), state: automaton.initial() };
        MergedAutomaton {
            name: automaton.protocol().to_owned(),
            parts: vec![automaton],
            deltas: Vec::new(),
            equivalences: EquivalenceMap::new(),
            initial,
        }
    }

    /// The merged automaton's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The protocol parts in order.
    pub fn parts(&self) -> &[ColoredAutomaton] {
        &self.parts
    }

    /// One part.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownPart`] for out-of-range ids.
    pub fn part(&self, id: PartId) -> Result<&ColoredAutomaton> {
        self.parts.get(id.0).ok_or_else(|| AutomataError::UnknownPart(format!("#{}", id.0)))
    }

    /// Finds a part by protocol name.
    pub fn part_by_protocol(&self, protocol: &str) -> Option<PartId> {
        self.parts.iter().position(|p| p.protocol() == protocol).map(PartId)
    }

    /// The δ-transitions.
    pub fn deltas(&self) -> &[DeltaTransition] {
        &self.deltas
    }

    /// δ-transitions leaving `state`.
    pub fn deltas_from(&self, state: GlobalState) -> impl Iterator<Item = &DeltaTransition> {
        self.deltas.iter().filter(move |d| d.from == state)
    }

    /// The equivalence declarations.
    pub fn equivalences(&self) -> &EquivalenceMap {
        &self.equivalences
    }

    /// The initial state `q0`.
    pub fn initial(&self) -> GlobalState {
        self.initial
    }

    /// Resolves a global state to its [`State`].
    ///
    /// # Errors
    ///
    /// Fails for out-of-range parts or states.
    pub fn state(&self, gs: GlobalState) -> Result<&State> {
        self.part(gs.part)?.state(gs.state)
    }

    /// The colour of a global state.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range parts or states.
    pub fn color_of(&self, gs: GlobalState) -> Result<&Color> {
        self.part(gs.part)?.color_of(gs.state)
    }

    /// Message transitions leaving `state` (within its part).
    pub fn transitions_from(&self, gs: GlobalState) -> Vec<&Transition> {
        match self.part(gs.part) {
            Ok(part) => part.transitions_from(gs.state).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// True when `gs` has a receive transition for `message` —
    /// non-allocating, for per-message session routing.
    pub fn has_receive_transition(&self, gs: GlobalState, message: &str) -> bool {
        match self.part(gs.part) {
            Ok(part) => part
                .transitions_from(gs.state)
                .any(|t| t.action == Action::Receive && t.message == message),
            Err(_) => false,
        }
    }

    /// True when `state` is accepting in its part.
    pub fn is_accepting(&self, gs: GlobalState) -> bool {
        self.state(gs).map(|s| s.accepting).unwrap_or(false)
    }

    /// Human-readable name of a global state: `"SLP:s1"`.
    pub fn state_name(&self, gs: GlobalState) -> String {
        match (self.part(gs.part), self.state(gs)) {
            (Ok(part), Ok(state)) => format!("{}:{}", part.protocol(), state.name),
            _ => gs.to_string(),
        }
    }

    /// Resolves a `"PROTOCOL:state"` reference.
    ///
    /// # Errors
    ///
    /// Fails for missing separators, protocols or state names.
    pub fn resolve_ref(&self, reference: &str) -> Result<GlobalState> {
        resolve_ref(&self.parts, reference)
    }

    /// The union of all part colours — the `{k1...kn}` colouring.
    pub fn colors(&self) -> Vec<&Color> {
        let mut out = Vec::new();
        for part in &self.parts {
            for color in part.colors() {
                if !out.contains(&color) {
                    out.push(color);
                }
            }
        }
        out
    }

    /// The union message alphabet `M`.
    pub fn messages(&self) -> Vec<&str> {
        let set: BTreeSet<&str> =
            self.parts.iter().flat_map(|p| p.messages().into_iter()).collect();
        set.into_iter().collect()
    }

    /// All translation assignments across δ-transitions.
    pub fn assignments(&self) -> impl Iterator<Item = &Assignment> {
        self.deltas.iter().flat_map(|d| d.assignments.iter())
    }

    /// Checks the merge constraints of §III-C.
    ///
    /// Structural constraints (violations when broken):
    ///
    /// 1. every δ connects states of *different* parts;
    /// 2. every δ either enters the initial state of its target part
    ///    (constraint (2)) or leaves an accepting state of its source part
    ///    (constraint (3));
    /// 3. a δ entering a part whose initial state sends message `n`
    ///    requires a declared equivalence `n ⊨ m⃗` with every `m` in the
    ///    source part's receive alphabet.
    ///
    /// Weak merge (equation (4)): the δs can be ordered into a directed
    /// chain through the parts that starts and ends in the initial part.
    /// Strong merge: every δ-connected pair of parts is connected in both
    /// directions.
    pub fn check_merge(&self) -> MergeReport {
        let mut violations = Vec::new();
        for delta in &self.deltas {
            let from_name = self.state_name(delta.from);
            let to_name = self.state_name(delta.to);
            if delta.from.part == delta.to.part {
                violations.push(format!("δ {from_name} → {to_name} stays within one automaton"));
                continue;
            }
            let to_part = match self.part(delta.to.part) {
                Ok(p) => p,
                Err(_) => {
                    violations.push(format!("δ {from_name} → {to_name}: unknown target part"));
                    continue;
                }
            };
            let enters_initial = to_part.initial() == delta.to.state;
            let leaves_accepting = self.state(delta.from).map(|s| s.accepting).unwrap_or(false);
            if !enters_initial && !leaves_accepting {
                violations.push(format!(
                    "δ {from_name} → {to_name} neither enters an initial state (constraint 2) \
                     nor leaves an accepting state (constraint 3)"
                ));
            }
            if enters_initial {
                // Constraint (2)'s equivalence premise: the output message
                // of the target's initial state must be ⊨ to messages
                // received in the source part.
                let first_send = to_part
                    .transitions_from(delta.to.state)
                    .find(|t| t.action == Action::Send)
                    .map(|t| t.message.clone());
                if let Some(message) = first_send {
                    let from_part = match self.part(delta.from.part) {
                        Ok(p) => p,
                        Err(_) => continue,
                    };
                    let receivable: Vec<&str> = from_part
                        .transitions()
                        .iter()
                        .filter(|t| t.action == Action::Receive)
                        .map(|t| t.message.as_str())
                        .collect();
                    if !self.equivalences.is_declared(&message, &receivable) {
                        violations.push(format!(
                            "δ {from_name} → {to_name}: no declared equivalence \
                             {message} |= (messages received in {})",
                            from_part.protocol()
                        ));
                    }
                }
            }
        }

        let (weakly_merged, chain) = self.find_chain();
        let strongly_merged = weakly_merged && self.pairwise_bidirectional();
        MergeReport { violations, weakly_merged, strongly_merged, chain }
    }

    /// Searches for the equation-(4) chain: a directed walk starting at
    /// the initial part that crosses every δ exactly once and visits every
    /// part. The paper's template uses `n` δ-transitions for `n` automata,
    /// with the final δ landing "in the same automaton" the path started
    /// from (Fig. 4) *or* in the last automaton (`s ∈ States(A1) ∪
    /// States(An)`), so the walk's end part is unconstrained — but fewer
    /// δs than parts can never close the template and is rejected.
    fn find_chain(&self) -> (bool, Vec<PartId>) {
        if self.parts.len() == 1 && self.deltas.is_empty() {
            return (true, vec![PartId(0)]);
        }
        if self.deltas.len() < self.parts.len() {
            return (false, Vec::new());
        }
        let start = self.initial.part;
        let part_count = self.parts.len();
        fn dfs(
            deltas: &[DeltaTransition],
            used: &mut Vec<bool>,
            current: PartId,
            part_count: usize,
            path: &mut Vec<PartId>,
        ) -> bool {
            if used.iter().all(|u| *u) {
                let visited: BTreeSet<PartId> = path.iter().copied().collect();
                return visited.len() == part_count;
            }
            for (i, delta) in deltas.iter().enumerate() {
                if used[i] || delta.from.part != current {
                    continue;
                }
                used[i] = true;
                path.push(delta.to.part);
                if dfs(deltas, used, delta.to.part, part_count, path) {
                    return true;
                }
                path.pop();
                used[i] = false;
            }
            false
        }
        let mut used = vec![false; self.deltas.len()];
        let mut path = vec![start];
        let ok = dfs(&self.deltas, &mut used, start, part_count, &mut path);
        (ok, if ok { path } else { Vec::new() })
    }

    fn pairwise_bidirectional(&self) -> bool {
        let pairs: BTreeSet<(PartId, PartId)> =
            self.deltas.iter().map(|d| (d.from.part, d.to.part)).collect();
        pairs.iter().all(|(a, b)| pairs.contains(&(*b, *a)))
    }
}

fn resolve_ref(parts: &[ColoredAutomaton], reference: &str) -> Result<GlobalState> {
    let (protocol, state_name) = reference.split_once(':').ok_or_else(|| {
        AutomataError::Invalid(format!("state reference {reference:?} must be \"PROTOCOL:state\""))
    })?;
    let part_index = parts
        .iter()
        .position(|p| p.protocol() == protocol)
        .ok_or_else(|| AutomataError::UnknownPart(protocol.to_owned()))?;
    let state = parts[part_index]
        .state_by_name(state_name)
        .ok_or_else(|| AutomataError::UnknownState(reference.to_owned()))?;
    Ok(GlobalState { part: PartId(part_index), state: state.id })
}

/// Builder for [`MergedAutomaton`].
#[derive(Debug, Clone)]
pub struct MergedAutomatonBuilder {
    name: String,
    parts: Vec<ColoredAutomaton>,
    deltas: Vec<Delta>,
    equivalences: EquivalenceMap,
    initial: Option<String>,
}

impl MergedAutomatonBuilder {
    /// Adds a protocol part (order defines [`PartId`]s; the first part's
    /// initial state is the merged initial state unless overridden).
    pub fn part(mut self, automaton: ColoredAutomaton) -> Self {
        self.parts.push(automaton);
        self
    }

    /// Declares `target ⊨ sources` (Fig. 5 lines 1–3).
    pub fn equivalence(mut self, target: &str, sources: &[&str]) -> Self {
        self.equivalences.declare(target, sources.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    /// Adds a δ-transition.
    pub fn delta(mut self, delta: Delta) -> Self {
        self.deltas.push(delta);
        self
    }

    /// Overrides the initial state (`"PROTOCOL:state"`).
    pub fn initial(mut self, reference: impl Into<String>) -> Self {
        self.initial = Some(reference.into());
        self
    }

    /// Finalises the merged automaton, resolving all state references.
    ///
    /// # Errors
    ///
    /// Fails on unknown parts/states or duplicate protocol names.
    pub fn build(self) -> Result<MergedAutomaton> {
        if self.parts.is_empty() {
            return Err(AutomataError::Invalid("merged automaton has no parts".into()));
        }
        let mut seen = BTreeSet::new();
        for part in &self.parts {
            if !seen.insert(part.protocol().to_owned()) {
                return Err(AutomataError::Invalid(format!(
                    "duplicate part protocol {:?}",
                    part.protocol()
                )));
            }
        }
        let mut deltas = Vec::with_capacity(self.deltas.len());
        for delta in &self.deltas {
            deltas.push(DeltaTransition {
                from: resolve_ref(&self.parts, &delta.from)?,
                to: resolve_ref(&self.parts, &delta.to)?,
                actions: delta.actions.clone(),
                assignments: delta.assignments.clone(),
            });
        }
        let initial = match &self.initial {
            Some(reference) => resolve_ref(&self.parts, reference)?,
            None => GlobalState { part: PartId(0), state: self.parts[0].initial() },
        };
        Ok(MergedAutomaton {
            name: self.name,
            parts: self.parts,
            deltas,
            equivalences: self.equivalences,
            initial,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{Mode, Transport};

    /// Fig. 1 — the SLP service-side automaton as seen by the bridge: it
    /// receives the client's SrvReq and later sends the SrvReply.
    fn slp() -> ColoredAutomaton {
        ColoredAutomaton::builder("SLP")
            .color(Color::new(Transport::Udp, 427, Mode::Async).multicast("239.255.255.253"))
            .state("s0")
            .state_accepting("s1")
            .receive("s0", "SLPSrvRequest", "s1")
            .send("s1", "SLPSrvReply", "s0")
            .build()
            .unwrap()
    }

    /// Fig. 2 — SSDP client side.
    fn ssdp() -> ColoredAutomaton {
        ColoredAutomaton::builder("SSDP")
            .color(Color::new(Transport::Udp, 1900, Mode::Async).multicast("239.255.255.250"))
            .state("s0")
            .state("s1")
            .state_accepting("s2")
            .send("s0", "SSDP_M-Search", "s1")
            .receive("s1", "SSDP_Resp", "s2")
            .build()
            .unwrap()
    }

    /// Fig. 3 — HTTP client side.
    fn http() -> ColoredAutomaton {
        ColoredAutomaton::builder("HTTP")
            .color(Color::new(Transport::Tcp, 80, Mode::Sync))
            .state("s0")
            .state("s1")
            .state_accepting("s2")
            .send("s0", "HTTP_GET", "s1")
            .receive("s1", "HTTP_OK", "s2")
            .build()
            .unwrap()
    }

    /// The Fig. 4 merged automaton for SLP + SSDP + HTTP.
    fn fig4() -> MergedAutomaton {
        MergedAutomaton::builder("slp-ssdp-http")
            .part(slp())
            .part(ssdp())
            .part(http())
            .equivalence("SSDP_M-Search", &["SLPSrvRequest"])
            .equivalence("HTTP_GET", &["SSDP_Resp"])
            .equivalence("SLPSrvReply", &["HTTP_OK"])
            .delta(Delta::new("SLP:s1", "SSDP:s0").assignment(Assignment::field_to_field(
                "SSDP_M-Search",
                "ST",
                "SLPSrvRequest",
                "SRVType",
            )))
            .delta(Delta::new("SSDP:s2", "HTTP:s0"))
            .delta(Delta::new("HTTP:s2", "SLP:s1"))
            .build()
            .unwrap()
    }

    #[test]
    fn fig4_is_weakly_merged() {
        let merged = fig4();
        let report = merged.check_merge();
        assert!(report.is_mergeable(), "{report}");
        assert!(report.weakly_merged);
        // The 3-protocol chain is weak, not strong (no return δs per pair).
        assert!(!report.strongly_merged);
        assert_eq!(report.chain, vec![PartId(0), PartId(1), PartId(2), PartId(0)]);
    }

    #[test]
    fn two_part_bidirectional_merge_is_strong() {
        // SLP ↔ mDNS style: both δ directions present.
        let dns = ColoredAutomaton::builder("DNS")
            .color(Color::new(Transport::Udp, 5353, Mode::Async).multicast("224.0.0.251"))
            .state("s0")
            .state("s1")
            .state_accepting("s2")
            .send("s0", "DNS_Question", "s1")
            .receive("s1", "DNS_Response", "s2")
            .build()
            .unwrap();
        let merged = MergedAutomaton::builder("slp-dns")
            .part(slp())
            .part(dns)
            .equivalence("DNS_Question", &["SLPSrvRequest"])
            .equivalence("SLPSrvReply", &["DNS_Response"])
            .delta(Delta::new("SLP:s1", "DNS:s0"))
            .delta(Delta::new("DNS:s2", "SLP:s1"))
            .build()
            .unwrap();
        let report = merged.check_merge();
        assert!(report.is_mergeable(), "{report}");
        assert!(report.strongly_merged);
    }

    #[test]
    fn missing_equivalence_is_a_violation() {
        let merged = MergedAutomaton::builder("bad")
            .part(slp())
            .part(ssdp())
            // No equivalence declared for SSDP_M-Search.
            .equivalence("SLPSrvReply", &["SSDP_Resp"])
            .delta(Delta::new("SLP:s1", "SSDP:s0"))
            .delta(Delta::new("SSDP:s2", "SLP:s1"))
            .build()
            .unwrap();
        let report = merged.check_merge();
        assert!(!report.is_mergeable());
        assert!(report.violations[0].contains("SSDP_M-Search"));
    }

    #[test]
    fn delta_within_one_part_is_a_violation() {
        let merged = MergedAutomaton::builder("bad")
            .part(slp())
            .part(ssdp())
            .delta(Delta::new("SLP:s0", "SLP:s1"))
            .build()
            .unwrap();
        let report = merged.check_merge();
        assert!(report.violations.iter().any(|v| v.contains("within one automaton")));
    }

    #[test]
    fn delta_into_interior_state_from_non_accepting_is_a_violation() {
        // SSDP:s1 is neither initial (of SSDP) nor is SLP:s0 accepting.
        let merged = MergedAutomaton::builder("bad")
            .part(slp())
            .part(ssdp())
            .delta(Delta::new("SLP:s0", "SSDP:s1"))
            .build()
            .unwrap();
        let report = merged.check_merge();
        assert!(report.violations.iter().any(|v| v.contains("constraint")));
    }

    #[test]
    fn broken_chain_is_not_weakly_merged() {
        // δ out but never back: the path cannot return to SLP.
        let merged = MergedAutomaton::builder("open")
            .part(slp())
            .part(ssdp())
            .equivalence("SSDP_M-Search", &["SLPSrvRequest"])
            .delta(Delta::new("SLP:s1", "SSDP:s0"))
            .build()
            .unwrap();
        let report = merged.check_merge();
        assert!(!report.weakly_merged);
        assert!(!report.is_mergeable());
    }

    #[test]
    fn resolve_ref_and_state_names() {
        let merged = fig4();
        let gs = merged.resolve_ref("HTTP:s2").unwrap();
        assert_eq!(gs.part, PartId(2));
        assert_eq!(merged.state_name(gs), "HTTP:s2");
        assert!(merged.resolve_ref("HTTP").is_err());
        assert!(merged.resolve_ref("GOPHER:s0").is_err());
        assert!(merged.resolve_ref("HTTP:s9").is_err());
    }

    #[test]
    fn colors_are_unioned() {
        let merged = fig4();
        assert_eq!(merged.colors().len(), 3); // k1, k2, k3
    }

    #[test]
    fn messages_are_unioned() {
        let merged = fig4();
        assert_eq!(
            merged.messages(),
            vec![
                "HTTP_GET",
                "HTTP_OK",
                "SLPSrvReply",
                "SLPSrvRequest",
                "SSDP_M-Search",
                "SSDP_Resp"
            ]
        );
    }

    #[test]
    fn duplicate_part_protocols_rejected() {
        let err = MergedAutomaton::builder("dup").part(slp()).part(slp()).build().unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn from_single_wraps_trivially() {
        let merged = MergedAutomaton::from_single(slp());
        assert_eq!(merged.parts().len(), 1);
        assert!(merged.check_merge().is_mergeable());
        assert_eq!(merged.initial().part, PartId(0));
    }

    #[test]
    fn initial_defaults_to_first_part() {
        let merged = fig4();
        assert_eq!(merged.initial(), GlobalState { part: PartId(0), state: StateId(0) });
    }

    #[test]
    fn deltas_from_filters() {
        let merged = fig4();
        let from = merged.resolve_ref("SSDP:s2").unwrap();
        assert_eq!(merged.deltas_from(from).count(), 1);
    }
}
