//! The semantic-equivalence operator ⊨ (§III-C, equation (1)):
//! `n ⊨ m⃗` holds iff every mandatory field of `n` can be filled from a
//! semantically equivalent field of some message in the sequence `m⃗`.
//!
//! Starlink realises ⊨ in two layers: *declarations* (the merge spec
//! asserts which messages are equivalent, Fig. 5 lines 1–3) and *field
//! coverage* (the declared assignments must actually fill every mandatory
//! field of the target — checkable statically against the assignments and
//! dynamically against a composed instance).

use crate::translation::Assignment;
use starlink_message::AbstractMessage;
use std::collections::BTreeSet;
use std::fmt;

/// One declaration `target ⊨ sources` (e.g. `SSDP_M-Search ⊨ SLPSrvRequest`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceDecl {
    /// The message to be produced.
    pub target: String,
    /// The received message sequence it is equivalent to.
    pub sources: Vec<String>,
}

impl fmt::Display for EquivalenceDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} |= {}", self.target, self.sources.join(", "))
    }
}

/// The set of equivalence declarations of a merged automaton.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EquivalenceMap {
    declarations: Vec<EquivalenceDecl>,
}

impl EquivalenceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        EquivalenceMap::default()
    }

    /// Declares `target ⊨ sources`.
    pub fn declare(&mut self, target: impl Into<String>, sources: Vec<String>) -> &mut Self {
        self.declarations.push(EquivalenceDecl { target: target.into(), sources });
        self
    }

    /// All declarations.
    pub fn declarations(&self) -> &[EquivalenceDecl] {
        &self.declarations
    }

    /// The declaration for `target`, if any.
    pub fn for_target(&self, target: &str) -> Option<&EquivalenceDecl> {
        self.declarations.iter().find(|d| d.target == target)
    }

    /// True when `target ⊨ received` is declared: a declaration for
    /// `target` exists whose sources all appear in `received`.
    pub fn is_declared(&self, target: &str, received: &[&str]) -> bool {
        match self.for_target(target) {
            Some(decl) => decl.sources.iter().all(|s| received.contains(&s.as_str())),
            None => false,
        }
    }

    /// Number of declarations.
    pub fn len(&self) -> usize {
        self.declarations.len()
    }

    /// True when no declarations exist.
    pub fn is_empty(&self) -> bool {
        self.declarations.is_empty()
    }
}

/// Statically checks field coverage for one declaration: every mandatory
/// field of the `target` blank must be the target of some assignment (or
/// carry a non-empty default). Returns the uncovered labels.
pub fn uncovered_mandatory_fields(
    target_blank: &AbstractMessage,
    assignments: &[Assignment],
) -> Vec<String> {
    let assigned: BTreeSet<&str> = assignments
        .iter()
        .filter(|a| a.target_message == target_blank.name())
        .filter_map(|a| a.target_path.segments().first())
        .map(|segment| segment.label.as_str())
        .collect();
    target_blank
        .mandatory_labels()
        .filter(|label| {
            if assigned.contains(label) {
                return false;
            }
            // A field pre-filled by a schema default (e.g. a rule
            // discriminator) counts as covered.
            match target_blank.field(label).and_then(|f| f.value().ok()) {
                Some(value) => value.is_empty(),
                None => true,
            }
        })
        .map(str::to_owned)
        .collect()
}

/// Dynamically checks `instance ⊨ ...` after translation: are all
/// mandatory fields filled?
pub fn holds_for_instance(instance: &AbstractMessage) -> bool {
    instance.unfilled_mandatory().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_message::Field;

    fn blank_reply() -> AbstractMessage {
        let mut msg = AbstractMessage::new("SLP", "SLPSrvReply");
        msg.push_field(Field::primitive("URL", ""));
        msg.push_field(Field::primitive("XID", 0u16));
        msg.mark_mandatory("URL");
        msg.mark_mandatory("XID");
        msg
    }

    #[test]
    fn declarations_of_fig5_lines_1_to_3() {
        let mut map = EquivalenceMap::new();
        map.declare("SSDP_M-Search", vec!["SLPSrvRequest".into()]);
        map.declare("HTTP_GET", vec!["SSDP_Resp".into()]);
        map.declare("SLPSrvReply", vec!["HTTP_OK".into()]);
        assert_eq!(map.len(), 3);
        assert!(map.is_declared("SSDP_M-Search", &["SLPSrvRequest"]));
        assert!(!map.is_declared("SSDP_M-Search", &["SomethingElse"]));
        assert!(!map.is_declared("Unknown", &["SLPSrvRequest"]));
    }

    #[test]
    fn multi_source_declaration_requires_all() {
        let mut map = EquivalenceMap::new();
        map.declare("Combined", vec!["A".into(), "B".into()]);
        assert!(map.is_declared("Combined", &["A", "B", "C"]));
        assert!(!map.is_declared("Combined", &["A"]));
    }

    #[test]
    fn coverage_detects_missing_mandatory_assignment() {
        let blank = blank_reply();
        let assignments =
            vec![Assignment::field_to_field("SLPSrvReply", "URL", "HTTP_OK", "URL_BASE")];
        // XID mandatory but unassigned and empty.
        assert_eq!(uncovered_mandatory_fields(&blank, &assignments), vec!["XID"]);
    }

    #[test]
    fn coverage_accepts_full_assignment_set() {
        let blank = blank_reply();
        let assignments = vec![
            Assignment::field_to_field("SLPSrvReply", "URL", "HTTP_OK", "URL_BASE"),
            Assignment::field_to_field("SLPSrvReply", "XID", "SLPSrvRequest", "XID"),
        ];
        assert!(uncovered_mandatory_fields(&blank, &assignments).is_empty());
    }

    #[test]
    fn coverage_accepts_non_empty_defaults() {
        let mut blank = AbstractMessage::new("P", "M");
        blank.push_field(Field::primitive("Version", 2u8));
        blank.mark_mandatory("Version");
        assert!(uncovered_mandatory_fields(&blank, &[]).is_empty());
    }

    #[test]
    fn coverage_ignores_assignments_to_other_messages() {
        let blank = blank_reply();
        let assignments = vec![Assignment::field_to_field("Other", "URL", "HTTP_OK", "URL_BASE")];
        assert_eq!(uncovered_mandatory_fields(&blank, &assignments).len(), 2);
    }

    #[test]
    fn instance_check_after_translation() {
        let mut instance = blank_reply();
        assert!(!holds_for_instance(&instance));
        instance.set(&"URL".into(), "service:printer://x".into()).unwrap();
        instance.set(&"XID".into(), starlink_message::Value::Unsigned(7)).unwrap();
        assert!(holds_for_instance(&instance));
    }
}
