//! k-coloured automata definitions (§III-B):
//! `Ak = (Q, M, q0, F, Act, →, ⇒)`.

use crate::color::Color;
use crate::error::{AutomataError, Result};
use std::collections::BTreeSet;
use std::fmt;

/// Index of a state within its automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The action set `Act = {?, !}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// `?m` — the transition fires when message `m` is received.
    Receive,
    /// `!m` — the transition fires by sending message `m`.
    Send,
}

impl Action {
    /// The paper's prefix notation (`?` or `!`).
    pub fn symbol(&self) -> char {
        match self {
            Action::Receive => '?',
            Action::Send => '!',
        }
    }
}

/// One state of a coloured automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Stable identifier within the automaton.
    pub id: StateId,
    /// Human-readable name (`s0`, `s1`, ... by default).
    pub name: String,
    /// Index into the automaton's colour list.
    pub color: usize,
    /// Whether this state is in the accepting set `F`.
    pub accepting: bool,
}

/// One transition `s1 --(?|!)m--> s2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Send or receive.
    pub action: Action,
    /// The abstract message name labelling the transition.
    pub message: String,
    /// Destination state.
    pub to: StateId,
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} --{}{}--> {}", self.from, self.action.symbol(), self.message, self.to)
    }
}

/// A k-coloured automaton for one protocol.
///
/// ```
/// use starlink_automata::{ColoredAutomaton, Color, Transport, Mode, Action};
///
/// // Fig. 1: the SLP service-side automaton.
/// let slp = ColoredAutomaton::builder("SLP")
///     .color(Color::new(Transport::Udp, 427, Mode::Async).multicast("239.255.255.253"))
///     .state("s0")
///     .state_accepting("s1")
///     .receive("s0", "SLPSrvRequest", "s1")
///     .send("s1", "SLPSrvReply", "s0")
///     .build()?;
/// assert_eq!(slp.states().len(), 2);
/// assert_eq!(slp.transitions().len(), 2);
/// # Ok::<(), starlink_automata::AutomataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoredAutomaton {
    protocol: String,
    colors: Vec<Color>,
    states: Vec<State>,
    transitions: Vec<Transition>,
    initial: StateId,
}

impl ColoredAutomaton {
    /// Starts building an automaton for `protocol`.
    pub fn builder(protocol: impl Into<String>) -> AutomatonBuilder {
        AutomatonBuilder {
            protocol: protocol.into(),
            colors: Vec::new(),
            states: Vec::new(),
            transitions: Vec::new(),
            initial: None,
        }
    }

    /// The protocol this automaton describes.
    pub fn protocol(&self) -> &str {
        &self.protocol
    }

    /// The colour list; `k = colors().len()` distinct colours.
    pub fn colors(&self) -> &[Color] {
        &self.colors
    }

    /// All states.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The initial state `q0`.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The accepting set `F`.
    pub fn accepting(&self) -> impl Iterator<Item = &State> {
        self.states.iter().filter(|s| s.accepting)
    }

    /// Looks up a state by id.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownState`] for out-of-range ids.
    pub fn state(&self, id: StateId) -> Result<&State> {
        self.states.get(id.0).ok_or_else(|| AutomataError::UnknownState(id.to_string()))
    }

    /// Looks up a state by name.
    pub fn state_by_name(&self, name: &str) -> Option<&State> {
        self.states.iter().find(|s| s.name == name)
    }

    /// The colour of a state.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::UnknownState`] for out-of-range ids.
    pub fn color_of(&self, id: StateId) -> Result<&Color> {
        let state = self.state(id)?;
        self.colors.get(state.color).ok_or_else(|| {
            AutomataError::Invalid(format!("state {} references missing colour", state.name))
        })
    }

    /// Transitions leaving `from`.
    pub fn transitions_from(&self, from: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == from)
    }

    /// The message alphabet `M` (sorted, deduplicated).
    pub fn messages(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.transitions.iter().map(|t| t.message.as_str()).collect();
        set.into_iter().collect()
    }

    /// Structural validation (performed by [`AutomatonBuilder::build`]):
    /// state/colour references resolve, and every transition connects
    /// same-coloured states ("an automaton can pass ... from one state to
    /// another ... only if the concerned states share the same color").
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::Invalid`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.states.is_empty() {
            return Err(AutomataError::Invalid("automaton has no states".into()));
        }
        if self.colors.is_empty() {
            return Err(AutomataError::Invalid("automaton has no colours".into()));
        }
        for state in &self.states {
            if state.color >= self.colors.len() {
                return Err(AutomataError::Invalid(format!(
                    "state {} references colour #{} of {}",
                    state.name,
                    state.color,
                    self.colors.len()
                )));
            }
        }
        for transition in &self.transitions {
            let from = self.state(transition.from)?;
            let to = self.state(transition.to)?;
            if from.color != to.color {
                return Err(AutomataError::Invalid(format!(
                    "transition {transition} crosses colours without a δ-transition"
                )));
            }
        }
        Ok(())
    }
}

/// Builder for [`ColoredAutomaton`]; states are named and referenced by
/// name while building.
#[derive(Debug, Clone)]
pub struct AutomatonBuilder {
    protocol: String,
    colors: Vec<Color>,
    states: Vec<(String, usize, bool)>,
    transitions: Vec<(String, Action, String, String)>,
    initial: Option<String>,
}

impl AutomatonBuilder {
    /// Adds a colour; subsequently added states use the latest colour.
    pub fn color(mut self, color: Color) -> Self {
        self.colors.push(color);
        self
    }

    fn push_state(mut self, name: &str, accepting: bool) -> Self {
        let color = self.colors.len().saturating_sub(1);
        self.states.push((name.to_owned(), color, accepting));
        if self.initial.is_none() {
            self.initial = Some(name.to_owned());
        }
        self
    }

    /// Adds a state (the first added state is initial).
    pub fn state(self, name: &str) -> Self {
        self.push_state(name, false)
    }

    /// Adds an accepting state.
    pub fn state_accepting(self, name: &str) -> Self {
        self.push_state(name, true)
    }

    /// Marks a previously added state as initial.
    pub fn initial(mut self, name: &str) -> Self {
        self.initial = Some(name.to_owned());
        self
    }

    /// Adds a receive transition `from --?message--> to`.
    pub fn receive(mut self, from: &str, message: &str, to: &str) -> Self {
        self.transitions.push((
            from.to_owned(),
            Action::Receive,
            message.to_owned(),
            to.to_owned(),
        ));
        self
    }

    /// Adds a send transition `from --!message--> to`.
    pub fn send(mut self, from: &str, message: &str, to: &str) -> Self {
        self.transitions.push((from.to_owned(), Action::Send, message.to_owned(), to.to_owned()));
        self
    }

    /// Finalises and validates the automaton.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::Invalid`] for duplicate/unknown state
    /// names or colour violations.
    pub fn build(self) -> Result<ColoredAutomaton> {
        let mut states = Vec::with_capacity(self.states.len());
        for (index, (name, color, accepting)) in self.states.iter().enumerate() {
            if self.states.iter().filter(|(n, _, _)| n == name).count() > 1 {
                return Err(AutomataError::Invalid(format!("duplicate state name {name:?}")));
            }
            states.push(State {
                id: StateId(index),
                name: name.clone(),
                color: *color,
                accepting: *accepting,
            });
        }
        let find = |name: &str| -> Result<StateId> {
            states
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.id)
                .ok_or_else(|| AutomataError::UnknownState(name.to_owned()))
        };
        let mut transitions = Vec::with_capacity(self.transitions.len());
        for (from, action, message, to) in &self.transitions {
            transitions.push(Transition {
                from: find(from)?,
                action: *action,
                message: message.clone(),
                to: find(to)?,
            });
        }
        let initial = match &self.initial {
            Some(name) => find(name)?,
            None => return Err(AutomataError::Invalid("automaton has no states".into())),
        };
        let automaton = ColoredAutomaton {
            protocol: self.protocol,
            colors: self.colors,
            states,
            transitions,
            initial,
        };
        automaton.validate()?;
        Ok(automaton)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{Mode, Transport};

    fn slp_color() -> Color {
        Color::new(Transport::Udp, 427, Mode::Async).multicast("239.255.255.253")
    }

    /// Fig. 2: the SSDP client-side automaton (send search, await resp).
    fn ssdp() -> ColoredAutomaton {
        ColoredAutomaton::builder("SSDP")
            .color(Color::new(Transport::Udp, 1900, Mode::Async).multicast("239.255.255.250"))
            .state("s0")
            .state("s1")
            .state_accepting("s2")
            .send("s0", "SSDP_M-Search", "s1")
            .receive("s1", "SSDP_Resp", "s2")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_constructs_fig2() {
        let a = ssdp();
        assert_eq!(a.protocol(), "SSDP");
        assert_eq!(a.initial(), StateId(0));
        assert_eq!(a.accepting().count(), 1);
        assert_eq!(a.messages(), vec!["SSDP_M-Search", "SSDP_Resp"]);
    }

    #[test]
    fn first_state_is_initial_by_default() {
        let a = ColoredAutomaton::builder("X")
            .color(slp_color())
            .state("a")
            .state("b")
            .build()
            .unwrap();
        assert_eq!(a.state(a.initial()).unwrap().name, "a");
    }

    #[test]
    fn initial_can_be_overridden() {
        let a = ColoredAutomaton::builder("X")
            .color(slp_color())
            .state("a")
            .state("b")
            .initial("b")
            .build()
            .unwrap();
        assert_eq!(a.state(a.initial()).unwrap().name, "b");
    }

    #[test]
    fn duplicate_state_names_rejected() {
        let err = ColoredAutomaton::builder("X")
            .color(slp_color())
            .state("a")
            .state("a")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn unknown_transition_endpoint_rejected() {
        let err = ColoredAutomaton::builder("X")
            .color(slp_color())
            .state("a")
            .receive("a", "M", "ghost")
            .build()
            .unwrap_err();
        assert!(matches!(err, AutomataError::UnknownState(_)));
    }

    #[test]
    fn cross_color_transition_rejected() {
        // Two colours; a transition between differently-coloured states
        // must be refused (that is what δ-transitions are for).
        let err = ColoredAutomaton::builder("X")
            .color(slp_color())
            .state("a")
            .color(Color::new(Transport::Tcp, 80, Mode::Sync))
            .state("b")
            .send("a", "M", "b")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("δ"));
    }

    #[test]
    fn no_states_rejected() {
        assert!(ColoredAutomaton::builder("X").color(slp_color()).build().is_err());
        assert!(ColoredAutomaton::builder("X").build().is_err());
    }

    #[test]
    fn transitions_from_filters() {
        let a = ssdp();
        let from_initial: Vec<_> = a.transitions_from(StateId(0)).collect();
        assert_eq!(from_initial.len(), 1);
        assert_eq!(from_initial[0].message, "SSDP_M-Search");
        assert_eq!(from_initial[0].action, Action::Send);
    }

    #[test]
    fn state_lookup_by_name() {
        let a = ssdp();
        assert_eq!(a.state_by_name("s2").unwrap().id, StateId(2));
        assert!(a.state_by_name("nope").is_none());
    }

    #[test]
    fn color_of_resolves() {
        let a = ssdp();
        assert_eq!(a.color_of(StateId(0)).unwrap().port(), 1900);
    }

    #[test]
    fn transition_display_uses_paper_notation() {
        let a = ssdp();
        assert_eq!(a.transitions()[0].to_string(), "s0 --!SSDP_M-Search--> s1");
        assert_eq!(a.transitions()[1].to_string(), "s1 --?SSDP_Resp--> s2");
    }
}
