//! Compiled translation steps: the fused fast path's intermediate
//! representation.
//!
//! The interpreted pipeline evaluates δ-transition [`Assignment`]s by
//! walking [`ValueSource`] trees, looking functions up by name in the
//! [`FunctionRegistry`] and shuttling [`Value`]s through a message
//! store. [`compile_steps`] lowers the same assignments — once, at
//! deployment — into [`FusedStep`]s over numbered record slots:
//! sources become slot references or pre-folded literals, and function
//! calls become [`FusedFn`] variants whose native implementations
//! replicate the registry builtins bit-for-bit without allocating.
//!
//! The lowering is total or nothing: any construct without an exact
//! allocation-free replica (multi-argument functions over non-literal
//! arguments, nested field paths, non-scalar literals, unknown function
//! names) fails compilation with a structured [`FuseError`], and the
//! caller keeps that bridge on the interpreted path.

use crate::translation::{Assignment, FunctionRegistry, ValueSource};
use starlink_message::Value;
use std::fmt;

/// Why an assignment list fell outside the fusable subset. Each variant
/// is a precise, machine-readable reject reason; `starlink-check
/// --explain-fusion` surfaces them with lint codes, and the engine keeps
/// the bridge on the interpreted path.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FuseError {
    /// An assignment targets a message other than the one being composed.
    TargetMessageMismatch {
        /// The message the assignment targets.
        found: String,
        /// The outbound message fusion is compiling.
        expected: String,
    },
    /// The assignment's target path has more than one segment.
    NestedTargetPath(String),
    /// A source field path has more than one segment.
    NestedSourcePath(String),
    /// A source field does not resolve to any record slot.
    UnknownSourceField {
        /// Message the field was looked up in.
        message: String,
        /// The unresolved field label.
        field: String,
    },
    /// A literal value has no slot representation (only unsigned
    /// integers and strings do).
    UnfusableLiteral(String),
    /// Constant-folding a literal-only function application through the
    /// registry failed.
    ConstantFoldFailed {
        /// The function name.
        name: String,
        /// The registry's failure reason.
        reason: String,
    },
    /// A function takes several non-literal arguments; only unary
    /// applications fuse.
    MultiArgFunction {
        /// The function name.
        name: String,
        /// How many arguments it was given.
        args: usize,
    },
    /// No native replica exists for the named registry function.
    NoFusedReplica(String),
}

impl fmt::Display for FuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuseError::TargetMessageMismatch { found, expected } => {
                write!(f, "assignment targets {found:?}, expected {expected:?}")
            }
            FuseError::NestedTargetPath(path) => {
                write!(f, "nested target path {path} is not fusable")
            }
            FuseError::NestedSourcePath(path) => {
                write!(f, "nested field path {path} is not fusable")
            }
            FuseError::UnknownSourceField { message, field } => {
                write!(f, "unknown source field {message}.{field}")
            }
            FuseError::UnfusableLiteral(value) => {
                write!(f, "literal {value} has no fused representation")
            }
            FuseError::ConstantFoldFailed { name, reason } => {
                write!(f, "constant fold of {name} failed: {reason}")
            }
            FuseError::MultiArgFunction { name, args } => {
                write!(
                    f,
                    "function {name} takes {args} non-literal arguments; only unary \
                     functions fuse"
                )
            }
            FuseError::NoFusedReplica(name) => {
                write!(f, "function {name} has no fused replica")
            }
        }
    }
}

impl std::error::Error for FuseError {}

/// A slot of one of the two source records a step can read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRef {
    /// A slot of the parsed request record.
    Request(usize),
    /// A slot of the parsed response record.
    Response(usize),
}

/// A translation builtin with a native, allocation-free implementation.
/// Each variant must produce exactly the bytes of its registry
/// namesake; the equivalence tests in the core crate hold them to that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedFn {
    /// `identity`.
    Identity,
    /// `to-text`.
    ToText,
    /// `to-integer`.
    ToInteger,
    /// `slp-to-dns-type`: `service:printer` → `_printer._tcp.local`.
    SlpToDnsType,
    /// `dns-to-slp-type`: `_printer._tcp.local` → `service:printer`.
    DnsToSlpType,
    /// `slp-to-wsd-type`: `service:printer` → `dn:printer`.
    SlpToWsdType,
    /// `wsd-to-slp-type`: `dn:printer` → `service:printer`.
    WsdToSlpType,
    /// `dns-to-wsd-type`: `_printer._tcp.local` → `dn:printer`.
    DnsToWsdType,
    /// `wsd-to-dns-type`: `dn:printer` → `_printer._tcp.local`.
    WsdToDnsType,
    /// `derive-uuid`: deterministic WS-Addressing `urn:uuid:...`.
    DeriveUuid,
    /// `uuid-to-id`: 16-bit transaction id hashed from any text.
    UuidToId,
}

/// One function argument (or result), borrowed from a record or scratch
/// buffer.
#[derive(Debug, Clone, Copy)]
pub enum FusedArg<'a> {
    /// A numeric value.
    Num(u64),
    /// A text value.
    Text(&'a str),
}

/// A [`FusedFn`] application result: numeric, or text written into the
/// caller's scratch buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedOut {
    /// The function produced this number.
    Num(u64),
    /// The function appended its text to the output buffer.
    Text,
}

/// `Value::to_text` for a numeric argument without heap allocation:
/// formats into a stack buffer and hands the digits to `f`.
fn with_text<R>(arg: FusedArg<'_>, f: impl FnOnce(&str) -> R) -> R {
    match arg {
        FusedArg::Text(t) => f(t),
        FusedArg::Num(mut v) => {
            let mut buf = [0u8; 20];
            let mut i = buf.len();
            loop {
                i -= 1;
                buf[i] = b'0' + (v % 10) as u8;
                v /= 10;
                if v == 0 {
                    break;
                }
            }
            f(std::str::from_utf8(&buf[i..]).expect("decimal digits are UTF-8"))
        }
    }
}

/// `service_name_of` from the registry builtins, returning a borrowed
/// slice instead of an owned string: `service:printer`, `dn:printer`
/// and `_printer._tcp.local` all yield `printer`.
fn service_name_of(text: &str) -> &str {
    let text = text.trim();
    let after_scheme = match text.split_once(':') {
        Some((_, rest)) if !rest.is_empty() => rest,
        _ => text,
    };
    let first = after_scheme.split(['.', ':']).next().unwrap_or(after_scheme);
    first.strip_prefix('_').unwrap_or(first)
}

/// FNV-1a from an explicit offset basis (mirrors the registry builtin).
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Fills `slot` with `value` as lowercase hex, zero-padded to the slot
/// length, high nibble first — `{:0N$x}` without the formatting
/// machinery.
fn hex_into(slot: &mut [u8], value: u64) {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    for (i, byte) in slot.iter_mut().rev().enumerate() {
        *byte = DIGITS[((value >> (i * 4)) & 0xF) as usize];
    }
}

impl FusedFn {
    /// The fused replica of registry function `name`, when one exists.
    pub fn from_name(name: &str) -> Option<FusedFn> {
        Some(match name {
            "identity" => FusedFn::Identity,
            "to-text" => FusedFn::ToText,
            "to-integer" => FusedFn::ToInteger,
            "slp-to-dns-type" => FusedFn::SlpToDnsType,
            "dns-to-slp-type" => FusedFn::DnsToSlpType,
            "slp-to-wsd-type" => FusedFn::SlpToWsdType,
            "wsd-to-slp-type" => FusedFn::WsdToSlpType,
            "dns-to-wsd-type" => FusedFn::DnsToWsdType,
            "wsd-to-dns-type" => FusedFn::WsdToDnsType,
            "derive-uuid" => FusedFn::DeriveUuid,
            "uuid-to-id" => FusedFn::UuidToId,
            _ => return None,
        })
    }

    /// Applies the function to `arg`, appending text output to `out`
    /// (not cleared — callers segment the buffer).
    ///
    /// # Errors
    ///
    /// Returns the registry-equivalent failure reason (`to-integer` on
    /// non-numeric text is the only fallible builtin here).
    pub fn apply(&self, arg: FusedArg<'_>, out: &mut String) -> Result<FusedOut, String> {
        match self {
            FusedFn::Identity => match arg {
                FusedArg::Num(v) => Ok(FusedOut::Num(v)),
                FusedArg::Text(t) => {
                    out.push_str(t);
                    Ok(FusedOut::Text)
                }
            },
            FusedFn::ToText => {
                with_text(arg, |t| out.push_str(t));
                Ok(FusedOut::Text)
            }
            FusedFn::ToInteger => with_text(arg, |t| {
                t.trim()
                    .parse::<u64>()
                    .map(FusedOut::Num)
                    .map_err(|_| format!("cannot parse {t:?} as integer"))
            }),
            FusedFn::SlpToDnsType => {
                with_text(arg, |t| {
                    let name = t.strip_prefix("service:").unwrap_or(t);
                    let name = name.split(':').next().unwrap_or(name);
                    out.push('_');
                    out.push_str(name);
                    out.push_str("._tcp.local");
                });
                Ok(FusedOut::Text)
            }
            FusedFn::DnsToSlpType => {
                with_text(arg, |t| {
                    let first = t.split('.').next().unwrap_or(t);
                    let name = first.strip_prefix('_').unwrap_or(first);
                    out.push_str("service:");
                    out.push_str(name);
                });
                Ok(FusedOut::Text)
            }
            FusedFn::SlpToWsdType | FusedFn::DnsToWsdType => {
                with_text(arg, |t| {
                    out.push_str("dn:");
                    out.push_str(service_name_of(t));
                });
                Ok(FusedOut::Text)
            }
            FusedFn::WsdToSlpType => {
                with_text(arg, |t| {
                    out.push_str("service:");
                    out.push_str(service_name_of(t));
                });
                Ok(FusedOut::Text)
            }
            FusedFn::WsdToDnsType => {
                with_text(arg, |t| {
                    out.push('_');
                    out.push_str(service_name_of(t));
                    out.push_str("._tcp.local");
                });
                Ok(FusedOut::Text)
            }
            FusedFn::DeriveUuid => {
                with_text(arg, |seed| {
                    // Both FNV-1a passes in one sweep, and the hex
                    // emitted by hand into a stack buffer: this runs
                    // once per replayed duplicate on the wire-level
                    // fast path, where `write!`'s formatting machinery
                    // would dominate the whole hit. Groups and widths
                    // match "urn:uuid:{:08x}-{:04x}-4{:03x}-8{:03x}-
                    // {:012x}" over ((a>>32), (a>>16) as u16, a&0xFFF,
                    // (b>>48)&0xFFF, b&0xFFFF_FFFF_FFFF) exactly.
                    let (mut a, mut b) = (0xcbf2_9ce4_8422_2325u64, 0x6c62_272e_07bb_0142u64);
                    for &byte in seed.as_bytes() {
                        a = (a ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
                        b = (b ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    let mut buf = *b"urn:uuid:00000000-0000-4000-8000-000000000000";
                    hex_into(&mut buf[9..17], a >> 32);
                    hex_into(&mut buf[18..22], (a >> 16) & 0xFFFF);
                    hex_into(&mut buf[24..27], a & 0xFFF);
                    hex_into(&mut buf[29..32], (b >> 48) & 0xFFF);
                    hex_into(&mut buf[33..45], b & 0xFFFF_FFFF_FFFF);
                    out.push_str(std::str::from_utf8(&buf).expect("hex is ASCII"));
                });
                Ok(FusedOut::Text)
            }
            FusedFn::UuidToId => Ok(FusedOut::Num(with_text(arg, |t| {
                fnv1a(t.as_bytes(), 0xcbf2_9ce4_8422_2325) & 0xFFFF
            }))),
        }
    }
}

/// A compiled value source.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedSource {
    /// Copy a source-record slot.
    Slot(SlotRef),
    /// A pre-folded numeric constant.
    LitNum(u64),
    /// A pre-folded text constant.
    LitText(String),
    /// Apply a builtin to a nested source.
    Apply(FusedFn, Box<FusedSource>),
}

/// One compiled assignment: evaluate `source`, write it into slot
/// `target` of the outbound record.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedStep {
    /// Target slot in the outbound record.
    pub target: usize,
    /// Where the value comes from.
    pub source: FusedSource,
}

fn fold_literal(value: Value) -> Result<FusedSource, FuseError> {
    match value {
        Value::Unsigned(v) => Ok(FusedSource::LitNum(v)),
        Value::Str(s) => Ok(FusedSource::LitText(s)),
        other => Err(FuseError::UnfusableLiteral(format!("{other:?}"))),
    }
}

fn compile_source(
    source: &ValueSource,
    resolve_source: &dyn Fn(&str, &str) -> Option<SlotRef>,
    registry: &FunctionRegistry,
) -> Result<FusedSource, FuseError> {
    match source {
        ValueSource::Field { message, path, .. } => {
            let [segment] = path.segments() else {
                return Err(FuseError::NestedSourcePath(path.to_string()));
            };
            let label = segment.label.as_str();
            resolve_source(message, label).map(FusedSource::Slot).ok_or_else(|| {
                FuseError::UnknownSourceField { message: message.clone(), field: label.to_owned() }
            })
        }
        ValueSource::Literal(value) => fold_literal(value.clone()),
        ValueSource::Function { name, args } => {
            // Constant-fold through the real registry so folded values
            // are exact by construction, whatever the function.
            let literals: Option<Vec<Value>> = args
                .iter()
                .map(|a| match a {
                    ValueSource::Literal(v) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            if let Some(literals) = literals {
                let value = registry.apply(name, &literals).map_err(|e| {
                    FuseError::ConstantFoldFailed { name: name.clone(), reason: e.to_string() }
                })?;
                return fold_literal(value);
            }
            let [arg] = args.as_slice() else {
                return Err(FuseError::MultiArgFunction { name: name.clone(), args: args.len() });
            };
            let function =
                FusedFn::from_name(name).ok_or_else(|| FuseError::NoFusedReplica(name.clone()))?;
            let inner = compile_source(arg, resolve_source, registry)?;
            Ok(FusedSource::Apply(function, Box::new(inner)))
        }
    }
}

/// Lowers `assignments` (all of which must target `expected_message`)
/// into fused steps. `resolve_target` maps a target field label to an
/// outbound-record slot; `resolve_source` maps `(message, field)` to a
/// source-record slot.
///
/// # Errors
///
/// Returns a structured [`FuseError`] when any assignment falls outside
/// the fusable subset; the caller reports it and keeps the bridge
/// interpreted.
pub fn compile_steps(
    assignments: &[Assignment],
    expected_message: &str,
    resolve_target: &dyn Fn(&str) -> Option<usize>,
    resolve_source: &dyn Fn(&str, &str) -> Option<SlotRef>,
    registry: &FunctionRegistry,
) -> Result<Vec<FusedStep>, FuseError> {
    let mut steps = Vec::with_capacity(assignments.len());
    for assignment in assignments {
        if assignment.target_message != expected_message {
            return Err(FuseError::TargetMessageMismatch {
                found: assignment.target_message.clone(),
                expected: expected_message.to_owned(),
            });
        }
        let [segment] = assignment.target_path.segments() else {
            return Err(FuseError::NestedTargetPath(assignment.target_path.to_string()));
        };
        let label = segment.label.as_str();
        // A target field absent from the outbound schema is a wire no-op
        // on the interpreted path too: `set_or_insert` parks it in the
        // message tree and the composer only walks schema fields. Skip
        // it rather than failing the whole fusion.
        let Some(target) = resolve_target(label) else {
            continue;
        };
        let source = compile_source(&assignment.source, resolve_source, registry)?;
        steps.push(FusedStep { target, source });
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every fused builtin must reproduce its registry namesake exactly.
    #[test]
    fn fused_builtins_match_registry() {
        let registry = FunctionRegistry::with_builtins();
        let cases: &[(&str, Value)] = &[
            ("identity", Value::Str("service:printer".into())),
            ("identity", Value::Unsigned(77)),
            ("to-text", Value::Unsigned(65535)),
            ("to-text", Value::Str("x".into())),
            ("to-integer", Value::Str(" 42 ".into())),
            ("slp-to-dns-type", Value::Str("service:printer".into())),
            ("slp-to-dns-type", Value::Str("printer".into())),
            ("dns-to-slp-type", Value::Str("_printer._tcp.local".into())),
            ("slp-to-wsd-type", Value::Str("service:printer".into())),
            ("wsd-to-slp-type", Value::Str("dn:printer".into())),
            ("dns-to-wsd-type", Value::Str("_printer._tcp.local".into())),
            ("wsd-to-dns-type", Value::Str("dn:printer".into())),
            ("derive-uuid", Value::Str("service:printer#42".into())),
            ("derive-uuid", Value::Unsigned(123456)),
            ("uuid-to-id", Value::Str("urn:uuid:abc".into())),
            ("uuid-to-id", Value::Unsigned(9)),
        ];
        for (name, input) in cases {
            let expected = registry.apply(name, std::slice::from_ref(input)).unwrap();
            let function = FusedFn::from_name(name).unwrap();
            let arg = match input {
                Value::Unsigned(v) => FusedArg::Num(*v),
                Value::Str(s) => FusedArg::Text(s),
                other => panic!("unexpected case input {other:?}"),
            };
            let mut out = String::new();
            let got = function.apply(arg, &mut out).unwrap();
            match (got, expected) {
                (FusedOut::Num(v), Value::Unsigned(e)) => {
                    assert_eq!(v, e, "{name}({input:?})")
                }
                (FusedOut::Text, Value::Str(e)) => assert_eq!(out, e, "{name}({input:?})"),
                (got, expected) => {
                    panic!("{name}({input:?}): fused {got:?}/{out:?} vs registry {expected:?}")
                }
            }
        }
    }

    #[test]
    fn to_integer_failure_is_reported() {
        let mut out = String::new();
        assert!(FusedFn::ToInteger.apply(FusedArg::Text("abc"), &mut out).is_err());
    }

    #[test]
    fn compile_folds_literals_and_resolves_slots() {
        let registry = FunctionRegistry::with_builtins();
        let assignments = vec![
            Assignment::new(
                "Out",
                "QName",
                ValueSource::function("slp-to-dns-type", vec![ValueSource::field("In", "SRVType")]),
            ),
            Assignment::new("Out", "QType", ValueSource::literal(Value::Unsigned(12))),
            Assignment::new(
                "Out",
                "Tag",
                ValueSource::function(
                    "slp-to-dns-type",
                    vec![ValueSource::literal(Value::Str("service:fax".into()))],
                ),
            ),
        ];
        let steps = compile_steps(
            &assignments,
            "Out",
            &|label| ["QName", "QType", "Tag"].iter().position(|l| *l == label),
            &|message, label| {
                (message == "In" && label == "SRVType").then_some(SlotRef::Request(5))
            },
            &registry,
        )
        .unwrap();
        assert_eq!(steps.len(), 3);
        assert_eq!(
            steps[0].source,
            FusedSource::Apply(
                FusedFn::SlpToDnsType,
                Box::new(FusedSource::Slot(SlotRef::Request(5)))
            )
        );
        assert_eq!(steps[1].source, FusedSource::LitNum(12));
        assert_eq!(steps[2].source, FusedSource::LitText("_fax._tcp.local".into()));
    }

    #[test]
    fn unfusable_constructs_are_rejected_with_reasons() {
        let registry = FunctionRegistry::with_builtins();
        // Multi-argument function over non-literal arguments.
        let err = compile_steps(
            &[Assignment::new(
                "Out",
                "URL",
                ValueSource::function(
                    "concat",
                    vec![ValueSource::field("In", "A"), ValueSource::field("In", "B")],
                ),
            )],
            "Out",
            &|_| Some(0),
            &|_, _| Some(SlotRef::Request(0)),
            &registry,
        )
        .unwrap_err();
        assert_eq!(err, FuseError::MultiArgFunction { name: "concat".into(), args: 2 });

        // Unknown function name.
        let err = compile_steps(
            &[Assignment::new(
                "Out",
                "X",
                ValueSource::function("set_host", vec![ValueSource::field("In", "A")]),
            )],
            "Out",
            &|_| Some(0),
            &|_, _| Some(SlotRef::Request(0)),
            &registry,
        )
        .unwrap_err();
        assert_eq!(err, FuseError::NoFusedReplica("set_host".into()));
        assert!(err.to_string().contains("no fused replica"));

        // Assignment to a different message.
        let err = compile_steps(
            &[Assignment::new("Other", "X", ValueSource::literal(Value::Unsigned(1)))],
            "Out",
            &|_| Some(0),
            &|_, _| None,
            &registry,
        )
        .unwrap_err();
        assert!(matches!(err, FuseError::TargetMessageMismatch { .. }), "{err}");
    }
}
