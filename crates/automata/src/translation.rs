//! Translation logic (§III-D): assignments moving field content between
//! semantically equivalent messages, plus the translation functions `T`
//! for content that is not directly type-compatible.

use crate::error::{AutomataError, Result};
use starlink_message::{AbstractMessage, FieldPath, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Where an assigned value comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSource {
    /// A field of a previously received (or being-built) message:
    /// `s2j.m2.fieldb` — the optional `state` qualifier mirrors the
    /// paper's state-indexed retrieval.
    Field {
        /// Message name the value is read from.
        message: String,
        /// Field path within that message.
        path: FieldPath,
        /// Optional state qualifier (`"SSDP:s2"`), informational.
        state: Option<String>,
    },
    /// A constant.
    Literal(Value),
    /// A translation function `T(args...)` (§III-D equation (6)).
    Function {
        /// Registered function name.
        name: String,
        /// Arguments, evaluated recursively.
        args: Vec<ValueSource>,
    },
}

impl ValueSource {
    /// Shorthand for a field source without state qualifier.
    pub fn field(message: impl Into<String>, path: impl Into<FieldPath>) -> Self {
        ValueSource::Field { message: message.into(), path: path.into(), state: None }
    }

    /// Shorthand for a literal source.
    pub fn literal(value: impl Into<Value>) -> Self {
        ValueSource::Literal(value.into())
    }

    /// Shorthand for a function application.
    pub fn function(name: impl Into<String>, args: Vec<ValueSource>) -> Self {
        ValueSource::Function { name: name.into(), args }
    }
}

/// One assignment `target_msg.target_field = source` (§III-D equations
/// (5)/(6)).
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Message being filled in.
    pub target_message: String,
    /// Field of the target message.
    pub target_path: FieldPath,
    /// Value source.
    pub source: ValueSource,
}

impl Assignment {
    /// Creates a direct field-to-field assignment (equation (5)).
    pub fn field_to_field(
        target_message: impl Into<String>,
        target_path: impl Into<FieldPath>,
        source_message: impl Into<String>,
        source_path: impl Into<FieldPath>,
    ) -> Self {
        Assignment {
            target_message: target_message.into(),
            target_path: target_path.into(),
            source: ValueSource::field(source_message, source_path),
        }
    }

    /// Creates an assignment from an arbitrary source (equation (6)).
    pub fn new(
        target_message: impl Into<String>,
        target_path: impl Into<FieldPath>,
        source: ValueSource,
    ) -> Self {
        Assignment {
            target_message: target_message.into(),
            target_path: target_path.into(),
            source,
        }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} = ", self.target_message, self.target_path)?;
        fn write_source(f: &mut fmt::Formatter<'_>, source: &ValueSource) -> fmt::Result {
            match source {
                ValueSource::Field { message, path, .. } => write!(f, "{message}.{path}"),
                ValueSource::Literal(value) => write!(f, "{value:?}"),
                ValueSource::Function { name, args } => {
                    write!(f, "{name}(")?;
                    for (i, arg) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write_source(f, arg)?;
                    }
                    write!(f, ")")
                }
            }
        }
        write_source(f, &self.source)
    }
}

/// The boxed form of a translation function.
type TranslationFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// The registry of translation functions `T`.
///
/// ```
/// use starlink_automata::FunctionRegistry;
/// use starlink_message::Value;
///
/// let registry = FunctionRegistry::with_builtins();
/// let out = registry
///     .apply("url-host", &[Value::Str("http://10.0.0.9:5000/desc.xml".into())])
///     .unwrap();
/// assert_eq!(out, Value::Str("10.0.0.9".into()));
/// ```
#[derive(Clone)]
pub struct FunctionRegistry {
    functions: BTreeMap<String, TranslationFn>,
}

impl fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionRegistry").field("functions", &self.names()).finish()
    }
}

fn arg(args: &[Value], index: usize, function: &str) -> Result<Value> {
    args.get(index).cloned().ok_or_else(|| {
        AutomataError::Translation(format!("function {function} missing argument #{index}"))
    })
}

/// The bare service name shared by every discovery vocabulary:
/// `service:printer`, `dn:printer` and `_printer._tcp.local` all name
/// `printer`. Strips the leading scheme/underscore and trailing
/// qualifiers.
fn service_name_of(text: &str) -> String {
    let text = text.trim();
    let after_scheme = match text.split_once(':') {
        Some((_, rest)) if !rest.is_empty() => rest,
        _ => text,
    };
    let first = after_scheme.split(['.', ':']).next().unwrap_or(after_scheme);
    first.strip_prefix('_').unwrap_or(first).to_owned()
}

/// FNV-1a over `bytes` from an explicit offset basis (two bases give two
/// independent 64-bit streams for the uuid halves).
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Splits a URL string into (scheme, host, port, path); missing port is 0,
/// missing path is "/".
fn split_url(url: &str) -> Result<(String, String, u16, String)> {
    let (scheme, rest) = url
        .split_once("://")
        .ok_or_else(|| AutomataError::Translation(format!("not a URL: {url:?}")))?;
    let (authority, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let (host, port) = match authority.rsplit_once(':') {
        Some((h, p)) => {
            let port = p
                .parse::<u16>()
                .map_err(|_| AutomataError::Translation(format!("bad port in URL {url:?}")))?;
            (h, port)
        }
        None => (authority, 0),
    };
    Ok((scheme.to_owned(), host.to_owned(), port, path.to_owned()))
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        FunctionRegistry { functions: BTreeMap::new() }
    }

    /// Creates a registry with the built-in translation functions:
    ///
    /// | name | effect |
    /// |------|--------|
    /// | `identity` | first argument unchanged |
    /// | `to-text` | canonical text rendering |
    /// | `to-integer` | parse decimal text |
    /// | `concat` | concatenate text of all arguments |
    /// | `url-base` | `http://h:p/x` → `http://h:p` |
    /// | `url-host` | host part of a URL |
    /// | `url-port` | port of a URL (unsigned) |
    /// | `url-path` | path part of a URL |
    /// | `format-url` | (scheme, host, port, path) → URL |
    /// | `extract-tag` | (text, tag) → content of first `<tag>` element |
    /// | `slp-to-dns-type` | `service:printer` → `_printer._tcp.local` |
    /// | `dns-to-slp-type` | `_printer._tcp.local` → `service:printer` |
    /// | `slp-to-ssdp-type` | `service:printer` → `urn:...:service:printer:1` |
    /// | `ssdp-to-slp-type` | inverse of the above |
    /// | `slp-to-wsd-type` | `service:printer` → `dn:printer` |
    /// | `wsd-to-slp-type` | `dn:printer` → `service:printer` |
    /// | `dns-to-wsd-type` | `_printer._tcp.local` → `dn:printer` |
    /// | `wsd-to-dns-type` | `dn:printer` → `_printer._tcp.local` |
    /// | `derive-uuid` | deterministic WS-Addressing `urn:uuid:...` from any seed value |
    /// | `uuid-to-id` | 16-bit transaction id hashed from a uuid (or any text) |
    pub fn with_builtins() -> Self {
        let mut registry = FunctionRegistry::new();
        registry.register("identity", |args| arg(args, 0, "identity"));
        registry.register("to-text", |args| Ok(Value::Str(arg(args, 0, "to-text")?.to_text())));
        registry.register("to-integer", |args| {
            let value = arg(args, 0, "to-integer")?;
            value.to_text().trim().parse::<u64>().map(Value::Unsigned).map_err(|_| {
                AutomataError::Translation(format!("cannot parse {value:?} as integer"))
            })
        });
        registry.register("concat", |args| {
            Ok(Value::Str(args.iter().map(Value::to_text).collect::<String>()))
        });
        registry.register("url-base", |args| {
            let url = arg(args, 0, "url-base")?.to_text();
            let (scheme, host, port, _) = split_url(&url)?;
            Ok(Value::Str(if port == 0 {
                format!("{scheme}://{host}")
            } else {
                format!("{scheme}://{host}:{port}")
            }))
        });
        registry.register("url-host", |args| {
            let url = arg(args, 0, "url-host")?.to_text();
            Ok(Value::Str(split_url(&url)?.1))
        });
        registry.register("url-port", |args| {
            let url = arg(args, 0, "url-port")?.to_text();
            Ok(Value::Unsigned(u64::from(split_url(&url)?.2)))
        });
        registry.register("url-path", |args| {
            let url = arg(args, 0, "url-path")?.to_text();
            Ok(Value::Str(split_url(&url)?.3))
        });
        registry.register("format-url", |args| {
            let scheme = arg(args, 0, "format-url")?.to_text();
            let host = arg(args, 1, "format-url")?.to_text();
            let port = arg(args, 2, "format-url")?.as_u64().map_err(AutomataError::from)?;
            let path = args.get(3).map(Value::to_text).unwrap_or_default();
            let path =
                if path.is_empty() || path.starts_with('/') { path } else { format!("/{path}") };
            Ok(Value::Str(format!("{scheme}://{host}:{port}{path}")))
        });
        registry.register("slp-to-dns-type", |args| {
            // "service:printer" → "_printer._tcp.local" (DNS-SD convention).
            let text = arg(args, 0, "slp-to-dns-type")?.to_text();
            let name = text.strip_prefix("service:").unwrap_or(&text);
            let name = name.split(':').next().unwrap_or(name);
            Ok(Value::Str(format!("_{name}._tcp.local")))
        });
        registry.register("dns-to-slp-type", |args| {
            // "_printer._tcp.local" → "service:printer".
            let text = arg(args, 0, "dns-to-slp-type")?.to_text();
            let first = text.split('.').next().unwrap_or(&text);
            let name = first.strip_prefix('_').unwrap_or(first);
            Ok(Value::Str(format!("service:{name}")))
        });
        registry.register("slp-to-ssdp-type", |args| {
            // "service:printer" → "urn:schemas-upnp-org:service:printer:1".
            let text = arg(args, 0, "slp-to-ssdp-type")?.to_text();
            let name = text.strip_prefix("service:").unwrap_or(&text);
            let name = name.split(':').next().unwrap_or(name);
            Ok(Value::Str(format!("urn:schemas-upnp-org:service:{name}:1")))
        });
        registry.register("extract-tag", |args| {
            // extract-tag(text, tag): content of the first <tag>...</tag>
            // element in `text` — how the SLP reply URL is pulled out of
            // the UPnP device description (the paper's HTTP_OK.URL_BASE).
            let text = arg(args, 0, "extract-tag")?.to_text();
            let tag = arg(args, 1, "extract-tag")?.to_text();
            let open = format!("<{tag}>");
            let close = format!("</{tag}>");
            let start = text
                .find(&open)
                .ok_or_else(|| AutomataError::Translation(format!("no <{tag}> element in text")))?
                + open.len();
            let end = text[start..].find(&close).ok_or_else(|| {
                AutomataError::Translation(format!("unterminated <{tag}> element"))
            })? + start;
            Ok(Value::Str(text[start..end].trim().to_owned()))
        });
        registry.register("ssdp-to-slp-type", |args| {
            // "urn:schemas-upnp-org:service:printer:1" → "service:printer".
            let text = arg(args, 0, "ssdp-to-slp-type")?.to_text();
            let mut parts = text.split(':').collect::<Vec<_>>();
            if parts.last().map(|p| p.chars().all(|c| c.is_ascii_digit())).unwrap_or(false) {
                parts.pop();
            }
            let name = parts.last().copied().unwrap_or(&text);
            Ok(Value::Str(format!("service:{name}")))
        });
        registry.register("slp-to-wsd-type", |args| {
            // "service:printer" → "dn:printer" (WS-Discovery Types QName).
            let text = arg(args, 0, "slp-to-wsd-type")?.to_text();
            Ok(Value::Str(format!("dn:{}", service_name_of(&text))))
        });
        registry.register("wsd-to-slp-type", |args| {
            // "dn:printer" → "service:printer".
            let text = arg(args, 0, "wsd-to-slp-type")?.to_text();
            Ok(Value::Str(format!("service:{}", service_name_of(&text))))
        });
        registry.register("dns-to-wsd-type", |args| {
            // "_printer._tcp.local" → "dn:printer".
            let text = arg(args, 0, "dns-to-wsd-type")?.to_text();
            Ok(Value::Str(format!("dn:{}", service_name_of(&text))))
        });
        registry.register("wsd-to-dns-type", |args| {
            // "dn:printer" → "_printer._tcp.local".
            let text = arg(args, 0, "wsd-to-dns-type")?.to_text();
            Ok(Value::Str(format!("_{}._tcp.local", service_name_of(&text))))
        });
        registry.register("derive-uuid", |args| {
            // Deterministic WS-Addressing MessageID derived from any seed
            // value: same inputs, same uuid — the property seeded replay
            // and the chaos digests depend on. The version/variant nibbles
            // follow RFC 4122 layout for realism.
            let seed = args.iter().map(Value::to_text).collect::<String>();
            let a = fnv1a(seed.as_bytes(), 0xcbf2_9ce4_8422_2325);
            let b = fnv1a(seed.as_bytes(), 0x6c62_272e_07bb_0142);
            Ok(Value::Str(format!(
                "urn:uuid:{:08x}-{:04x}-4{:03x}-8{:03x}-{:012x}",
                (a >> 32) as u32,
                (a >> 16) as u16,
                a & 0xFFF,
                (b >> 48) & 0xFFF,
                b & 0xFFFF_FFFF_FFFF
            )))
        });
        registry.register("uuid-to-id", |args| {
            // A 16-bit transaction id hashed from a uuid (or any text):
            // how a WS-Discovery MessageID becomes an SLP XID / DNS ID.
            let text = arg(args, 0, "uuid-to-id")?.to_text();
            Ok(Value::Unsigned(fnv1a(text.as_bytes(), 0xcbf2_9ce4_8422_2325) & 0xFFFF))
        });
        registry
    }

    /// Registers (or replaces) a function.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        function: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> &mut Self {
        self.functions.insert(name.into(), Arc::new(function));
        self
    }

    /// Applies a registered function.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::Translation`] for unknown names or
    /// function-specific failures.
    pub fn apply(&self, name: &str, args: &[Value]) -> Result<Value> {
        let function = self.functions.get(name).ok_or_else(|| {
            AutomataError::Translation(format!("unknown translation function {name:?}"))
        })?;
        function(args)
    }

    /// Registered function names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.functions.keys().map(String::as_str).collect()
    }
}

impl Default for FunctionRegistry {
    fn default() -> Self {
        FunctionRegistry::with_builtins()
    }
}

/// The store of message instances available to the translation logic:
/// received messages plus targets being composed, keyed by message name.
#[derive(Debug, Clone, Default)]
pub struct MessageStore {
    messages: BTreeMap<String, AbstractMessage>,
}

impl MessageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MessageStore::default()
    }

    /// Inserts (or replaces) an instance under its message name.
    pub fn insert(&mut self, message: AbstractMessage) {
        self.messages.insert(message.name().to_owned(), message);
    }

    /// Looks up an instance.
    pub fn get(&self, name: &str) -> Option<&AbstractMessage> {
        self.messages.get(name)
    }

    /// Looks up an instance mutably.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut AbstractMessage> {
        self.messages.get_mut(name)
    }

    /// Removes an instance, returning it.
    pub fn take(&mut self, name: &str) -> Option<AbstractMessage> {
        self.messages.remove(name)
    }

    /// Returns the instance for `name`, creating an untyped blank when
    /// absent (engines pre-register schema-typed blanks instead).
    pub fn ensure(&mut self, name: &str) -> &mut AbstractMessage {
        self.messages.entry(name.to_owned()).or_insert_with(|| AbstractMessage::new("", name))
    }

    /// Stored message names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.messages.keys().map(String::as_str).collect()
    }

    /// Number of stored instances.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }
}

/// Evaluates a [`ValueSource`] against the store.
///
/// # Errors
///
/// Fails when a referenced message/field is absent or a function fails.
pub fn evaluate_source(
    source: &ValueSource,
    store: &MessageStore,
    functions: &FunctionRegistry,
) -> Result<Value> {
    match source {
        ValueSource::Field { message, path, .. } => {
            let instance = store.get(message).ok_or_else(|| {
                AutomataError::Translation(format!(
                    "no instance of message {message:?} has been received"
                ))
            })?;
            Ok(instance.get(path)?.clone())
        }
        ValueSource::Literal(value) => Ok(value.clone()),
        ValueSource::Function { name, args } => {
            let mut values = Vec::with_capacity(args.len());
            for arg in args {
                values.push(evaluate_source(arg, store, functions)?);
            }
            functions.apply(name, &values)
        }
    }
}

/// Applies a batch of assignments in order, creating target instances in
/// the store as needed.
///
/// # Errors
///
/// Fails on the first assignment whose source cannot be evaluated or
/// whose target path cannot be written.
pub fn apply_assignments(
    assignments: &[Assignment],
    store: &mut MessageStore,
    functions: &FunctionRegistry,
) -> Result<()> {
    for assignment in assignments {
        let value = evaluate_source(&assignment.source, store, functions)?;
        let target = store.ensure(&assignment.target_message);
        target.set_or_insert(&assignment.target_path, value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_message::Field;

    fn store_with_slp_request() -> MessageStore {
        let mut store = MessageStore::new();
        let mut req = AbstractMessage::new("SLP", "SLPSrvRequest");
        req.push_field(Field::primitive("SRVType", "service:printer"));
        req.push_field(Field::primitive("XID", 77u16));
        store.insert(req);
        store
    }

    #[test]
    fn direct_assignment_fig4_node1() {
        // s20.SSDP_M-Search.ST = s11.SLPSrvRequest.ServiceType
        let mut store = store_with_slp_request();
        let functions = FunctionRegistry::with_builtins();
        let assignment =
            Assignment::field_to_field("SSDP_M-Search", "ST", "SLPSrvRequest", "SRVType");
        apply_assignments(&[assignment], &mut store, &functions).unwrap();
        let search = store.get("SSDP_M-Search").unwrap();
        assert_eq!(search.get(&"ST".into()).unwrap().as_str().unwrap(), "service:printer");
    }

    #[test]
    fn xid_copied_within_protocol() {
        // s11.SLPSrvReply.XID = s11.SLPSrvRequest.XID (Fig. 5 line 9).
        let mut store = store_with_slp_request();
        let functions = FunctionRegistry::with_builtins();
        let assignment = Assignment::field_to_field("SLPSrvReply", "XID", "SLPSrvRequest", "XID");
        apply_assignments(&[assignment], &mut store, &functions).unwrap();
        assert_eq!(
            store.get("SLPSrvReply").unwrap().get(&"XID".into()).unwrap().as_u64().unwrap(),
            77
        );
    }

    #[test]
    fn function_assignment_equation_6() {
        let mut store = MessageStore::new();
        let mut ok = AbstractMessage::new("HTTP", "HTTP_OK");
        ok.push_field(Field::primitive("URL", "http://10.0.0.9:5000/desc.xml"));
        store.insert(ok);
        let functions = FunctionRegistry::with_builtins();
        let assignment = Assignment::new(
            "SLPSrvReply",
            "URL",
            ValueSource::function("url-base", vec![ValueSource::field("HTTP_OK", "URL")]),
        );
        apply_assignments(&[assignment], &mut store, &functions).unwrap();
        assert_eq!(
            store.get("SLPSrvReply").unwrap().get(&"URL".into()).unwrap().as_str().unwrap(),
            "http://10.0.0.9:5000"
        );
    }

    #[test]
    fn missing_source_message_fails() {
        let mut store = MessageStore::new();
        let functions = FunctionRegistry::with_builtins();
        let assignment = Assignment::field_to_field("A", "x", "Ghost", "y");
        let err = apply_assignments(&[assignment], &mut store, &functions).unwrap_err();
        assert!(err.to_string().contains("Ghost"));
    }

    #[test]
    fn missing_source_field_fails() {
        let mut store = store_with_slp_request();
        let functions = FunctionRegistry::with_builtins();
        let assignment = Assignment::field_to_field("A", "x", "SLPSrvRequest", "Nope");
        assert!(apply_assignments(&[assignment], &mut store, &functions).is_err());
    }

    #[test]
    fn url_functions() {
        let f = FunctionRegistry::with_builtins();
        let url = Value::Str("http://10.0.0.9:5000/desc.xml".into());
        assert_eq!(
            f.apply("url-host", std::slice::from_ref(&url)).unwrap().as_str().unwrap(),
            "10.0.0.9"
        );
        assert_eq!(
            f.apply("url-port", std::slice::from_ref(&url)).unwrap().as_u64().unwrap(),
            5000
        );
        assert_eq!(
            f.apply("url-path", std::slice::from_ref(&url)).unwrap().as_str().unwrap(),
            "/desc.xml"
        );
        assert_eq!(
            f.apply("url-base", &[Value::Str("http://h/x".into())]).unwrap().as_str().unwrap(),
            "http://h"
        );
        assert_eq!(
            f.apply(
                "format-url",
                &[
                    Value::Str("http".into()),
                    Value::Str("h".into()),
                    Value::Unsigned(80),
                    Value::Str("desc.xml".into())
                ]
            )
            .unwrap()
            .as_str()
            .unwrap(),
            "http://h:80/desc.xml"
        );
    }

    #[test]
    fn service_type_mappings() {
        let f = FunctionRegistry::with_builtins();
        assert_eq!(
            f.apply("slp-to-dns-type", &[Value::Str("service:printer".into())])
                .unwrap()
                .as_str()
                .unwrap(),
            "_printer._tcp.local"
        );
        assert_eq!(
            f.apply("dns-to-slp-type", &[Value::Str("_printer._tcp.local".into())])
                .unwrap()
                .as_str()
                .unwrap(),
            "service:printer"
        );
        assert_eq!(
            f.apply("slp-to-ssdp-type", &[Value::Str("service:printer".into())])
                .unwrap()
                .as_str()
                .unwrap(),
            "urn:schemas-upnp-org:service:printer:1"
        );
        assert_eq!(
            f.apply(
                "ssdp-to-slp-type",
                &[Value::Str("urn:schemas-upnp-org:service:printer:1".into())]
            )
            .unwrap()
            .as_str()
            .unwrap(),
            "service:printer"
        );
    }

    #[test]
    fn wsd_type_mappings() {
        let f = FunctionRegistry::with_builtins();
        let apply = |name: &str, input: &str| {
            f.apply(name, &[Value::Str(input.into())]).unwrap().as_str().unwrap().to_owned()
        };
        assert_eq!(apply("slp-to-wsd-type", "service:printer"), "dn:printer");
        assert_eq!(apply("wsd-to-slp-type", "dn:printer"), "service:printer");
        assert_eq!(apply("dns-to-wsd-type", "_printer._tcp.local"), "dn:printer");
        assert_eq!(apply("wsd-to-dns-type", "dn:printer"), "_printer._tcp.local");
        // Every vocabulary round-trips through the WSD QName.
        assert_eq!(
            apply("wsd-to-slp-type", &apply("slp-to-wsd-type", "service:scanner")),
            "service:scanner"
        );
        assert_eq!(
            apply("wsd-to-dns-type", &apply("dns-to-wsd-type", "_scanner._tcp.local")),
            "_scanner._tcp.local"
        );
    }

    #[test]
    fn derive_uuid_is_deterministic_rfc4122_shaped_and_input_sensitive() {
        let f = FunctionRegistry::with_builtins();
        let uuid = |seed: &str| {
            f.apply("derive-uuid", &[Value::Str(seed.into())]).unwrap().as_str().unwrap().to_owned()
        };
        let a = uuid("0x1234");
        assert_eq!(a, uuid("0x1234"), "same seed, same uuid");
        assert_ne!(a, uuid("0x1235"), "different seed, different uuid");
        assert!(a.starts_with("urn:uuid:"), "{a}");
        let hex = a.strip_prefix("urn:uuid:").unwrap();
        let groups: Vec<&str> = hex.split('-').collect();
        assert_eq!(groups.iter().map(|g| g.len()).collect::<Vec<_>>(), vec![8, 4, 4, 4, 12]);
        assert!(groups[2].starts_with('4'), "version nibble: {a}");
        assert!(groups[3].starts_with('8'), "variant nibble: {a}");
    }

    #[test]
    fn uuid_to_id_is_a_stable_16_bit_hash() {
        let f = FunctionRegistry::with_builtins();
        let id =
            f.apply("uuid-to-id", &[Value::Str("urn:uuid:abc".into())]).unwrap().as_u64().unwrap();
        assert!(id <= 0xFFFF);
        assert_eq!(
            f.apply("uuid-to-id", &[Value::Str("urn:uuid:abc".into())]).unwrap(),
            Value::Unsigned(id)
        );
    }

    #[test]
    fn extract_tag_pulls_element_content() {
        let f = FunctionRegistry::with_builtins();
        let body =
            Value::Str("<root><URLBase> http://10.0.0.9:5000 </URLBase><x>y</x></root>".into());
        assert_eq!(
            f.apply("extract-tag", &[body.clone(), Value::Str("URLBase".into())])
                .unwrap()
                .as_str()
                .unwrap(),
            "http://10.0.0.9:5000"
        );
        assert!(f.apply("extract-tag", &[body.clone(), Value::Str("missing".into())]).is_err());
        assert!(f
            .apply("extract-tag", &[Value::Str("<a>unterminated".into()), Value::Str("a".into())])
            .is_err());
    }

    #[test]
    fn unknown_function_fails() {
        let f = FunctionRegistry::with_builtins();
        assert!(f.apply("warp", &[]).is_err());
    }

    #[test]
    fn custom_function_registration() {
        let mut f = FunctionRegistry::new();
        f.register("double", |args| Ok(Value::Unsigned(args[0].as_u64()? * 2)));
        assert_eq!(f.apply("double", &[Value::Unsigned(21)]).unwrap(), Value::Unsigned(42));
    }

    #[test]
    fn nested_function_sources() {
        let mut store = MessageStore::new();
        let mut msg = AbstractMessage::new("P", "M");
        msg.push_field(Field::primitive("host", "10.0.0.1"));
        msg.push_field(Field::primitive("port", 8080u16));
        store.insert(msg);
        let functions = FunctionRegistry::with_builtins();
        let source = ValueSource::function(
            "concat",
            vec![
                ValueSource::field("M", "host"),
                ValueSource::literal(":"),
                ValueSource::function("to-text", vec![ValueSource::field("M", "port")]),
            ],
        );
        let value = evaluate_source(&source, &store, &functions).unwrap();
        assert_eq!(value.as_str().unwrap(), "10.0.0.1:8080");
    }

    #[test]
    fn assignment_display() {
        let a = Assignment::new(
            "SLPSrvReply",
            "URL",
            ValueSource::function("url-base", vec![ValueSource::field("HTTP_OK", "URL")]),
        );
        assert_eq!(a.to_string(), "SLPSrvReply.URL = url-base(HTTP_OK.URL)");
    }

    #[test]
    fn store_ensure_creates_blank() {
        let mut store = MessageStore::new();
        store.ensure("X").push_field(Field::primitive("a", 1u8));
        assert!(store.get("X").is_some());
        assert_eq!(store.len(), 1);
        assert!(store.take("X").is_some());
        assert!(store.is_empty());
    }
}
