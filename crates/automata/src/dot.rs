//! Graphviz DOT export: regenerates the automaton diagrams of the paper
//! (Figs. 1, 2, 3, 4, 9, 10) from the loaded models.

use crate::automaton::ColoredAutomaton;
use crate::merge::MergedAutomaton;
use std::fmt::Write as _;

/// Palette used to paint states by colour index (merged automata show
/// one fill per protocol colour, bridge endpoints are visually shared).
const PALETTE: [&str; 6] = ["lightblue", "lightsalmon", "palegreen", "plum", "khaki", "lightgray"];

fn color_label(color: &crate::color::Color) -> String {
    let mut label = String::new();
    for (key, value) in color.pairs() {
        let _ = writeln!(label, "{key}={value}");
    }
    label
}

/// Renders a single coloured automaton (Figs. 1–3, 9 style).
pub fn automaton_to_dot(automaton: &ColoredAutomaton) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", automaton.protocol());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for (index, color) in automaton.colors().iter().enumerate() {
        let _ = writeln!(
            out,
            "  legend_{index} [shape=note, label=\"{}\"];",
            color_label(color).replace('\n', "\\l")
        );
    }
    for state in automaton.states() {
        let fill = PALETTE[state.color % PALETTE.len()];
        let shape = if state.accepting { "doublecircle" } else { "circle" };
        let _ =
            writeln!(out, "  \"{}\" [shape={shape}, style=filled, fillcolor={fill}];", state.name);
    }
    let initial = automaton.state(automaton.initial()).map(|s| s.name.clone()).unwrap_or_default();
    let _ = writeln!(out, "  start [shape=point];");
    let _ = writeln!(out, "  start -> \"{initial}\";");
    for transition in automaton.transitions() {
        let from = &automaton.states()[transition.from.0].name;
        let to = &automaton.states()[transition.to.0].name;
        let _ = writeln!(
            out,
            "  \"{from}\" -> \"{to}\" [label=\"{}{}\"];",
            transition.action.symbol(),
            transition.message
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a merged automaton (Figs. 4, 10 style): parts as clusters,
/// δ-transitions as dashed edges labelled with their λ actions.
pub fn merged_to_dot(merged: &MergedAutomaton) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", merged.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  compound=true;");
    for (part_index, part) in merged.parts().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{part_index} {{");
        let _ = writeln!(out, "    label=\"{}\";", part.protocol());
        for state in part.states() {
            let fill = PALETTE[part_index % PALETTE.len()];
            let shape = if state.accepting { "doublecircle" } else { "circle" };
            let _ = writeln!(
                out,
                "    \"{}_{}\" [label=\"{}\", shape={shape}, style=filled, fillcolor={fill}];",
                part.protocol(),
                state.name,
                state.name
            );
        }
        for transition in part.transitions() {
            let from = &part.states()[transition.from.0].name;
            let to = &part.states()[transition.to.0].name;
            let _ = writeln!(
                out,
                "    \"{0}_{from}\" -> \"{0}_{to}\" [label=\"{1}{2}\"];",
                part.protocol(),
                transition.action.symbol(),
                transition.message
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for delta in merged.deltas() {
        let from_part = &merged.parts()[delta.from.part.0];
        let to_part = &merged.parts()[delta.to.part.0];
        let from =
            format!("{}_{}", from_part.protocol(), from_part.states()[delta.from.state.0].name);
        let to = format!("{}_{}", to_part.protocol(), to_part.states()[delta.to.state.0].name);
        let mut label = String::from("δ");
        if !delta.actions.is_empty() {
            let actions: Vec<String> = delta.actions.iter().map(|a| a.to_string()).collect();
            let _ = write!(label, "{{{}}}", actions.join(", "));
        }
        let _ = writeln!(out, "  \"{from}\" -> \"{to}\" [style=dashed, label=\"{label}\"];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::{Color, Mode, Transport};
    use crate::merge::Delta;

    fn slp() -> ColoredAutomaton {
        ColoredAutomaton::builder("SLP")
            .color(Color::new(Transport::Udp, 427, Mode::Async).multicast("239.255.255.253"))
            .state("s0")
            .state_accepting("s1")
            .receive("s0", "SLPSrvRequest", "s1")
            .send("s1", "SLPSrvReply", "s0")
            .build()
            .unwrap()
    }

    fn http() -> ColoredAutomaton {
        ColoredAutomaton::builder("HTTP")
            .color(Color::new(Transport::Tcp, 80, Mode::Sync))
            .state("s0")
            .state("s1")
            .state_accepting("s2")
            .send("s0", "HTTP_GET", "s1")
            .receive("s1", "HTTP_OK", "s2")
            .build()
            .unwrap()
    }

    #[test]
    fn single_automaton_dot_contains_states_and_edges() {
        let dot = automaton_to_dot(&slp());
        assert!(dot.starts_with("digraph \"SLP\""));
        assert!(dot.contains("\"s0\" -> \"s1\" [label=\"?SLPSrvRequest\"]"));
        assert!(dot.contains("doublecircle")); // accepting state
        assert!(dot.contains("group=239.255.255.253")); // colour legend
    }

    #[test]
    fn merged_dot_contains_clusters_and_deltas() {
        let merged = MergedAutomaton::builder("m")
            .part(slp())
            .part(http())
            .equivalence("HTTP_GET", &["SLPSrvRequest"])
            .delta(Delta::new("SLP:s1", "HTTP:s0"))
            .delta(Delta::new("HTTP:s2", "SLP:s1"))
            .build()
            .unwrap();
        let dot = merged_to_dot(&merged);
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains('δ'));
    }

    #[test]
    fn dot_is_deterministic() {
        assert_eq!(automaton_to_dot(&slp()), automaton_to_dot(&slp()));
    }
}
