//! Executing a merged automaton: the state machine driven by the
//! Automata Engine (§IV-B), with per-state message queues and the history
//! operator ⇒ of §III-B.

use crate::actions::ResolvedAction;
use crate::automaton::{Action, Transition};
use crate::error::{AutomataError, Result};
use crate::merge::{GlobalState, MergedAutomaton, PartId};
use crate::translation::{apply_assignments, FunctionRegistry, MessageStore};
use starlink_message::AbstractMessage;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One entry of the execution history: a taken transition plus the
/// message instance that fired it.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// State before the transition.
    pub from: GlobalState,
    /// Send or receive.
    pub action: Action,
    /// The message instance.
    pub message: AbstractMessage,
    /// State the execution rested in after the transition *and* any
    /// δ-bridging that followed it.
    pub to: GlobalState,
}

/// What the engine should do after a step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// λ actions resolved while crossing δ-transitions, in order.
    pub actions: Vec<ResolvedAction>,
    /// δ-transitions crossed (bridge states visited).
    pub bridged: usize,
    /// The state the execution now rests in.
    pub state: GlobalState,
}

/// A running instance of a [`MergedAutomaton`].
///
/// The engine drives it with [`Execution::deliver`] (a message arrived)
/// and [`Execution::next_send`]/[`Execution::sent`] (compose and emit a
/// message); the execution advances through δ-transitions automatically,
/// applying translation logic and resolving λ actions on the way.
#[derive(Debug, Clone)]
pub struct Execution {
    automaton: Arc<MergedAutomaton>,
    functions: Arc<FunctionRegistry>,
    current: GlobalState,
    store: MessageStore,
    queues: BTreeMap<GlobalState, Vec<AbstractMessage>>,
    history: Vec<HistoryEntry>,
    /// δ-transitions already crossed; the equation-(4) chain crosses each
    /// δ exactly once, which is what stops the execution from re-entering
    /// a bridge it came back through (e.g. Fig. 10's bicoloured node ②).
    taken_deltas: Vec<bool>,
}

impl Execution {
    /// Creates an execution resting in the automaton's initial state.
    pub fn new(automaton: Arc<MergedAutomaton>, functions: Arc<FunctionRegistry>) -> Self {
        let current = automaton.initial();
        let taken_deltas = vec![false; automaton.deltas().len()];
        Execution {
            automaton,
            functions,
            current,
            store: MessageStore::new(),
            queues: BTreeMap::new(),
            history: Vec::new(),
            taken_deltas,
        }
    }

    /// The automaton being executed.
    pub fn automaton(&self) -> &MergedAutomaton {
        &self.automaton
    }

    /// The state the execution currently rests in.
    pub fn current(&self) -> GlobalState {
        self.current
    }

    /// The part (protocol) of the current state.
    pub fn current_part(&self) -> PartId {
        self.current.part
    }

    /// The message store (received instances + translation targets).
    pub fn store(&self) -> &MessageStore {
        &self.store
    }

    /// Mutable access to the message store — engines use this to
    /// pre-register schema-typed blank instances for translation targets.
    pub fn store_mut(&mut self) -> &mut MessageStore {
        &mut self.store
    }

    /// The queue of message instances stored at `state` (§III-B: "each
    /// state maintains a queue to store both incoming and outgoing message
    /// instances").
    pub fn queue(&self, state: GlobalState) -> &[AbstractMessage] {
        self.queues.get(&state).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The full execution history.
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// The ⇒ operator: the sequence of message instances of `action` kind
    /// recorded between the `from`-th and `to`-th history entries'
    /// states — practically, all instances sent/received while the
    /// execution moved from state `from` to state `to`.
    pub fn history_between(
        &self,
        from: GlobalState,
        to: GlobalState,
        action: Action,
    ) -> Vec<&AbstractMessage> {
        let start = self.history.iter().position(|e| e.from == from);
        let end = self.history.iter().rposition(|e| e.to == to);
        match (start, end) {
            (Some(start), Some(end)) if start <= end => self.history[start..=end]
                .iter()
                .filter(|e| e.action == action)
                .map(|e| &e.message)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Receive transitions available in the current state.
    pub fn expected_receives(&self) -> Vec<&Transition> {
        self.automaton
            .transitions_from(self.current)
            .into_iter()
            .filter(|t| t.action == Action::Receive)
            .collect()
    }

    /// True when the current state can receive `message` — the
    /// non-allocating form of [`Execution::expected_receives`], used on
    /// the engine's per-datagram routing path.
    pub fn expects_receive(&self, message: &str) -> bool {
        self.automaton.has_receive_transition(self.current, message)
    }

    /// The send transition pending in the current state, if any.
    pub fn pending_send(&self) -> Option<&Transition> {
        self.automaton.transitions_from(self.current).into_iter().find(|t| t.action == Action::Send)
    }

    /// True when the current state is accepting and nothing is pending.
    pub fn at_accepting(&self) -> bool {
        self.automaton.is_accepting(self.current)
            && self.pending_send().is_none()
            && self.automaton.deltas_from(self.current).next().is_none()
    }

    /// Crosses any δ-transitions leaving the current state, applying
    /// translation logic and resolving λ actions, until the execution
    /// rests in a state with no outgoing δ.
    fn bridge(&mut self) -> Result<StepOutcome> {
        let mut actions = Vec::new();
        let mut bridged = 0usize;
        loop {
            let next =
                self.automaton.deltas().iter().enumerate().find(|(index, delta)| {
                    delta.from == self.current && !self.taken_deltas[*index]
                });
            let (index, delta) = match next {
                Some((index, delta)) => (index, delta.clone()),
                None => break,
            };
            apply_assignments(&delta.assignments, &mut self.store, &self.functions)?;
            for action in &delta.actions {
                actions.push(action.resolve(&self.store, &self.functions)?);
            }
            self.taken_deltas[index] = true;
            self.current = delta.to;
            bridged += 1;
            if bridged > self.automaton.parts().len() * 4 {
                return Err(AutomataError::Execution(
                    "δ-transition cycle without message exchange".into(),
                ));
            }
        }
        Ok(StepOutcome { actions, bridged, state: self.current })
    }

    /// Delivers a received message instance: matches it against the
    /// receive transitions of the current state ("if the abstract
    /// message's name label matches one of the transition labels then the
    /// automata moves to the pointed-to state", §IV-B), stores it in the
    /// receiving state's queue and the message store, and crosses any
    /// δ-transitions that follow.
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::Execution`] when no receive transition of
    /// the current state matches the message name.
    pub fn deliver(&mut self, message: AbstractMessage) -> Result<StepOutcome> {
        let transition = self
            .automaton
            .transitions_from(self.current)
            .into_iter()
            .find(|t| t.action == Action::Receive && t.message == message.name())
            .cloned()
            .ok_or_else(|| {
                AutomataError::Execution(format!(
                    "state {} has no receive transition for message {:?}",
                    self.automaton.state_name(self.current),
                    message.name()
                ))
            })?;
        let receiving_state = self.current;
        self.queues.entry(receiving_state).or_default().push(message.clone());
        self.store.insert(message.clone());
        self.current = GlobalState { part: receiving_state.part, state: transition.to };
        let outcome = self.bridge()?;
        self.history.push(HistoryEntry {
            from: receiving_state,
            action: Action::Receive,
            message,
            to: self.current,
        });
        Ok(outcome)
    }

    /// Returns the message instance to send for the pending send
    /// transition: the translated instance from the store when present,
    /// or `None` when the current state has no send transition.
    pub fn outgoing_instance(&self) -> Option<&AbstractMessage> {
        let transition = self.pending_send()?;
        self.store.get(&transition.message)
    }

    /// The name of the message the pending send transition emits.
    pub fn next_send(&self) -> Option<&str> {
        self.pending_send().map(|t| t.message.as_str())
    }

    /// Records that the pending send transition's message was emitted,
    /// advancing the automaton (and crossing any δs that follow).
    ///
    /// # Errors
    ///
    /// Returns [`AutomataError::Execution`] when no send transition is
    /// pending or its message name differs from `message`.
    pub fn sent(&mut self, message: AbstractMessage) -> Result<StepOutcome> {
        let transition = self.pending_send().cloned().ok_or_else(|| {
            AutomataError::Execution(format!(
                "state {} has no send transition",
                self.automaton.state_name(self.current)
            ))
        })?;
        if transition.message != message.name() {
            return Err(AutomataError::Execution(format!(
                "state {} sends {:?}, not {:?}",
                self.automaton.state_name(self.current),
                transition.message,
                message.name()
            )));
        }
        let sending_state = self.current;
        self.queues.entry(sending_state).or_default().push(message.clone());
        self.store.insert(message.clone());
        self.current = GlobalState { part: sending_state.part, state: transition.to };
        let outcome = self.bridge()?;
        self.history.push(HistoryEntry {
            from: sending_state,
            action: Action::Send,
            message,
            to: self.current,
        });
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::ColoredAutomaton;
    use crate::color::{Color, Mode, Transport};
    use crate::merge::Delta;
    use crate::translation::Assignment;
    use starlink_message::Field;

    fn slp() -> ColoredAutomaton {
        ColoredAutomaton::builder("SLP")
            .color(Color::new(Transport::Udp, 427, Mode::Async).multicast("239.255.255.253"))
            .state("s0")
            .state_accepting("s1")
            .receive("s0", "SLPSrvRequest", "s1")
            .send("s1", "SLPSrvReply", "s0")
            .build()
            .unwrap()
    }

    fn dns() -> ColoredAutomaton {
        ColoredAutomaton::builder("DNS")
            .color(Color::new(Transport::Udp, 5353, Mode::Async).multicast("224.0.0.251"))
            .state("s0")
            .state("s1")
            .state_accepting("s2")
            .send("s0", "DNS_Question", "s1")
            .receive("s1", "DNS_Response", "s2")
            .build()
            .unwrap()
    }

    /// The Fig. 10 merged automaton (SLP + mDNS) with its translation
    /// logic.
    fn fig10() -> Arc<MergedAutomaton> {
        Arc::new(
            MergedAutomaton::builder("slp-mdns")
                .part(slp())
                .part(dns())
                .equivalence("DNS_Question", &["SLPSrvRequest"])
                .equivalence("SLPSrvReply", &["DNS_Response"])
                .delta(Delta::new("SLP:s1", "DNS:s0").assignment(Assignment::field_to_field(
                    "DNS_Question",
                    "DomainName",
                    "SLPSrvRequest",
                    "SRVType",
                )))
                .delta(
                    Delta::new("DNS:s2", "SLP:s1")
                        .assignment(Assignment::field_to_field(
                            "SLPSrvReply",
                            "URL",
                            "DNS_Response",
                            "RDATA",
                        ))
                        .assignment(Assignment::field_to_field(
                            "SLPSrvReply",
                            "XID",
                            "SLPSrvRequest",
                            "XID",
                        )),
                )
                .build()
                .unwrap(),
        )
    }

    fn slp_request() -> AbstractMessage {
        let mut msg = AbstractMessage::new("SLP", "SLPSrvRequest");
        msg.push_field(Field::primitive("XID", 42u16));
        msg.push_field(Field::primitive("SRVType", "service:printer"));
        msg
    }

    fn dns_response() -> AbstractMessage {
        let mut msg = AbstractMessage::new("DNS", "DNS_Response");
        msg.push_field(Field::primitive("RDATA", "service:printer://10.0.0.9:631"));
        msg
    }

    #[test]
    fn full_fig10_walkthrough() {
        let mut exec = Execution::new(fig10(), Arc::new(FunctionRegistry::with_builtins()));

        // ① SLP request arrives; δ into DNS applies the translation.
        let outcome = exec.deliver(slp_request()).unwrap();
        assert_eq!(outcome.bridged, 1);
        assert_eq!(exec.automaton().state_name(exec.current()), "DNS:s0");
        assert_eq!(
            exec.store()
                .get("DNS_Question")
                .unwrap()
                .get(&"DomainName".into())
                .unwrap()
                .as_str()
                .unwrap(),
            "service:printer"
        );

        // ② Engine composes and sends the DNS question.
        assert_eq!(exec.next_send(), Some("DNS_Question"));
        let question = exec.store().get("DNS_Question").unwrap().clone();
        exec.sent(question).unwrap();
        assert_eq!(exec.automaton().state_name(exec.current()), "DNS:s1");

        // ③ DNS response arrives; δ back into SLP fills the reply.
        let outcome = exec.deliver(dns_response()).unwrap();
        assert_eq!(outcome.bridged, 1);
        assert_eq!(exec.automaton().state_name(exec.current()), "SLP:s1");
        let reply = exec.store().get("SLPSrvReply").unwrap();
        assert_eq!(
            reply.get(&"URL".into()).unwrap().as_str().unwrap(),
            "service:printer://10.0.0.9:631"
        );
        assert_eq!(reply.get(&"XID".into()).unwrap().as_u64().unwrap(), 42);

        // ④ Engine sends the reply; execution returns to SLP:s0.
        assert_eq!(exec.next_send(), Some("SLPSrvReply"));
        let reply = exec.store().get("SLPSrvReply").unwrap().clone();
        exec.sent(reply).unwrap();
        assert_eq!(exec.automaton().state_name(exec.current()), "SLP:s0");
    }

    #[test]
    fn unmatched_message_is_rejected() {
        let mut exec = Execution::new(fig10(), Arc::new(FunctionRegistry::with_builtins()));
        let err = exec.deliver(dns_response()).unwrap_err();
        assert!(err.to_string().contains("no receive transition"));
    }

    #[test]
    fn sent_requires_matching_pending_send() {
        let mut exec = Execution::new(fig10(), Arc::new(FunctionRegistry::with_builtins()));
        // No send pending in the initial (receiving) state.
        assert!(exec.sent(slp_request()).is_err());
        exec.deliver(slp_request()).unwrap();
        // Pending send is DNS_Question, not SLPSrvReply.
        let wrong = AbstractMessage::new("SLP", "SLPSrvReply");
        assert!(exec.sent(wrong).is_err());
    }

    #[test]
    fn queues_store_instances_at_states() {
        let mut exec = Execution::new(fig10(), Arc::new(FunctionRegistry::with_builtins()));
        let initial = exec.current();
        exec.deliver(slp_request()).unwrap();
        assert_eq!(exec.queue(initial).len(), 1);
        assert_eq!(exec.queue(initial)[0].name(), "SLPSrvRequest");
    }

    #[test]
    fn history_operator_filters_by_action() {
        let mut exec = Execution::new(fig10(), Arc::new(FunctionRegistry::with_builtins()));
        let s0 = exec.current();
        exec.deliver(slp_request()).unwrap();
        let question = exec.store().get("DNS_Question").unwrap().clone();
        exec.sent(question).unwrap();
        exec.deliver(dns_response()).unwrap();
        let here = exec.current();
        let received = exec.history_between(s0, here, Action::Receive);
        assert_eq!(received.len(), 2);
        assert_eq!(received[0].name(), "SLPSrvRequest");
        assert_eq!(received[1].name(), "DNS_Response");
        let sent = exec.history_between(s0, here, Action::Send);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].name(), "DNS_Question");
    }

    #[test]
    fn pre_registered_blank_is_used_by_translation() {
        let mut exec = Execution::new(fig10(), Arc::new(FunctionRegistry::with_builtins()));
        // Engine pre-registers a schema-typed blank with an extra field.
        let mut blank = AbstractMessage::new("DNS", "DNS_Question");
        blank.push_field(Field::primitive("DomainName", ""));
        blank.push_field(Field::primitive("QType", 12u16));
        exec.store_mut().insert(blank);
        exec.deliver(slp_request()).unwrap();
        let question = exec.store().get("DNS_Question").unwrap();
        assert_eq!(question.get(&"QType".into()).unwrap().as_u64().unwrap(), 12);
        assert_eq!(
            question.get(&"DomainName".into()).unwrap().as_str().unwrap(),
            "service:printer"
        );
    }

    #[test]
    fn at_accepting_only_when_idle() {
        let mut exec = Execution::new(fig10(), Arc::new(FunctionRegistry::with_builtins()));
        assert!(!exec.at_accepting());
        exec.deliver(slp_request()).unwrap();
        // DNS:s0 has a pending send, not accepting.
        assert!(!exec.at_accepting());
    }

    #[test]
    fn single_automaton_executes_without_deltas() {
        let merged = Arc::new(MergedAutomaton::from_single(slp()));
        let mut exec = Execution::new(merged, Arc::new(FunctionRegistry::with_builtins()));
        let outcome = exec.deliver(slp_request()).unwrap();
        assert_eq!(outcome.bridged, 0);
        assert_eq!(exec.next_send(), Some("SLPSrvReply"));
    }
}
