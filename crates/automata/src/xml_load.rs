//! Loading coloured automata and merged-automaton ("bridge") models from
//! XML — the runtime model documents of §IV-B. The `<TranslationLogic>` /
//! `<Assignment>` / `<Field>` / `<Xpath>` grammar follows Fig. 8 of the
//! paper exactly; the first `<Field>` of an assignment is the target and
//! the second entry (a `<Field>`, `<Function>` or `<Literal>`) is the
//! source.

use crate::actions::NetworkAction;
use crate::automaton::{AutomatonBuilder, ColoredAutomaton};
use crate::color::{Color, Mode, Transport};
use crate::error::{AutomataError, Result};
use crate::merge::{Delta, MergedAutomaton};
use crate::translation::{Assignment, ValueSource};
use starlink_message::{FieldPath, Value};
use starlink_xml::Element;

fn xml_err(err: starlink_xml::XmlError) -> AutomataError {
    AutomataError::Xml { message: err.kind_message(), position: err.position() }
}

fn msg_err(err: starlink_message::MessageError) -> AutomataError {
    AutomataError::xml(err.to_string())
}

/// An XML model error anchored at `element`'s source position.
fn xml_at(message: impl Into<String>, element: &Element) -> AutomataError {
    AutomataError::Xml { message: message.into(), position: element.position() }
}

// ---------------------------------------------------------------------
// Coloured automata
// ---------------------------------------------------------------------

fn parse_color(element: &Element) -> Result<Color> {
    let transport_text = element
        .child_text("transport_protocol")
        .ok_or_else(|| xml_at("Color missing <transport_protocol>", element))?;
    let transport = Transport::parse(&transport_text)
        .ok_or_else(|| xml_at(format!("unknown transport {transport_text:?}"), element))?;
    let port_text =
        element.child_text("port").ok_or_else(|| xml_at("Color missing <port>", element))?;
    let port: u16 =
        port_text.parse().map_err(|_| xml_at(format!("bad port {port_text:?}"), element))?;
    let mode_text = element.child_text("mode").unwrap_or_else(|| "async".into());
    let mode = Mode::parse(&mode_text)
        .ok_or_else(|| xml_at(format!("unknown mode {mode_text:?}"), element))?;
    let mut color = Color::new(transport, port, mode);
    let multicast = element.child_text("multicast").map(|t| t == "yes").unwrap_or(false);
    if multicast {
        let group = element
            .child_text("group")
            .ok_or_else(|| xml_at("multicast Color missing <group>", element))?;
        color = color.multicast(group);
    }
    for child in element.children() {
        if !matches!(child.name(), "transport_protocol" | "port" | "mode" | "multicast" | "group") {
            color = color.attr(child.name(), child.text());
        }
    }
    Ok(color)
}

fn color_to_element(color: &Color) -> Element {
    let mut el = Element::new("Color");
    el.push_child_with_text("transport_protocol", color.transport().as_str());
    el.push_child_with_text("port", color.port().to_string());
    el.push_child_with_text("mode", color.mode().as_str());
    el.push_child_with_text("multicast", if color.is_multicast() { "yes" } else { "no" });
    if let Some(group) = color.group() {
        el.push_child_with_text("group", group);
    }
    for (key, value) in color.extras() {
        el.push_child_with_text(key, value.clone());
    }
    el
}

/// Parses a `<ColoredAutomaton>` document.
///
/// # Errors
///
/// Returns [`AutomataError::Xml`] for grammar violations and
/// [`AutomataError::Invalid`] for structural ones.
pub fn load_automaton(source: &str) -> Result<ColoredAutomaton> {
    let root = Element::parse(source).map_err(xml_err)?;
    load_automaton_element(&root)
}

/// Parses an already-built `<ColoredAutomaton>` element.
///
/// # Errors
///
/// Same failure modes as [`load_automaton`].
pub fn load_automaton_element(root: &Element) -> Result<ColoredAutomaton> {
    if root.name() != "ColoredAutomaton" {
        return Err(xml_at(format!("expected <ColoredAutomaton>, found <{}>", root.name()), root));
    }
    let protocol = root.required_attr("protocol").map_err(xml_err)?;
    let mut builder: AutomatonBuilder = ColoredAutomaton::builder(protocol);
    let mut initial: Option<String> = None;
    for child in root.children() {
        match child.name() {
            "Color" => builder = builder.color(parse_color(child)?),
            "State" => {
                let name = child.required_attr("name").map_err(xml_err)?;
                let accepting = child.attr("accepting").map(|v| v == "true").unwrap_or(false);
                builder =
                    if accepting { builder.state_accepting(name) } else { builder.state(name) };
                if child.attr("initial").map(|v| v == "true").unwrap_or(false) {
                    initial = Some(name.to_owned());
                }
            }
            "Transition" => {
                let from = child.required_attr("from").map_err(xml_err)?;
                let to = child.required_attr("to").map_err(xml_err)?;
                let message = child.required_attr("message").map_err(xml_err)?;
                let action = child.required_attr("action").map_err(xml_err)?;
                builder = match action {
                    "receive" | "?" => builder.receive(from, message, to),
                    "send" | "!" => builder.send(from, message, to),
                    other => {
                        return Err(xml_at(format!("unknown transition action {other:?}"), child))
                    }
                };
            }
            other => {
                return Err(xml_at(
                    format!("unexpected element <{other}> in ColoredAutomaton"),
                    child,
                ))
            }
        }
    }
    if let Some(name) = initial {
        builder = builder.initial(&name);
    }
    builder.build()
}

/// Renders a coloured automaton back to its XML element.
pub fn automaton_to_element(automaton: &ColoredAutomaton) -> Element {
    let mut root = Element::new("ColoredAutomaton");
    root.set_attr("protocol", automaton.protocol());
    // Emit colours before the states that use them, preserving builder
    // semantics (states use the latest colour).
    let mut emitted_colors = 0usize;
    for state in automaton.states() {
        while emitted_colors <= state.color {
            root.push_element(color_to_element(&automaton.colors()[emitted_colors]));
            emitted_colors += 1;
        }
        let mut el = Element::new("State");
        el.set_attr("name", &state.name);
        if state.accepting {
            el.set_attr("accepting", "true");
        }
        if state.id == automaton.initial() {
            el.set_attr("initial", "true");
        }
        root.push_element(el);
    }
    for transition in automaton.transitions() {
        let mut el = Element::new("Transition");
        el.set_attr("from", &automaton.states()[transition.from.0].name);
        el.set_attr(
            "action",
            match transition.action {
                crate::automaton::Action::Receive => "receive",
                crate::automaton::Action::Send => "send",
            },
        );
        el.set_attr("message", &transition.message);
        el.set_attr("to", &automaton.states()[transition.to.0].name);
        root.push_element(el);
    }
    root
}

// ---------------------------------------------------------------------
// Bridges (merged automata + translation logic)
// ---------------------------------------------------------------------

fn parse_value_source(element: &Element) -> Result<ValueSource> {
    match element.name() {
        "Field" => {
            let message = element
                .child_text("Message")
                .ok_or_else(|| xml_at("Field missing <Message>", element))?;
            let xpath = element
                .child_text("Xpath")
                .ok_or_else(|| xml_at("Field missing <Xpath>", element))?;
            let path = FieldPath::parse(&xpath).map_err(msg_err)?;
            let state = element.child_text("State");
            Ok(ValueSource::Field { message, path, state })
        }
        "Function" => {
            let name = element.required_attr("name").map_err(xml_err)?;
            let mut args = Vec::new();
            for child in element.children() {
                args.push(parse_value_source(child)?);
            }
            Ok(ValueSource::function(name, args))
        }
        "Literal" => {
            let kind = element.attr("kind").unwrap_or("string");
            let text = element.text();
            let value = match kind {
                "unsigned" => Value::Unsigned(
                    text.parse()
                        .map_err(|_| xml_at(format!("bad unsigned literal {text:?}"), element))?,
                ),
                "signed" => Value::Signed(
                    text.parse()
                        .map_err(|_| xml_at(format!("bad signed literal {text:?}"), element))?,
                ),
                "bool" => Value::Bool(text == "true"),
                _ => Value::Str(text),
            };
            Ok(ValueSource::Literal(value))
        }
        other => Err(xml_at(format!("unexpected value source <{other}>"), element)),
    }
}

fn parse_assignment(element: &Element) -> Result<Assignment> {
    let mut children = element.children();
    let target_el =
        children.next().ok_or_else(|| xml_at("Assignment has no target <Field>", element))?;
    if target_el.name() != "Field" {
        return Err(xml_at("Assignment target must be a <Field>", target_el));
    }
    let target_message = target_el
        .child_text("Message")
        .ok_or_else(|| xml_at("target Field missing <Message>", target_el))?;
    let target_xpath = target_el
        .child_text("Xpath")
        .ok_or_else(|| xml_at("target Field missing <Xpath>", target_el))?;
    let target_path = FieldPath::parse(&target_xpath).map_err(msg_err)?;
    let source_el = children.next().ok_or_else(|| xml_at("Assignment has no source", element))?;
    let source = parse_value_source(source_el)?;
    Ok(Assignment { target_message, target_path, source })
}

fn parse_action(element: &Element) -> Result<NetworkAction> {
    let name = element.required_attr("name").map_err(xml_err)?;
    let mut args = Vec::new();
    for child in element.children() {
        args.push(parse_value_source(child)?);
    }
    Ok(NetworkAction::new(name, args))
}

/// Parses a `<Bridge>` document: embedded `<ColoredAutomaton>` parts,
/// `<Equivalence>` declarations, and `<Delta>` transitions carrying
/// `<Action>`s and Fig. 8-style `<TranslationLogic>`.
///
/// # Errors
///
/// Returns [`AutomataError::Xml`] for grammar violations and the builder's
/// errors for unresolved references.
pub fn load_bridge(source: &str) -> Result<MergedAutomaton> {
    let root = Element::parse(source).map_err(xml_err)?;
    load_bridge_element(&root)
}

/// Parses an already-built `<Bridge>` element.
///
/// # Errors
///
/// Same failure modes as [`load_bridge`].
pub fn load_bridge_element(root: &Element) -> Result<MergedAutomaton> {
    if root.name() != "Bridge" {
        return Err(xml_at(format!("expected <Bridge>, found <{}>", root.name()), root));
    }
    let name = root.attr("name").unwrap_or("bridge");
    let mut builder = MergedAutomaton::builder(name);
    for part_el in root.children_named("ColoredAutomaton") {
        builder = builder.part(load_automaton_element(part_el)?);
    }
    for eq_el in root.children_named("Equivalence") {
        let target = eq_el.required_attr("target").map_err(xml_err)?;
        let sources_text = eq_el.required_attr("sources").map_err(xml_err)?;
        let sources: Vec<&str> = sources_text.split(',').map(str::trim).collect();
        builder = builder.equivalence(target, &sources);
    }
    for delta_el in root.children_named("Delta") {
        let from = delta_el.required_attr("from").map_err(xml_err)?;
        let to = delta_el.required_attr("to").map_err(xml_err)?;
        let mut delta = Delta::new(from, to);
        for action_el in delta_el.children_named("Action") {
            delta = delta.action(parse_action(action_el)?);
        }
        if let Some(logic) = delta_el.child("TranslationLogic") {
            for assignment_el in logic.children_named("Assignment") {
                delta = delta.assignment(parse_assignment(assignment_el)?);
            }
        }
        builder = builder.delta(delta);
    }
    if let Some(initial) = root.child("Initial") {
        builder = builder.initial(initial.required_attr("ref").map_err(xml_err)?);
    }
    builder.build()
}

fn value_source_to_element(source: &ValueSource) -> Element {
    match source {
        ValueSource::Field { message, path, state } => {
            let mut el = Element::new("Field");
            el.push_child_with_text("Message", message.clone());
            el.push_child_with_text("Xpath", path.to_xpath());
            if let Some(state) = state {
                el.push_child_with_text("State", state.clone());
            }
            el
        }
        ValueSource::Literal(value) => {
            let mut el = Element::new("Literal");
            el.set_attr("kind", value.type_name());
            el.push_text(value.to_text());
            el
        }
        ValueSource::Function { name, args } => {
            let mut el = Element::new("Function");
            el.set_attr("name", name.clone());
            for arg in args {
                el.push_element(value_source_to_element(arg));
            }
            el
        }
    }
}

/// Renders a merged automaton back to its `<Bridge>` XML element
/// (regenerating the Fig. 5/8 model documents).
pub fn bridge_to_element(merged: &MergedAutomaton) -> Element {
    let mut root = Element::new("Bridge");
    root.set_attr("name", merged.name());
    for part in merged.parts() {
        root.push_element(automaton_to_element(part));
    }
    for decl in merged.equivalences().declarations() {
        let mut el = Element::new("Equivalence");
        el.set_attr("target", &decl.target);
        el.set_attr("sources", decl.sources.join(","));
        root.push_element(el);
    }
    for delta in merged.deltas() {
        let mut el = Element::new("Delta");
        el.set_attr("from", merged.state_name(delta.from));
        el.set_attr("to", merged.state_name(delta.to));
        for action in &delta.actions {
            let mut action_el = Element::new("Action");
            action_el.set_attr("name", &action.name);
            for arg in &action.args {
                action_el.push_element(value_source_to_element(arg));
            }
            el.push_element(action_el);
        }
        if !delta.assignments.is_empty() {
            let mut logic = Element::new("TranslationLogic");
            for assignment in &delta.assignments {
                let mut assignment_el = Element::new("Assignment");
                let mut target = Element::new("Field");
                target.push_child_with_text("Message", assignment.target_message.clone());
                target.push_child_with_text("Xpath", assignment.target_path.to_xpath());
                assignment_el.push_element(target);
                assignment_el.push_element(value_source_to_element(&assignment.source));
                logic.push_element(assignment_el);
            }
            el.push_element(logic);
        }
        root.push_element(el);
    }
    let initial_name = merged.state_name(merged.initial());
    let mut initial_el = Element::new("Initial");
    initial_el.set_attr("ref", initial_name);
    root.push_element(initial_el);
    root
}

/// Renders a merged automaton to a pretty-printed `<Bridge>` document.
pub fn bridge_to_xml(merged: &MergedAutomaton) -> String {
    starlink_xml::to_string_pretty(&bridge_to_element(merged))
}

/// Renders a coloured automaton to a pretty-printed document.
pub fn automaton_to_xml(automaton: &ColoredAutomaton) -> String {
    starlink_xml::to_string_pretty(&automaton_to_element(automaton))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1 as an XML model.
    const SLP_AUTOMATON: &str = r#"
    <ColoredAutomaton protocol="SLP">
      <Color>
        <transport_protocol>udp</transport_protocol>
        <port>427</port>
        <mode>async</mode>
        <multicast>yes</multicast>
        <group>239.255.255.253</group>
      </Color>
      <State name="s0" initial="true"/>
      <State name="s1" accepting="true"/>
      <Transition from="s0" action="receive" message="SLPSrvRequest" to="s1"/>
      <Transition from="s1" action="send" message="SLPSrvReply" to="s0"/>
    </ColoredAutomaton>"#;

    const DNS_AUTOMATON: &str = r#"
    <ColoredAutomaton protocol="DNS">
      <Color>
        <transport_protocol>udp</transport_protocol>
        <port>5353</port>
        <mode>async</mode>
        <multicast>yes</multicast>
        <group>224.0.0.251</group>
      </Color>
      <State name="s0" initial="true"/>
      <State name="s1"/>
      <State name="s2" accepting="true"/>
      <Transition from="s0" action="send" message="DNS_Question" to="s1"/>
      <Transition from="s1" action="receive" message="DNS_Response" to="s2"/>
    </ColoredAutomaton>"#;

    fn fig10_bridge_xml() -> String {
        format!(
            r#"<Bridge name="slp-to-bonjour">
              {SLP_AUTOMATON}
              {DNS_AUTOMATON}
              <Equivalence target="DNS_Question" sources="SLPSrvRequest"/>
              <Equivalence target="SLPSrvReply" sources="DNS_Response"/>
              <Delta from="SLP:s1" to="DNS:s0">
                <TranslationLogic>
                  <Assignment>
                    <Field>
                      <Message>DNS_Question</Message>
                      <Xpath>/field/primitiveField[label='DomainName']/value</Xpath>
                    </Field>
                    <Function name="slp-to-dns-type">
                      <Field>
                        <Message>SLPSrvRequest</Message>
                        <Xpath>/field/primitiveField[label='SRVType']/value</Xpath>
                      </Field>
                    </Function>
                  </Assignment>
                </TranslationLogic>
              </Delta>
              <Delta from="DNS:s2" to="SLP:s1">
                <TranslationLogic>
                  <Assignment>
                    <Field>
                      <Message>SLPSrvReply</Message>
                      <Xpath>/field/primitiveField[label='URL']/value</Xpath>
                    </Field>
                    <Field>
                      <Message>DNS_Response</Message>
                      <Xpath>/field/primitiveField[label='RDATA']/value</Xpath>
                    </Field>
                  </Assignment>
                  <Assignment>
                    <Field>
                      <Message>SLPSrvReply</Message>
                      <Xpath>/field/primitiveField[label='XID']/value</Xpath>
                    </Field>
                    <Field>
                      <Message>SLPSrvRequest</Message>
                      <Xpath>/field/primitiveField[label='XID']/value</Xpath>
                    </Field>
                  </Assignment>
                </TranslationLogic>
              </Delta>
            </Bridge>"#
        )
    }

    #[test]
    fn loads_fig1_automaton() {
        let automaton = load_automaton(SLP_AUTOMATON).unwrap();
        assert_eq!(automaton.protocol(), "SLP");
        assert_eq!(automaton.states().len(), 2);
        assert_eq!(automaton.colors()[0].port(), 427);
        assert_eq!(automaton.colors()[0].group(), Some("239.255.255.253"));
    }

    #[test]
    fn automaton_roundtrips_through_xml() {
        let automaton = load_automaton(SLP_AUTOMATON).unwrap();
        let rendered = automaton_to_xml(&automaton);
        let reloaded = load_automaton(&rendered).unwrap();
        assert_eq!(automaton, reloaded);
    }

    #[test]
    fn loads_fig10_bridge() {
        let bridge = load_bridge(&fig10_bridge_xml()).unwrap();
        assert_eq!(bridge.parts().len(), 2);
        assert_eq!(bridge.deltas().len(), 2);
        assert_eq!(bridge.equivalences().len(), 2);
        let report = bridge.check_merge();
        assert!(report.is_mergeable(), "{report}");
        assert!(report.strongly_merged);
    }

    #[test]
    fn bridge_assignments_parse_fig8_grammar() {
        let bridge = load_bridge(&fig10_bridge_xml()).unwrap();
        let first_delta = &bridge.deltas()[0];
        assert_eq!(first_delta.assignments.len(), 1);
        let assignment = &first_delta.assignments[0];
        assert_eq!(assignment.target_message, "DNS_Question");
        assert_eq!(assignment.target_path.to_string(), "DomainName");
        assert!(
            matches!(&assignment.source, ValueSource::Function { name, .. } if name == "slp-to-dns-type")
        );
    }

    #[test]
    fn bridge_roundtrips_through_xml() {
        let bridge = load_bridge(&fig10_bridge_xml()).unwrap();
        let rendered = bridge_to_xml(&bridge);
        let reloaded = load_bridge(&rendered).unwrap();
        assert_eq!(bridge, reloaded);
    }

    #[test]
    fn bridge_with_action_roundtrips() {
        let xml = format!(
            r#"<Bridge name="with-action">
              {SLP_AUTOMATON}
              {DNS_AUTOMATON}
              <Equivalence target="DNS_Question" sources="SLPSrvRequest"/>
              <Delta from="SLP:s1" to="DNS:s0">
                <Action name="set_host">
                  <Function name="url-host">
                    <Field>
                      <Message>SLPSrvRequest</Message>
                      <Xpath>/field/primitiveField[label='URL']/value</Xpath>
                    </Field>
                  </Function>
                  <Literal kind="unsigned">80</Literal>
                </Action>
              </Delta>
              <Delta from="DNS:s2" to="SLP:s1"/>
            </Bridge>"#
        );
        let bridge = load_bridge(&xml).unwrap();
        assert_eq!(bridge.deltas()[0].actions.len(), 1);
        assert_eq!(bridge.deltas()[0].actions[0].name, "set_host");
        let reloaded = load_bridge(&bridge_to_xml(&bridge)).unwrap();
        assert_eq!(bridge, reloaded);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(load_automaton("<Wrong/>").is_err());
        assert!(load_bridge("<Wrong/>").is_err());
        assert!(load_automaton(
            r#"<ColoredAutomaton protocol="X"><State name="a"/><Color/></ColoredAutomaton>"#
        )
        .is_err());
        // Unknown state reference inside a delta.
        let bad = format!(
            r#"<Bridge name="b">{SLP_AUTOMATON}{DNS_AUTOMATON}
               <Delta from="SLP:s9" to="DNS:s0"/></Bridge>"#
        );
        assert!(load_bridge(&bad).is_err());
    }

    #[test]
    fn rejects_unknown_transition_action() {
        let bad = r#"
        <ColoredAutomaton protocol="X">
          <Color><transport_protocol>udp</transport_protocol><port>1</port></Color>
          <State name="a"/>
          <Transition from="a" action="teleport" message="M" to="a"/>
        </ColoredAutomaton>"#;
        assert!(load_automaton(bad).is_err());
    }

    #[test]
    fn initial_override_is_honoured() {
        let xml = format!(
            r#"<Bridge name="b">{SLP_AUTOMATON}{DNS_AUTOMATON}
               <Equivalence target="DNS_Question" sources="SLPSrvRequest"/>
               <Delta from="SLP:s1" to="DNS:s0"/>
               <Delta from="DNS:s2" to="SLP:s1"/>
               <Initial ref="SLP:s0"/></Bridge>"#
        );
        let bridge = load_bridge(&xml).unwrap();
        assert_eq!(bridge.state_name(bridge.initial()), "SLP:s0");
    }
}
