//! Property tests on the automata layer: colour-key perfect hashing,
//! merge-check invariants over randomly generated chain topologies, and
//! translation-function totality.

use proptest::prelude::*;
use starlink_automata::{
    Color, ColoredAutomaton, Delta, FunctionRegistry, MergedAutomaton, Mode, Transport,
};
use starlink_message::Value;

fn color_strategy() -> impl Strategy<Value = Color> {
    (
        prop_oneof![Just(Transport::Udp), Just(Transport::Tcp)],
        1u16..60_000,
        prop_oneof![Just(Mode::Async), Just(Mode::Sync)],
        prop::option::of(0u8..=15u8),
    )
        .prop_map(|(transport, port, mode, group)| {
            let color = Color::new(transport, port, mode);
            match group {
                Some(octet) => color.multicast(format!("239.0.0.{octet}")),
                None => color,
            }
        })
}

proptest! {
    #[test]
    fn color_key_is_a_perfect_hash(a in color_strategy(), b in color_strategy()) {
        // f is injective on colours: equal keys ⇔ equal colours.
        prop_assert_eq!(a == b, a.key() == b.key());
    }

    #[test]
    fn color_key_is_stable(color in color_strategy()) {
        prop_assert_eq!(color.key(), color.clone().key());
    }
}

/// Builds a request/response service-side automaton for protocol `P{i}`.
fn service_part(index: usize) -> ColoredAutomaton {
    ColoredAutomaton::builder(format!("P{index}"))
        .color(Color::new(Transport::Udp, 1_000 + index as u16, Mode::Async))
        .state("s0")
        .state_accepting("s1")
        .receive("s0", format!("Req{index}").as_str(), "s1")
        .send("s1", format!("Resp{index}").as_str(), "s0")
        .build()
        .expect("valid part")
}

/// Builds a request/response client-side automaton for protocol `P{i}`.
fn client_part(index: usize) -> ColoredAutomaton {
    ColoredAutomaton::builder(format!("P{index}"))
        .color(Color::new(Transport::Udp, 1_000 + index as u16, Mode::Async))
        .state("c0")
        .state("c1")
        .state_accepting("c2")
        .send("c0", format!("Req{index}").as_str(), "c1")
        .receive("c1", format!("Resp{index}").as_str(), "c2")
        .build()
        .expect("valid part")
}

proptest! {
    #[test]
    fn two_part_out_and_back_merges_are_always_mergeable(n in 1usize..6) {
        // A service part bridged to client part n: δ out + δ back, with
        // the equivalence declared — mergeable for any protocol index.
        let merged = MergedAutomaton::builder("prop")
            .part(service_part(0))
            .part(client_part(n))
            .equivalence(&format!("Req{n}"), &["Req0"])
            .equivalence("Resp0", &[&format!("Resp{n}")])
            .delta(Delta::new("P0:s1", format!("P{n}:c0")))
            .delta(Delta::new(format!("P{n}:c2"), "P0:s1"))
            .build()
            .unwrap();
        let report = merged.check_merge();
        prop_assert!(report.is_mergeable(), "{}", report);
        prop_assert!(report.strongly_merged);
    }

    #[test]
    fn dropping_any_delta_breaks_the_merge(drop_first in any::<bool>()) {
        // Removing either δ from the out-and-back shape must break the
        // weak-merge chain condition (fewer δs than parts).
        let mut builder = MergedAutomaton::builder("prop")
            .part(service_part(0))
            .part(client_part(1))
            .equivalence("Req1", &["Req0"])
            .equivalence("Resp0", &["Resp1"]);
        builder = if drop_first {
            builder.delta(Delta::new("P1:c2", "P0:s1"))
        } else {
            builder.delta(Delta::new("P0:s1", "P1:c0"))
        };
        let merged = builder.build().unwrap();
        prop_assert!(!merged.check_merge().is_mergeable());
    }

    #[test]
    fn missing_equivalence_is_always_reported(n in 1usize..6) {
        let merged = MergedAutomaton::builder("prop")
            .part(service_part(0))
            .part(client_part(n))
            // No equivalence for Req{n}.
            .equivalence("Resp0", &[&format!("Resp{n}")])
            .delta(Delta::new("P0:s1", format!("P{n}:c0")))
            .delta(Delta::new(format!("P{n}:c2"), "P0:s1"))
            .build()
            .unwrap();
        let report = merged.check_merge();
        prop_assert!(!report.is_mergeable());
        let needle = format!("Req{n}");
        prop_assert!(report.violations.iter().any(|v| v.contains(&needle)));
    }

    #[test]
    fn translation_functions_are_total_over_text(
        name in prop_oneof![
            Just("to-text"), Just("concat"), Just("slp-to-dns-type"),
            Just("dns-to-slp-type"), Just("slp-to-ssdp-type"), Just("ssdp-to-slp-type"),
        ],
        input in "[ -~]{0,32}",
    ) {
        // The vocabulary-mapping functions never panic or error on
        // arbitrary printable text (they normalise, not validate).
        let registry = FunctionRegistry::with_builtins();
        let out = registry.apply(name, &[Value::Str(input)]);
        prop_assert!(out.is_ok(), "{name}: {out:?}");
    }

    #[test]
    fn url_functions_roundtrip_wellformed_urls(
        host in "[a-z0-9.]{1,16}",
        port in 1u16..,
        path in "[a-z0-9/._-]{0,16}",
    ) {
        let registry = FunctionRegistry::with_builtins();
        let url = Value::Str(format!("http://{host}:{port}/{path}"));
        prop_assert_eq!(
            registry.apply("url-host", std::slice::from_ref(&url)).unwrap(),
            Value::Str(host.clone())
        );
        prop_assert_eq!(
            registry.apply("url-port", std::slice::from_ref(&url)).unwrap(),
            Value::Unsigned(u64::from(port))
        );
        // format-url(url parts) reconstructs a URL whose parts re-extract.
        let rebuilt = registry
            .apply(
                "format-url",
                &[
                    Value::Str("http".into()),
                    Value::Str(host.clone()),
                    Value::Unsigned(u64::from(port)),
                    Value::Str(format!("/{path}")),
                ],
            )
            .unwrap();
        prop_assert_eq!(
            registry.apply("url-host", &[rebuilt]).unwrap(),
            Value::Str(host)
        );
    }
}
