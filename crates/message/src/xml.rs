//! The XML image of an abstract message.
//!
//! §IV-A: "concretely, this is a Java object which conforms to an XML
//! schema of the abstract message representation ... this conformance to
//! the schema allows XPath expressions to be used to read and write field
//! values". Here the canonical object is [`AbstractMessage`]; this module
//! provides the equivalent XML rendering (and loader), which is what the
//! `/field/primitiveField[label='X']/value` selectors of the translation
//! logic are defined against.

use crate::error::{MessageError, Result};
use crate::field::{Field, PrimitiveField, StructuredField};
use crate::message::AbstractMessage;
use crate::value::Value;
use starlink_xml::Element;

fn value_to_named_element(tag: &str, value: &Value) -> Element {
    let mut el = Element::new(tag);
    el.set_attr("kind", value.type_name());
    match value {
        Value::List(items) => {
            for item in items {
                el.push_element(value_to_named_element("item", item));
            }
        }
        Value::Bytes(bytes) => {
            el.push_text(hex_encode(bytes));
        }
        other => {
            el.push_text(other.to_text());
        }
    }
    el
}

fn value_to_element(value: &Value) -> Element {
    value_to_named_element("value", value)
}

fn value_from_element(el: &Element) -> Result<Value> {
    let kind = el.attr("kind").unwrap_or("string");
    // Strings keep their whitespace verbatim; every other kind is
    // whitespace-insensitive and parses from the trimmed form.
    if kind == "string" {
        return Ok(Value::Str(el.raw_text()));
    }
    let text = el.text();
    match kind {
        "unsigned" => text
            .parse::<u64>()
            .map(Value::Unsigned)
            .map_err(|_| MessageError::Schema(format!("bad unsigned literal {text:?}"))),
        "signed" => text
            .parse::<i64>()
            .map(Value::Signed)
            .map_err(|_| MessageError::Schema(format!("bad signed literal {text:?}"))),
        "bool" => match text.as_str() {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            other => Err(MessageError::Schema(format!("bad bool literal {other:?}"))),
        },
        "bytes" => hex_decode(&text)
            .map(Value::Bytes)
            .ok_or_else(|| MessageError::Schema(format!("bad hex literal {text:?}"))),
        "list" => {
            let mut items = Vec::new();
            for item in el.children_named("item") {
                items.push(value_from_element(item)?);
            }
            Ok(Value::List(items))
        }
        _ => Ok(Value::Str(text)),
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    let text = text.trim();
    if !text.len().is_multiple_of(2) {
        return None;
    }
    (0..text.len()).step_by(2).map(|i| u8::from_str_radix(&text[i..i + 2], 16).ok()).collect()
}

fn field_to_element(field: &Field) -> Element {
    match field {
        Field::Primitive(p) => {
            let mut el = Element::new("primitiveField");
            el.push_child_with_text("label", p.label());
            el.push_child_with_text("type", p.type_name());
            if let Some(bits) = p.length_bits() {
                el.push_child_with_text("length", bits.to_string());
            }
            el.push_element(value_to_element(p.value()));
            el
        }
        Field::Structured(s) => {
            let mut el = Element::new("structuredField");
            el.push_child_with_text("label", s.label());
            let mut container = Element::new("field");
            for sub in s.fields() {
                container.push_element(field_to_element(sub));
            }
            el.push_element(container);
            el
        }
    }
}

fn field_from_element(el: &Element) -> Result<Field> {
    match el.name() {
        "primitiveField" => {
            let label = el
                .child_text("label")
                .ok_or_else(|| MessageError::Schema("primitiveField missing <label>".into()))?;
            let type_name = el.child_text("type").unwrap_or_else(|| "String".into());
            let value = match el.child("value") {
                Some(v) => value_from_element(v)?,
                None => Value::Str(String::new()),
            };
            let mut prim = PrimitiveField::new(label.clone(), type_name.clone(), value);
            if let Some(bits) = el.child_text("length").and_then(|t| t.parse::<u32>().ok()) {
                prim = PrimitiveField::with_length(label, type_name, bits, prim.value().clone());
            }
            Ok(Field::Primitive(prim))
        }
        "structuredField" => {
            let label = el
                .child_text("label")
                .ok_or_else(|| MessageError::Schema("structuredField missing <label>".into()))?;
            let mut structured = StructuredField::new(label);
            if let Some(container) = el.child("field") {
                for sub in container.children() {
                    structured.push(field_from_element(sub)?);
                }
            }
            Ok(Field::Structured(structured))
        }
        other => Err(MessageError::Schema(format!("unexpected field element <{other}>"))),
    }
}

/// Renders `message` as its canonical XML [`Element`].
pub fn message_to_element(message: &AbstractMessage) -> Element {
    let mut root = Element::new("abstractMessage");
    root.set_attr("protocol", message.protocol());
    root.set_attr("name", message.name());
    let mut container = Element::new("field");
    for field in message.fields() {
        container.push_element(field_to_element(field));
    }
    root.push_element(container);
    for label in message.mandatory_labels() {
        root.push_child_with_text("mandatory", label);
    }
    root
}

/// Renders `message` as an XML string (the wire-independent debug/export
/// format).
pub fn message_to_xml(message: &AbstractMessage) -> String {
    starlink_xml::to_string_pretty(&message_to_element(message))
}

/// Parses the canonical XML [`Element`] form back into a message.
///
/// # Errors
///
/// Returns [`MessageError::Schema`] for structural violations.
pub fn message_from_element(root: &Element) -> Result<AbstractMessage> {
    if root.name() != "abstractMessage" {
        return Err(MessageError::Schema(format!(
            "expected <abstractMessage>, found <{}>",
            root.name()
        )));
    }
    let protocol = root.attr("protocol").unwrap_or_default().to_owned();
    let name = root
        .attr("name")
        .ok_or_else(|| MessageError::Schema("abstractMessage missing name".into()))?
        .to_owned();
    let mut message = AbstractMessage::new(protocol, name);
    if let Some(container) = root.child("field") {
        for field in container.children() {
            message.push_field(field_from_element(field)?);
        }
    }
    for mandatory in root.children_named("mandatory") {
        message.mark_mandatory(mandatory.text());
    }
    Ok(message)
}

/// Parses the XML string form back into a message.
///
/// # Errors
///
/// Returns [`MessageError::Schema`] for malformed XML or structure.
pub fn message_from_xml(source: &str) -> Result<AbstractMessage> {
    let root = Element::parse(source)
        .map_err(|e| MessageError::Schema(format!("invalid message XML: {e}")))?;
    message_from_element(&root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AbstractMessage {
        let mut msg = AbstractMessage::new("SLP", "SLPSrvRequest");
        msg.push_field(Field::Primitive(PrimitiveField::with_length(
            "XID",
            "Integer",
            16,
            Value::Unsigned(7),
        )));
        msg.push_field(Field::primitive("SRVType", "service:printer"));
        msg.push_field(Field::structured(
            "URL",
            vec![Field::primitive("address", "10.0.0.1"), Field::primitive("port", 427u16)],
        ));
        msg.push_field(Field::primitive("Opaque", vec![1u8, 2, 0xff]));
        msg.push_field(Field::primitive(
            "Records",
            vec![Value::Str("a".into()), Value::Unsigned(2)],
        ));
        msg.mark_mandatory("SRVType");
        msg
    }

    #[test]
    fn roundtrip_through_xml() {
        let msg = sample();
        let xml = message_to_xml(&msg);
        let back = message_from_xml(&xml).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn xml_form_matches_xpath_schema() {
        // The element layout must match what FieldPath::parse_xpath
        // assumes: field/primitiveField/label+value.
        let xml = message_to_xml(&sample());
        assert!(xml.contains("<primitiveField>"));
        assert!(xml.contains("<label>SRVType</label>"));
        assert!(xml.contains("<structuredField>"));
    }

    #[test]
    fn bytes_roundtrip_as_hex() {
        let xml = message_to_xml(&sample());
        assert!(xml.contains("0102ff"));
    }

    #[test]
    fn mandatory_labels_roundtrip() {
        let back = message_from_xml(&message_to_xml(&sample())).unwrap();
        assert!(back.is_mandatory("SRVType"));
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(message_from_xml("<other/>").is_err());
    }

    #[test]
    fn hex_codec() {
        assert_eq!(hex_encode(&[0x00, 0xab]), "00ab");
        assert_eq!(hex_decode("00ab").unwrap(), vec![0x00, 0xab]);
        assert!(hex_decode("0").is_none());
        assert!(hex_decode("zz").is_none());
    }
}
