//! # starlink-message
//!
//! The **abstract message** layer of the Starlink framework (§III-A of the
//! paper): a protocol-independent representation of network messages that
//! the rest of the system — MDL parsers/composers, the automata engine and
//! the translation logic — manipulates without ever touching wire bytes.
//!
//! An [`AbstractMessage`] is an ordered set of [`Field`]s; each field is
//! either a [`PrimitiveField`] (label, type name, bit length, [`Value`]) or
//! a [`StructuredField`] of sub-fields. Fields are addressed by
//! [`FieldPath`]s, which parse from both the paper's dotted notation
//! (`msg.field`) and the XPath subset used in the XML translation logic
//! (`/field/primitiveField[label='ST']/value`, Fig. 8).
//!
//! [`MessageSchema`] describes a message type's shape and instantiates
//! blank messages for composition; the [`xml`] module renders the canonical
//! XML image of a message that the XPath selectors are defined against.
//!
//! ## Example
//!
//! ```
//! use starlink_message::{AbstractMessage, Field, FieldPath, Value};
//!
//! // The bridge state of Fig. 4: assign SSDP's ST field from SLP's
//! // ServiceType field.
//! let mut slp_req = AbstractMessage::new("SLP", "SLPSrvRequest");
//! slp_req.push_field(Field::primitive("ServiceType", "service:printer"));
//!
//! let mut ssdp_search = AbstractMessage::new("SSDP", "SSDP_M-Search");
//! ssdp_search.push_field(Field::primitive("ST", ""));
//!
//! let source = FieldPath::parse("/field/primitiveField[label='ServiceType']/value")?;
//! let target = FieldPath::parse("/field/primitiveField[label='ST']/value")?;
//! let value = slp_req.get(&source)?.clone();
//! ssdp_search.set(&target, value)?;
//!
//! assert_eq!(ssdp_search.get(&"ST".into())?, &Value::Str("service:printer".into()));
//! # Ok::<(), starlink_message::MessageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod field;
mod label;
mod message;
mod path;
mod schema;
mod value;
pub mod xml;

pub use error::{MessageError, Result};
pub use field::{Field, PrimitiveField, StructuredField};
pub use label::Label;
pub use message::AbstractMessage;
pub use path::{FieldPath, PathSegment, SegmentKind};
pub use schema::{FieldSchema, MessageSchema};
pub use value::Value;
