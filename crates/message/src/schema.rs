//! Message schemas: the shape of a message type, used to instantiate
//! blank abstract messages that translation logic then fills in.

use crate::error::{MessageError, Result};
use crate::field::{Field, PrimitiveField, StructuredField};
use crate::label::Label;
use crate::message::AbstractMessage;
use crate::value::Value;

/// Schema of one field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSchema {
    /// Field label.
    pub label: Label,
    /// MDL type name (`Integer`, `String`, ...). Empty for structured.
    pub type_name: Label,
    /// Fixed bit length, when declared.
    pub length_bits: Option<u32>,
    /// Whether the ⊨ operator requires this field to be filled.
    pub mandatory: bool,
    /// Default value used at instantiation (None derives one from the type).
    pub default: Option<Value>,
    /// Sub-field schemas; non-empty makes this a structured field.
    pub children: Vec<FieldSchema>,
}

impl FieldSchema {
    /// Creates a primitive field schema.
    pub fn primitive(label: impl Into<Label>, type_name: impl Into<Label>) -> Self {
        FieldSchema {
            label: label.into(),
            type_name: type_name.into(),
            length_bits: None,
            mandatory: false,
            default: None,
            children: Vec::new(),
        }
    }

    /// Creates a structured field schema.
    pub fn structured(label: impl Into<Label>, children: Vec<FieldSchema>) -> Self {
        FieldSchema {
            label: label.into(),
            type_name: Label::empty(),
            length_bits: None,
            mandatory: false,
            default: None,
            children,
        }
    }

    /// Builder: set the declared bit length.
    pub fn with_length(mut self, bits: u32) -> Self {
        self.length_bits = Some(bits);
        self
    }

    /// Builder: mark mandatory.
    pub fn required(mut self) -> Self {
        self.mandatory = true;
        self
    }

    /// Builder: set the default value.
    pub fn with_default(mut self, value: impl Into<Value>) -> Self {
        self.default = Some(value.into());
        self
    }

    /// True when this schema describes a structured field.
    pub fn is_structured(&self) -> bool {
        !self.children.is_empty()
    }

    fn default_value(&self) -> Value {
        if let Some(v) = &self.default {
            return v.clone();
        }
        match self.type_name.as_str() {
            "Integer" | "Unsigned" => Value::Unsigned(0),
            "Signed" => Value::Signed(0),
            "Bool" => Value::Bool(false),
            "Bytes" | "Opaque" => Value::Bytes(Vec::new()),
            "List" => Value::List(Vec::new()),
            // String, FQDN, URL and any unknown custom type default to text.
            _ => Value::Str(String::new()),
        }
    }

    fn instantiate(&self) -> Field {
        if self.is_structured() {
            Field::Structured(StructuredField::with_fields(
                self.label.clone(),
                self.children.iter().map(FieldSchema::instantiate).collect(),
            ))
        } else {
            let mut prim = PrimitiveField::new(
                self.label.clone(),
                self.type_name.clone(),
                self.default_value(),
            );
            if let Some(bits) = self.length_bits {
                prim = PrimitiveField::with_length(
                    self.label.clone(),
                    self.type_name.clone(),
                    bits,
                    prim.value().clone(),
                );
            }
            Field::Primitive(prim)
        }
    }
}

/// Schema of a message type: protocol, name and ordered field schemas.
///
/// ```
/// use starlink_message::{MessageSchema, FieldSchema};
///
/// let schema = MessageSchema::new("SLP", "SLPSrvReply")
///     .field(FieldSchema::primitive("XID", "Integer").with_length(16))
///     .field(FieldSchema::primitive("URL", "String").required());
/// let blank = schema.instantiate();
/// assert_eq!(blank.name(), "SLPSrvReply");
/// assert_eq!(blank.unfilled_mandatory(), vec!["URL"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSchema {
    protocol: Label,
    name: Label,
    fields: Vec<FieldSchema>,
}

impl MessageSchema {
    /// Creates an empty schema.
    pub fn new(protocol: impl Into<Label>, name: impl Into<Label>) -> Self {
        MessageSchema { protocol: protocol.into(), name: name.into(), fields: Vec::new() }
    }

    /// Builder: appends a field schema.
    pub fn field(mut self, field: FieldSchema) -> Self {
        self.fields.push(field);
        self
    }

    /// The protocol name.
    pub fn protocol(&self) -> &str {
        &self.protocol
    }

    /// The message type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field schemas in order.
    pub fn fields(&self) -> &[FieldSchema] {
        &self.fields
    }

    /// Looks up a field schema by label (top level only).
    pub fn field_schema(&self, label: &str) -> Option<&FieldSchema> {
        self.fields.iter().find(|f| f.label == label)
    }

    /// Instantiates a blank message: every field present with its default
    /// value, mandatory labels registered.
    pub fn instantiate(&self) -> AbstractMessage {
        let mut msg = AbstractMessage::new(self.protocol.clone(), self.name.clone());
        for field in &self.fields {
            msg.push_field(field.instantiate());
            if field.mandatory {
                msg.mark_mandatory(field.label.clone());
            }
        }
        msg
    }

    /// Checks that `message` structurally conforms to this schema: every
    /// schema field present (recursively) with matching shape.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::Schema`] naming the first offending field.
    pub fn validate(&self, message: &AbstractMessage) -> Result<()> {
        fn check(expected: &[FieldSchema], actual: &[Field], context: &str) -> Result<()> {
            for schema in expected {
                let field = actual.iter().find(|f| f.label() == schema.label).ok_or_else(|| {
                    MessageError::Schema(format!("missing field {}{}", context, schema.label))
                })?;
                match (schema.is_structured(), field) {
                    (true, Field::Structured(s)) => {
                        let nested = format!("{}{}.", context, schema.label);
                        check(&schema.children, s.fields(), &nested)?;
                    }
                    (false, Field::Primitive(_)) => {}
                    (true, Field::Primitive(_)) => {
                        return Err(MessageError::Schema(format!(
                            "field {}{} should be structured",
                            context, schema.label
                        )));
                    }
                    (false, Field::Structured(_)) => {
                        return Err(MessageError::Schema(format!(
                            "field {}{} should be primitive",
                            context, schema.label
                        )));
                    }
                }
            }
            Ok(())
        }
        if message.name() != self.name {
            return Err(MessageError::Schema(format!(
                "message name {:?} does not match schema {:?}",
                message.name(),
                self.name
            )));
        }
        check(&self.fields, message.fields(), "")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reply_schema() -> MessageSchema {
        MessageSchema::new("SLP", "SLPSrvReply")
            .field(FieldSchema::primitive("XID", "Integer").with_length(16))
            .field(FieldSchema::primitive("URL", "String").required())
            .field(FieldSchema::structured(
                "Origin",
                vec![
                    FieldSchema::primitive("address", "String"),
                    FieldSchema::primitive("port", "Integer"),
                ],
            ))
    }

    #[test]
    fn instantiate_fills_defaults() {
        let msg = reply_schema().instantiate();
        assert_eq!(msg.get(&"XID".into()).unwrap(), &Value::Unsigned(0));
        assert_eq!(msg.get(&"URL".into()).unwrap(), &Value::Str(String::new()));
        assert_eq!(msg.get(&"Origin.port".into()).unwrap(), &Value::Unsigned(0));
    }

    #[test]
    fn instantiate_registers_mandatory() {
        let msg = reply_schema().instantiate();
        assert!(msg.is_mandatory("URL"));
        assert!(!msg.is_mandatory("XID"));
    }

    #[test]
    fn explicit_default_wins() {
        let schema = MessageSchema::new("P", "M")
            .field(FieldSchema::primitive("Version", "Integer").with_default(2u8));
        let msg = schema.instantiate();
        assert_eq!(msg.get(&"Version".into()).unwrap().as_u64().unwrap(), 2);
    }

    #[test]
    fn validate_accepts_instantiated() {
        let schema = reply_schema();
        assert!(schema.validate(&schema.instantiate()).is_ok());
    }

    #[test]
    fn validate_flags_missing_nested_field() {
        let schema = reply_schema();
        let mut msg = schema.instantiate();
        let origin = msg.field_mut("Origin").unwrap().as_structured_mut().unwrap();
        origin.fields_mut().retain(|f| f.label() != "port");
        let err = schema.validate(&msg).unwrap_err();
        assert!(err.to_string().contains("Origin.port"));
    }

    #[test]
    fn validate_flags_shape_mismatch() {
        let schema = reply_schema();
        let mut msg = schema.instantiate();
        *msg.field_mut("Origin").unwrap() = Field::primitive("Origin", 1u8);
        assert!(schema.validate(&msg).is_err());
    }

    #[test]
    fn validate_flags_wrong_name() {
        let schema = reply_schema();
        let msg = AbstractMessage::new("SLP", "Other");
        assert!(schema.validate(&msg).is_err());
    }
}
