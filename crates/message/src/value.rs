//! Typed values carried by primitive fields.

use crate::error::{MessageError, Result};
use std::fmt;

/// The content of a primitive field (§III-A: "the value i.e. the content of
/// the field").
///
/// The set of variants is closed: every marshaller in the MDL layer maps a
/// wire type onto one of these, which is what lets the translation logic
/// move content between arbitrary protocols without knowing either wire
/// format.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An unsigned integer (covers every binary integer field up to 64 bits).
    Unsigned(u64),
    /// A signed integer.
    Signed(i64),
    /// A UTF-8 string (text-protocol fields, FQDNs, URLs, ...).
    Str(String),
    /// Raw bytes for opaque fields.
    Bytes(Vec<u8>),
    /// A boolean flag.
    Bool(bool),
    /// An ordered list of values (e.g. repeated DNS records).
    List(Vec<Value>),
}

impl Value {
    /// A short name for the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unsigned(_) => "unsigned",
            Value::Signed(_) => "signed",
            Value::Str(_) => "string",
            Value::Bytes(_) => "bytes",
            Value::Bool(_) => "bool",
            Value::List(_) => "list",
        }
    }

    /// Coerces to `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::TypeMismatch`] unless the value is an
    /// in-range integer or a numeric string.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Value::Unsigned(v) => Ok(*v),
            Value::Signed(v) if *v >= 0 => Ok(*v as u64),
            Value::Str(s) => s.trim().parse::<u64>().map_err(|_| self.mismatch("unsigned")),
            Value::Bool(b) => Ok(u64::from(*b)),
            _ => Err(self.mismatch("unsigned")),
        }
    }

    /// Coerces to `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::TypeMismatch`] unless the value is an
    /// in-range integer or a numeric string.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Signed(v) => Ok(*v),
            Value::Unsigned(v) => i64::try_from(*v).map_err(|_| self.mismatch("signed")),
            Value::Str(s) => s.trim().parse::<i64>().map_err(|_| self.mismatch("signed")),
            Value::Bool(b) => Ok(i64::from(*b)),
            _ => Err(self.mismatch("signed")),
        }
    }

    /// Borrows the value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::TypeMismatch`] unless the value is a string.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(self.mismatch("string")),
        }
    }

    /// Borrows the value as raw bytes (strings are viewed as UTF-8 bytes).
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::TypeMismatch`] for non-byte-like values.
    pub fn as_bytes(&self) -> Result<&[u8]> {
        match self {
            Value::Bytes(b) => Ok(b),
            Value::Str(s) => Ok(s.as_bytes()),
            _ => Err(self.mismatch("bytes")),
        }
    }

    /// Coerces to `bool`.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::TypeMismatch`] unless the value is a bool or
    /// 0/1 integer.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Unsigned(0) | Value::Signed(0) => Ok(false),
            Value::Unsigned(1) | Value::Signed(1) => Ok(true),
            _ => Err(self.mismatch("bool")),
        }
    }

    /// Borrows the value as a list.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::TypeMismatch`] unless the value is a list.
    pub fn as_list(&self) -> Result<&[Value]> {
        match self {
            Value::List(items) => Ok(items),
            _ => Err(self.mismatch("list")),
        }
    }

    /// Renders the value as the string a text protocol would carry: numbers
    /// in decimal, bytes lossily decoded, lists comma-separated.
    ///
    /// This is the canonical lossy conversion used when translation logic
    /// assigns a binary field to a text field (e.g. an SLP `XID` integer
    /// into an SSDP header line).
    pub fn to_text(&self) -> String {
        match self {
            Value::Unsigned(v) => v.to_string(),
            Value::Signed(v) => v.to_string(),
            Value::Str(s) => s.clone(),
            Value::Bytes(b) => String::from_utf8_lossy(b).into_owned(),
            Value::Bool(b) => b.to_string(),
            Value::List(items) => items.iter().map(Value::to_text).collect::<Vec<_>>().join(","),
        }
    }

    /// True when the value is the "empty" value of its variant (0, empty
    /// string/bytes/list, false). Used when checking which mandatory fields
    /// of a composed message are still unfilled.
    pub fn is_empty(&self) -> bool {
        match self {
            Value::Unsigned(v) => *v == 0,
            Value::Signed(v) => *v == 0,
            Value::Str(s) => s.is_empty(),
            Value::Bytes(b) => b.is_empty(),
            Value::Bool(b) => !*b,
            Value::List(items) => items.is_empty(),
        }
    }

    fn mismatch(&self, expected: &'static str) -> MessageError {
        MessageError::TypeMismatch { expected, found: self.type_name() }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            other => f.write_str(&other.to_text()),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Unsigned(0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Unsigned(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Unsigned(u64::from(v))
    }
}

impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::Unsigned(u64::from(v))
    }
}

impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value::Unsigned(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Signed(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Signed(i64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::Unsigned(7).as_u64().unwrap(), 7);
        assert_eq!(Value::Signed(7).as_u64().unwrap(), 7);
        assert_eq!(Value::Str("42".into()).as_u64().unwrap(), 42);
        assert!(Value::Signed(-1).as_u64().is_err());
        assert_eq!(Value::Unsigned(9).as_i64().unwrap(), 9);
        assert!(Value::Unsigned(u64::MAX).as_i64().is_err());
    }

    #[test]
    fn string_and_bytes_views() {
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
        assert!(Value::Unsigned(1).as_str().is_err());
        assert_eq!(Value::Str("ab".into()).as_bytes().unwrap(), b"ab");
        assert_eq!(Value::Bytes(vec![1, 2]).as_bytes().unwrap(), &[1, 2]);
    }

    #[test]
    fn bool_coercions() {
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(!Value::Unsigned(0).as_bool().unwrap());
        assert!(Value::Unsigned(2).as_bool().is_err());
    }

    #[test]
    fn to_text_is_lossy_but_total() {
        assert_eq!(Value::Unsigned(80).to_text(), "80");
        assert_eq!(Value::Bytes(b"hi".to_vec()).to_text(), "hi");
        assert_eq!(Value::List(vec![Value::Unsigned(1), Value::Str("a".into())]).to_text(), "1,a");
    }

    #[test]
    fn emptiness() {
        assert!(Value::Unsigned(0).is_empty());
        assert!(Value::Str(String::new()).is_empty());
        assert!(!Value::Str("x".into()).is_empty());
    }

    #[test]
    fn display_of_bytes_is_hex() {
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_string(), "0xdead");
    }

    #[test]
    fn mismatch_error_names_both_types() {
        let err = Value::Unsigned(1).as_str().unwrap_err();
        assert_eq!(err.to_string(), "value type mismatch: expected string, found unsigned");
    }
}
