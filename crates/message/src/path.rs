//! Field paths: the `msg.field` selection operator of §III-A and the
//! XPath subset used by the XML translation logic of §IV-B (Fig. 8).
//!
//! Two concrete syntaxes parse into the same [`FieldPath`]:
//!
//! * **dotted** — `URL.port`, as the paper writes `msg.field`;
//! * **XPath subset** — `/field/primitiveField[label='ST']/value`, the
//!   form the XML translation-logic documents use against the XML image
//!   of an abstract message.

use crate::error::{MessageError, Result};
use crate::label::Label;
use std::fmt;
use std::str::FromStr;

/// What kind of field a path segment expects to traverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// No constraint (dotted syntax).
    Any,
    /// Must resolve to a primitive field (`primitiveField[...]`).
    Primitive,
    /// Must resolve to a structured field (`structuredField[...]`).
    Structured,
}

/// One step of a [`FieldPath`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PathSegment {
    /// Label of the field to select.
    pub label: Label,
    /// Shape constraint for the selected field.
    pub kind: SegmentKind,
}

impl PathSegment {
    /// Creates an unconstrained segment.
    pub fn any(label: impl Into<Label>) -> Self {
        PathSegment { label: label.into(), kind: SegmentKind::Any }
    }
}

/// A parsed path addressing one field (usually one primitive field) inside
/// an abstract message.
///
/// ```
/// use starlink_message::FieldPath;
///
/// let dotted: FieldPath = "URL.port".parse()?;
/// let xpath = FieldPath::parse_xpath(
///     "/field/structuredField[label='URL']/field/primitiveField[label='port']/value",
/// )?;
/// // Both address the same field; the XPath form additionally constrains
/// // the field shapes it traverses.
/// assert_eq!(dotted.to_string(), xpath.to_string());
/// # Ok::<(), starlink_message::MessageError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldPath {
    segments: Vec<PathSegment>,
}

impl FieldPath {
    /// Builds a path from raw segments.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::PathSyntax`] when `segments` is empty.
    pub fn new(segments: Vec<PathSegment>) -> Result<Self> {
        if segments.is_empty() {
            return Err(MessageError::PathSyntax("(empty)".into()));
        }
        Ok(FieldPath { segments })
    }

    /// Builds a single-segment path addressing a top-level field.
    pub fn field(label: impl Into<Label>) -> Self {
        FieldPath { segments: vec![PathSegment::any(label)] }
    }

    /// Parses the dotted syntax (`a.b.c`).
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::PathSyntax`] for empty input or empty
    /// segments (`a..b`).
    pub fn parse_dotted(expr: &str) -> Result<Self> {
        let expr = expr.trim();
        if expr.is_empty() {
            return Err(MessageError::PathSyntax(expr.to_owned()));
        }
        let mut segments = Vec::new();
        for part in expr.split('.') {
            let part = part.trim();
            if part.is_empty() {
                return Err(MessageError::PathSyntax(expr.to_owned()));
            }
            segments.push(PathSegment::any(part));
        }
        FieldPath::new(segments)
    }

    /// Parses the XPath subset used by the XML translation logic:
    /// `/field/(primitiveField|structuredField)[label='X']/...(/value)?`.
    ///
    /// The leading `/field` container steps and a trailing `/value` step
    /// are structural artefacts of the abstract-message XML schema and are
    /// absorbed; only the label selectors become path segments.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::PathSyntax`] on any deviation from the
    /// grammar above.
    pub fn parse_xpath(expr: &str) -> Result<Self> {
        let syntax = || MessageError::PathSyntax(expr.to_owned());
        let trimmed = expr.trim();
        let body = trimmed.strip_prefix('/').ok_or_else(syntax)?;
        let mut segments = Vec::new();
        let mut steps = body.split('/').peekable();
        // Leading container step.
        if steps.next() != Some("field") {
            return Err(syntax());
        }
        while let Some(step) = steps.next() {
            if step == "value" {
                // Terminal `/value`: nothing may follow.
                if steps.next().is_some() {
                    return Err(syntax());
                }
                break;
            }
            if step == "field" {
                // Interior container step between structured levels.
                continue;
            }
            let (kind, rest) = if let Some(rest) = step.strip_prefix("primitiveField") {
                (SegmentKind::Primitive, rest)
            } else if let Some(rest) = step.strip_prefix("structuredField") {
                (SegmentKind::Structured, rest)
            } else {
                return Err(syntax());
            };
            let predicate =
                rest.strip_prefix('[').and_then(|r| r.strip_suffix(']')).ok_or_else(syntax)?;
            let label_expr = predicate.strip_prefix("label=").ok_or_else(syntax)?;
            let label = label_expr
                .strip_prefix('\'')
                .and_then(|r| r.strip_suffix('\''))
                .or_else(|| label_expr.strip_prefix('"').and_then(|r| r.strip_suffix('"')))
                .ok_or_else(syntax)?;
            if label.is_empty() {
                return Err(syntax());
            }
            segments.push(PathSegment { label: label.into(), kind });
        }
        FieldPath::new(segments)
    }

    /// Parses either syntax: XPath when the expression starts with `/`,
    /// dotted otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::PathSyntax`] when neither grammar matches.
    pub fn parse(expr: &str) -> Result<Self> {
        if expr.trim_start().starts_with('/') {
            FieldPath::parse_xpath(expr)
        } else {
            FieldPath::parse_dotted(expr)
        }
    }

    /// The path segments in traversal order.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Always false: paths have at least one segment.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Extends the path by one unconstrained segment, returning a new path.
    pub fn join(&self, label: impl Into<Label>) -> Self {
        let mut segments = self.segments.clone();
        segments.push(PathSegment::any(label));
        FieldPath { segments }
    }

    /// Renders the XPath form of this path against the abstract-message
    /// XML schema (the inverse of [`FieldPath::parse_xpath`], using
    /// `primitiveField` for the final step and `structuredField` for
    /// interior steps when the kind is unconstrained).
    pub fn to_xpath(&self) -> String {
        let mut out = String::from("/field");
        let last = self.segments.len() - 1;
        for (i, segment) in self.segments.iter().enumerate() {
            let tag = match segment.kind {
                SegmentKind::Primitive => "primitiveField",
                SegmentKind::Structured => "structuredField",
                SegmentKind::Any => {
                    if i == last {
                        "primitiveField"
                    } else {
                        "structuredField"
                    }
                }
            };
            out.push('/');
            out.push_str(tag);
            out.push_str("[label='");
            out.push_str(&segment.label);
            out.push_str("']");
            if i != last {
                out.push_str("/field");
            }
        }
        out.push_str("/value");
        out
    }
}

impl fmt::Display for FieldPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, segment) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{}", segment.label)?;
        }
        Ok(())
    }
}

impl FromStr for FieldPath {
    type Err = MessageError;

    fn from_str(s: &str) -> Result<Self> {
        FieldPath::parse(s)
    }
}

impl From<&str> for FieldPath {
    fn from(s: &str) -> Self {
        // Infallible convenience for literals; panics on syntax errors,
        // which for inline literals is a programming error.
        FieldPath::parse(s).expect("invalid field path literal")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_single_and_nested() {
        let p = FieldPath::parse_dotted("ServiceType").unwrap();
        assert_eq!(p.len(), 1);
        let p = FieldPath::parse_dotted("URL.port").unwrap();
        assert_eq!(p.segments()[1].label, "port");
    }

    #[test]
    fn dotted_rejects_empty_segments() {
        assert!(FieldPath::parse_dotted("").is_err());
        assert!(FieldPath::parse_dotted("a..b").is_err());
    }

    #[test]
    fn xpath_fig8_form() {
        // Exactly the expression from Fig. 8 of the paper.
        let p = FieldPath::parse_xpath("/field/primitiveField[label='ST']/value").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.segments()[0].label, "ST");
        assert_eq!(p.segments()[0].kind, SegmentKind::Primitive);
    }

    #[test]
    fn xpath_nested_form() {
        let p = FieldPath::parse_xpath(
            "/field/structuredField[label='URL']/field/primitiveField[label='port']/value",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.segments()[0].kind, SegmentKind::Structured);
        assert_eq!(p.segments()[1].label, "port");
    }

    #[test]
    fn xpath_without_value_suffix() {
        let p = FieldPath::parse_xpath("/field/primitiveField[label='XID']").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn xpath_double_quotes_accepted() {
        let p = FieldPath::parse_xpath("/field/primitiveField[label=\"A\"]/value").unwrap();
        assert_eq!(p.segments()[0].label, "A");
    }

    #[test]
    fn xpath_rejects_malformed() {
        for bad in [
            "field/primitiveField[label='A']",
            "/primitiveField[label='A']",
            "/field/otherField[label='A']",
            "/field/primitiveField[name='A']",
            "/field/primitiveField[label='A']/value/extra",
            "/field/primitiveField[label='']/value",
        ] {
            assert!(FieldPath::parse_xpath(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn xpath_roundtrip() {
        let expr = "/field/structuredField[label='URL']/field/primitiveField[label='port']/value";
        let p = FieldPath::parse_xpath(expr).unwrap();
        assert_eq!(p.to_xpath(), expr);
    }

    #[test]
    fn parse_dispatches_on_leading_slash() {
        assert_eq!(
            FieldPath::parse("/field/primitiveField[label='A']/value").unwrap().to_string(),
            FieldPath::parse("A").unwrap().to_string()
        );
    }

    #[test]
    fn display_is_dotted() {
        let p = FieldPath::parse("URL.port").unwrap();
        assert_eq!(p.to_string(), "URL.port");
    }

    #[test]
    fn join_extends() {
        let p = FieldPath::field("URL").join("port");
        assert_eq!(p.to_string(), "URL.port");
    }
}
