//! Cheap shared field labels.
//!
//! Field labels (and the label-like strings around them: type names,
//! protocol and message names) are written once when a model is loaded
//! and then copied into every parsed message, every schema instantiation
//! and every translation step. Backing them with an `Arc<str>` makes
//! each of those copies a reference-count bump instead of a heap
//! allocation — the core of the zero-allocation codec hot path.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable string used for field labels, type
/// names and message names.
///
/// ```
/// use starlink_message::Label;
///
/// let label: Label = "SRVType".into();
/// let copy = label.clone(); // reference-count bump, no allocation
/// assert_eq!(copy, "SRVType");
/// assert_eq!(label.as_str().len(), 7);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl Label {
    /// Creates a label from anything string-like.
    pub fn new(text: impl Into<Label>) -> Self {
        text.into()
    }

    /// The empty label (one process-wide allocation, shared by every
    /// caller — cloning and constructing are both allocation-free).
    pub fn empty() -> Self {
        static EMPTY: std::sync::OnceLock<Label> = std::sync::OnceLock::new();
        EMPTY.get_or_init(|| Label(Arc::from(""))).clone()
    }

    /// Borrows the text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Label {
    type Target = str;

    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.0, f)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Default for Label {
    fn default() -> Self {
        Label::empty()
    }
}

impl From<&str> for Label {
    fn from(text: &str) -> Self {
        Label(Arc::from(text))
    }
}

impl From<String> for Label {
    fn from(text: String) -> Self {
        Label(Arc::from(text))
    }
}

impl From<&String> for Label {
    fn from(text: &String) -> Self {
        Label(Arc::from(text.as_str()))
    }
}

impl From<&Label> for Label {
    fn from(label: &Label) -> Self {
        label.clone()
    }
}

impl From<Label> for String {
    fn from(label: Label) -> Self {
        label.0.as_ref().to_owned()
    }
}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Label {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Label> for str {
    fn eq(&self, other: &Label) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Label> for &str {
    fn eq(&self, other: &Label) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Label> for String {
    fn eq(&self, other: &Label) -> bool {
        self.as_str() == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a: Label = "ServiceType".into();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn compares_against_string_types() {
        let label = Label::from("XID");
        assert_eq!(label, "XID");
        assert_eq!("XID", label);
        assert_eq!(label, String::from("XID"));
        assert_ne!(label, "xid");
    }

    #[test]
    fn orders_and_hashes_like_str() {
        use std::collections::BTreeSet;
        let mut set: BTreeSet<Label> = BTreeSet::new();
        set.insert("b".into());
        set.insert("a".into());
        // Borrow<str> lets str keys query Label sets.
        assert!(set.contains("a"));
        let ordered: Vec<&str> = set.iter().map(Label::as_str).collect();
        assert_eq!(ordered, vec!["a", "b"]);
    }

    #[test]
    fn displays_bare_and_debugs_quoted() {
        let label = Label::from("URL");
        assert_eq!(label.to_string(), "URL");
        assert_eq!(format!("{label:?}"), "\"URL\"");
    }
}
