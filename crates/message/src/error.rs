//! Error type for abstract-message operations.

use std::fmt;

/// Error raised by field access, path evaluation or value coercion on an
/// abstract message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MessageError {
    /// No field matched the given path/label.
    FieldNotFound {
        /// The path or label that failed to resolve.
        path: String,
        /// The message the lookup ran against.
        message: String,
    },
    /// A path segment addressed a primitive field as if it were structured.
    NotStructured(String),
    /// A path segment addressed a structured field as if it were primitive.
    NotPrimitive(String),
    /// A value had the wrong type for the requested coercion.
    TypeMismatch {
        /// The coercion that was requested.
        expected: &'static str,
        /// The actual type of the value.
        found: &'static str,
    },
    /// A path expression could not be parsed.
    PathSyntax(String),
    /// A schema constraint was violated when instantiating or validating.
    Schema(String),
}

impl fmt::Display for MessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MessageError::FieldNotFound { path, message } => {
                write!(f, "field {path:?} not found in message {message:?}")
            }
            MessageError::NotStructured(label) => {
                write!(f, "field {label:?} is primitive but was addressed as structured")
            }
            MessageError::NotPrimitive(label) => {
                write!(f, "field {label:?} is structured but was addressed as primitive")
            }
            MessageError::TypeMismatch { expected, found } => {
                write!(f, "value type mismatch: expected {expected}, found {found}")
            }
            MessageError::PathSyntax(expr) => write!(f, "invalid field path {expr:?}"),
            MessageError::Schema(msg) => write!(f, "schema violation: {msg}"),
        }
    }
}

impl std::error::Error for MessageError {}

/// Convenient result alias for message operations.
pub type Result<T> = std::result::Result<T, MessageError>;
