//! The abstract message (§III-A): "the information derived from a network
//! message ... described in a protocol independent manner".

use crate::error::{MessageError, Result};
use crate::field::{Field, PrimitiveField, StructuredField};
use crate::label::Label;
use crate::path::{FieldPath, SegmentKind};
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A protocol-independent message: a named, ordered set of fields, plus
/// the set of labels the protocol considers *mandatory* (used by the
/// semantic-equivalence operator ⊨ of §III-C).
///
/// ```
/// use starlink_message::{AbstractMessage, Field, Value};
///
/// let mut msg = AbstractMessage::new("SLP", "SLPSrvRequest");
/// msg.push_field(Field::primitive("XID", 42u16));
/// msg.push_field(Field::primitive("SRVType", "service:printer"));
/// assert_eq!(msg.get(&"SRVType".into())?, &Value::Str("service:printer".into()));
/// # Ok::<(), starlink_message::MessageError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractMessage {
    protocol: Label,
    name: Label,
    fields: Vec<Field>,
    mandatory: BTreeSet<Label>,
}

impl AbstractMessage {
    /// Creates an empty message of the given protocol and message type.
    pub fn new(protocol: impl Into<Label>, name: impl Into<Label>) -> Self {
        AbstractMessage {
            protocol: protocol.into(),
            name: name.into(),
            fields: Vec::new(),
            mandatory: BTreeSet::new(),
        }
    }

    /// The protocol this message belongs to (e.g. `SLP`).
    pub fn protocol(&self) -> &str {
        &self.protocol
    }

    /// The message type label (e.g. `SLPSrvRequest`), matched against
    /// automaton transition labels by the engine (§IV-B).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the message (used when a parser refines a generic header
    /// match into a concrete message type via its `<Rule>`).
    pub fn set_name(&mut self, name: impl Into<Label>) {
        self.name = name.into();
    }

    /// The top-level fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Mutable access to the top-level fields.
    pub fn fields_mut(&mut self) -> &mut Vec<Field> {
        &mut self.fields
    }

    /// Labels of fields that are mandatory for this message type.
    pub fn mandatory_labels(&self) -> impl Iterator<Item = &str> {
        self.mandatory.iter().map(Label::as_str)
    }

    /// Marks a field label as mandatory.
    pub fn mark_mandatory(&mut self, label: impl Into<Label>) -> &mut Self {
        self.mandatory.insert(label.into());
        self
    }

    /// True when `label` is marked mandatory.
    pub fn is_mandatory(&self, label: &str) -> bool {
        self.mandatory.contains(label)
    }

    /// Appends a top-level field.
    pub fn push_field(&mut self, field: Field) -> &mut Self {
        self.fields.push(field);
        self
    }

    /// Looks up a top-level field by label.
    pub fn field(&self, label: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.label() == label)
    }

    /// Looks up a top-level field by label, mutably.
    pub fn field_mut(&mut self, label: &str) -> Option<&mut Field> {
        self.fields.iter_mut().find(|f| f.label() == label)
    }

    /// True when a field with the given label exists at the top level.
    pub fn has_field(&self, label: &str) -> bool {
        self.field(label).is_some()
    }

    fn not_found(&self, path: &FieldPath) -> MessageError {
        MessageError::FieldNotFound {
            path: path.to_string(),
            message: self.name.as_str().to_owned(),
        }
    }

    /// Resolves `path` to a field reference.
    ///
    /// # Errors
    ///
    /// Fails when a segment does not resolve, or a shape constraint
    /// (`primitiveField`/`structuredField`) is violated.
    pub fn resolve(&self, path: &FieldPath) -> Result<&Field> {
        let mut fields: &[Field] = &self.fields;
        let mut current: Option<&Field> = None;
        for segment in path.segments() {
            let field = fields
                .iter()
                .find(|f| f.label() == segment.label)
                .ok_or_else(|| self.not_found(path))?;
            match segment.kind {
                SegmentKind::Primitive if !field.is_primitive() => {
                    return Err(MessageError::NotPrimitive(segment.label.as_str().to_owned()));
                }
                SegmentKind::Structured if field.is_primitive() => {
                    return Err(MessageError::NotStructured(segment.label.as_str().to_owned()));
                }
                _ => {}
            }
            current = Some(field);
            fields = match field {
                Field::Structured(s) => s.fields(),
                Field::Primitive(_) => &[],
            };
        }
        current.ok_or_else(|| self.not_found(path))
    }

    /// Resolves `path` to a mutable field reference.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AbstractMessage::resolve`].
    pub fn resolve_mut(&mut self, path: &FieldPath) -> Result<&mut Field> {
        let not_found = self.not_found(path);
        let mut fields: &mut Vec<Field> = &mut self.fields;
        let segments = path.segments();
        for (i, segment) in segments.iter().enumerate() {
            let index = fields
                .iter()
                .position(|f| f.label() == segment.label)
                .ok_or_else(|| not_found.clone())?;
            let field = &mut fields[index];
            match segment.kind {
                SegmentKind::Primitive if !field.is_primitive() => {
                    return Err(MessageError::NotPrimitive(segment.label.as_str().to_owned()));
                }
                SegmentKind::Structured if field.is_primitive() => {
                    return Err(MessageError::NotStructured(segment.label.as_str().to_owned()));
                }
                _ => {}
            }
            if i == segments.len() - 1 {
                return Ok(&mut fields[index]);
            }
            fields = match &mut fields[index] {
                Field::Structured(s) => s.fields_mut(),
                Field::Primitive(_) => {
                    return Err(MessageError::NotStructured(segment.label.as_str().to_owned()))
                }
            };
        }
        Err(not_found)
    }

    /// Reads the value addressed by `path` (§III-D assignment source).
    ///
    /// # Errors
    ///
    /// Fails when the path does not resolve to a primitive field.
    pub fn get(&self, path: &FieldPath) -> Result<&Value> {
        self.resolve(path)?.value()
    }

    /// Writes the value addressed by `path` (§III-D assignment target).
    ///
    /// # Errors
    ///
    /// Fails when the path does not resolve to a primitive field.
    pub fn set(&mut self, path: &FieldPath, value: Value) -> Result<()> {
        self.resolve_mut(path)?.as_primitive_mut()?.set_value(value);
        Ok(())
    }

    /// Writes the value addressed by `path`, creating missing path
    /// components (structured interior segments, primitive leaf) on the
    /// way. Used when composing messages field-by-field.
    ///
    /// # Errors
    ///
    /// Fails when an *existing* field on the path has the wrong shape.
    pub fn set_or_insert(&mut self, path: &FieldPath, value: Value) -> Result<()> {
        let segments = path.segments();
        let mut fields: &mut Vec<Field> = &mut self.fields;
        for (i, segment) in segments.iter().enumerate() {
            let last = i == segments.len() - 1;
            let index = fields.iter().position(|f| f.label() == segment.label);
            let index = match index {
                Some(index) => index,
                None => {
                    let field = if last {
                        Field::primitive(segment.label.clone(), value.clone())
                    } else {
                        Field::Structured(StructuredField::new(segment.label.clone()))
                    };
                    fields.push(field);
                    fields.len() - 1
                }
            };
            if last {
                fields[index].as_primitive_mut()?.set_value(value);
                return Ok(());
            }
            fields = match &mut fields[index] {
                Field::Structured(s) => s.fields_mut(),
                Field::Primitive(_) => {
                    return Err(MessageError::NotStructured(segment.label.as_str().to_owned()))
                }
            };
        }
        unreachable!("paths always have at least one segment")
    }

    /// Iterates over every primitive field in the message, depth-first,
    /// yielding `(path, field)` pairs.
    pub fn primitive_fields(&self) -> Vec<(FieldPath, &PrimitiveField)> {
        fn walk<'m>(
            prefix: Option<&FieldPath>,
            fields: &'m [Field],
            out: &mut Vec<(FieldPath, &'m PrimitiveField)>,
        ) {
            for field in fields {
                let path = match prefix {
                    Some(p) => p.join(field.label()),
                    None => FieldPath::field(field.label()),
                };
                match field {
                    Field::Primitive(p) => out.push((path, p)),
                    Field::Structured(s) => walk(Some(&path), s.fields(), out),
                }
            }
        }
        let mut out = Vec::new();
        walk(None, &self.fields, &mut out);
        out
    }

    /// Mandatory fields of this message that are missing or still empty —
    /// the `Mfields(n)` check backing the ⊨ operator.
    pub fn unfilled_mandatory(&self) -> Vec<&str> {
        self.mandatory
            .iter()
            .filter(|label| {
                match self.field(label) {
                    Some(field) => match field.value() {
                        Ok(value) => value.is_empty(),
                        Err(_) => false, // structured: treated as filled if present
                    },
                    None => true,
                }
            })
            .map(Label::as_str)
            .collect()
    }
}

impl fmt::Display for AbstractMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}::{}", self.protocol, self.name)?;
        fn write_fields(f: &mut fmt::Formatter<'_>, fields: &[Field], depth: usize) -> fmt::Result {
            for field in fields {
                for _ in 0..depth {
                    write!(f, "  ")?;
                }
                match field {
                    Field::Primitive(p) => {
                        writeln!(f, "{}: {} = {}", p.label(), p.type_name(), p.value())?;
                    }
                    Field::Structured(s) => {
                        writeln!(f, "{}:", s.label())?;
                        write_fields(f, s.fields(), depth + 1)?;
                    }
                }
            }
            Ok(())
        }
        write_fields(f, &self.fields, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AbstractMessage {
        let mut msg = AbstractMessage::new("SLP", "SLPSrvRequest");
        msg.push_field(Field::primitive("XID", 7u16));
        msg.push_field(Field::primitive("SRVType", "service:printer"));
        msg.push_field(Field::structured(
            "URL",
            vec![Field::primitive("address", "10.0.0.1"), Field::primitive("port", 427u16)],
        ));
        msg.mark_mandatory("SRVType");
        msg
    }

    #[test]
    fn get_top_level_and_nested() {
        let msg = sample();
        assert_eq!(msg.get(&"XID".into()).unwrap().as_u64().unwrap(), 7);
        assert_eq!(msg.get(&"URL.port".into()).unwrap().as_u64().unwrap(), 427);
    }

    #[test]
    fn get_via_xpath() {
        let msg = sample();
        let path = FieldPath::parse_xpath(
            "/field/structuredField[label='URL']/field/primitiveField[label='address']/value",
        )
        .unwrap();
        assert_eq!(msg.get(&path).unwrap().as_str().unwrap(), "10.0.0.1");
    }

    #[test]
    fn xpath_shape_constraints_enforced() {
        let msg = sample();
        let wrong = FieldPath::parse_xpath("/field/structuredField[label='XID']/value");
        assert!(msg.get(&wrong.unwrap()).is_err());
    }

    #[test]
    fn set_replaces_value() {
        let mut msg = sample();
        msg.set(&"XID".into(), Value::Unsigned(99)).unwrap();
        assert_eq!(msg.get(&"XID".into()).unwrap().as_u64().unwrap(), 99);
    }

    #[test]
    fn set_missing_field_fails() {
        let mut msg = sample();
        assert!(msg.set(&"Nope".into(), Value::Unsigned(1)).is_err());
    }

    #[test]
    fn set_or_insert_creates_interior_structure() {
        let mut msg = AbstractMessage::new("P", "M");
        msg.set_or_insert(&"A.B.C".into(), Value::Str("x".into())).unwrap();
        assert_eq!(msg.get(&"A.B.C".into()).unwrap().as_str().unwrap(), "x");
        // Existing structure is reused, not duplicated.
        msg.set_or_insert(&"A.B.D".into(), Value::Unsigned(1)).unwrap();
        let a = msg.field("A").unwrap().as_structured().unwrap();
        assert_eq!(a.fields().len(), 1);
    }

    #[test]
    fn set_or_insert_rejects_shape_conflict() {
        let mut msg = sample();
        // XID is primitive; cannot traverse through it.
        assert!(msg.set_or_insert(&"XID.sub".into(), Value::Unsigned(1)).is_err());
    }

    #[test]
    fn primitive_fields_walks_depth_first() {
        let msg = sample();
        let flat: Vec<String> = msg.primitive_fields().iter().map(|(p, _)| p.to_string()).collect();
        assert_eq!(flat, vec!["XID", "SRVType", "URL.address", "URL.port"]);
    }

    #[test]
    fn unfilled_mandatory_reports_empty_and_missing() {
        let mut msg = AbstractMessage::new("SLP", "SLPSrvReply");
        msg.mark_mandatory("URL");
        msg.mark_mandatory("XID");
        msg.push_field(Field::primitive("URL", ""));
        let unfilled = msg.unfilled_mandatory();
        assert!(unfilled.contains(&"URL")); // present but empty
        assert!(unfilled.contains(&"XID")); // missing entirely
        msg.set(&"URL".into(), Value::Str("service:printer://x".into())).unwrap();
        msg.push_field(Field::primitive("XID", 5u16));
        assert!(msg.unfilled_mandatory().is_empty());
    }

    #[test]
    fn display_renders_tree() {
        let rendered = sample().to_string();
        assert!(rendered.contains("SLP::SLPSrvRequest"));
        assert!(rendered.contains("    port: Integer = 427"));
    }

    #[test]
    fn field_not_found_error_names_message() {
        let msg = sample();
        let err = msg.get(&"Bogus".into()).unwrap_err();
        assert!(err.to_string().contains("SLPSrvRequest"));
    }
}
