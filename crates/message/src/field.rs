//! Primitive and structured fields (§III-A).

use crate::error::{MessageError, Result};
use crate::label::Label;
use crate::value::Value;

/// A primitive field: "a label naming the field, a type describing the type
/// of the data content, a length defining the length in bits of the field,
/// and the value" (§III-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimitiveField {
    label: Label,
    type_name: Label,
    length_bits: Option<u32>,
    value: Value,
}

impl PrimitiveField {
    /// Creates a primitive field with no declared bit length.
    pub fn new(label: impl Into<Label>, type_name: impl Into<Label>, value: Value) -> Self {
        PrimitiveField {
            label: label.into(),
            type_name: type_name.into(),
            length_bits: None,
            value,
        }
    }

    /// Creates a primitive field with a declared bit length.
    pub fn with_length(
        label: impl Into<Label>,
        type_name: impl Into<Label>,
        length_bits: u32,
        value: Value,
    ) -> Self {
        PrimitiveField {
            label: label.into(),
            type_name: type_name.into(),
            length_bits: Some(length_bits),
            value,
        }
    }

    /// The field label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The declared MDL type name (e.g. `Integer`, `String`, `FQDN`).
    pub fn type_name(&self) -> &str {
        &self.type_name
    }

    /// The declared length in bits, when fixed.
    pub fn length_bits(&self) -> Option<u32> {
        self.length_bits
    }

    /// The field content.
    pub fn value(&self) -> &Value {
        &self.value
    }

    /// Mutable access to the field content.
    pub fn value_mut(&mut self) -> &mut Value {
        &mut self.value
    }

    /// Replaces the field content.
    pub fn set_value(&mut self, value: Value) {
        self.value = value;
    }
}

/// A structured field "composed of multiple primitive fields" (§III-A) —
/// in practice of arbitrary sub-fields, e.g. a URL of protocol/address/
/// port/resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuredField {
    label: Label,
    fields: Vec<Field>,
}

impl StructuredField {
    /// Creates an empty structured field.
    pub fn new(label: impl Into<Label>) -> Self {
        StructuredField { label: label.into(), fields: Vec::new() }
    }

    /// Creates a structured field from parts.
    pub fn with_fields(label: impl Into<Label>, fields: Vec<Field>) -> Self {
        StructuredField { label: label.into(), fields }
    }

    /// The field label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The contained sub-fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Mutable access to the contained sub-fields.
    pub fn fields_mut(&mut self) -> &mut Vec<Field> {
        &mut self.fields
    }

    /// Looks up a direct sub-field by label.
    pub fn field(&self, label: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.label() == label)
    }

    /// Looks up a direct sub-field by label, mutably.
    pub fn field_mut(&mut self, label: &str) -> Option<&mut Field> {
        self.fields.iter_mut().find(|f| f.label() == label)
    }

    /// Appends a sub-field.
    pub fn push(&mut self, field: Field) -> &mut Self {
        self.fields.push(field);
        self
    }
}

/// Either a [`PrimitiveField`] or a [`StructuredField`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Field {
    /// A leaf field carrying a [`Value`].
    Primitive(PrimitiveField),
    /// A group of sub-fields.
    Structured(StructuredField),
}

impl Field {
    /// Shorthand for a primitive field with inferred type name.
    ///
    /// The type name is derived from the value variant; use
    /// [`PrimitiveField::new`] to control it explicitly.
    pub fn primitive(label: impl Into<Label>, value: impl Into<Value>) -> Self {
        let value = value.into();
        let type_name = match &value {
            Value::Unsigned(_) | Value::Signed(_) => "Integer",
            Value::Str(_) => "String",
            Value::Bytes(_) => "Bytes",
            Value::Bool(_) => "Bool",
            Value::List(_) => "List",
        };
        Field::Primitive(PrimitiveField::new(label, type_name, value))
    }

    /// Shorthand for a structured field.
    pub fn structured(label: impl Into<Label>, fields: Vec<Field>) -> Self {
        Field::Structured(StructuredField::with_fields(label, fields))
    }

    /// The field label.
    pub fn label(&self) -> &str {
        match self {
            Field::Primitive(p) => p.label(),
            Field::Structured(s) => s.label(),
        }
    }

    /// True for primitive fields.
    pub fn is_primitive(&self) -> bool {
        matches!(self, Field::Primitive(_))
    }

    /// Borrows the primitive form.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::NotPrimitive`] for structured fields.
    pub fn as_primitive(&self) -> Result<&PrimitiveField> {
        match self {
            Field::Primitive(p) => Ok(p),
            Field::Structured(s) => Err(MessageError::NotPrimitive(s.label().to_owned())),
        }
    }

    /// Borrows the primitive form mutably.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::NotPrimitive`] for structured fields.
    pub fn as_primitive_mut(&mut self) -> Result<&mut PrimitiveField> {
        match self {
            Field::Primitive(p) => Ok(p),
            Field::Structured(s) => Err(MessageError::NotPrimitive(s.label().to_owned())),
        }
    }

    /// Borrows the structured form.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::NotStructured`] for primitive fields.
    pub fn as_structured(&self) -> Result<&StructuredField> {
        match self {
            Field::Structured(s) => Ok(s),
            Field::Primitive(p) => Err(MessageError::NotStructured(p.label().to_owned())),
        }
    }

    /// Borrows the structured form mutably.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::NotStructured`] for primitive fields.
    pub fn as_structured_mut(&mut self) -> Result<&mut StructuredField> {
        match self {
            Field::Structured(s) => Ok(s),
            Field::Primitive(p) => Err(MessageError::NotStructured(p.label().to_owned())),
        }
    }

    /// The value of a primitive field.
    ///
    /// # Errors
    ///
    /// Returns [`MessageError::NotPrimitive`] for structured fields.
    pub fn value(&self) -> Result<&Value> {
        self.as_primitive().map(PrimitiveField::value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url_field() -> Field {
        Field::structured(
            "URL",
            vec![
                Field::primitive("protocol", "http"),
                Field::primitive("address", "10.0.0.1"),
                Field::primitive("port", 8080u16),
                Field::primitive("resource", "/desc.xml"),
            ],
        )
    }

    #[test]
    fn primitive_shorthand_infers_type_names() {
        let f = Field::primitive("XID", 77u16);
        assert_eq!(f.as_primitive().unwrap().type_name(), "Integer");
        let f = Field::primitive("ST", "urn:x");
        assert_eq!(f.as_primitive().unwrap().type_name(), "String");
    }

    #[test]
    fn structured_lookup() {
        let url = url_field();
        let s = url.as_structured().unwrap();
        assert_eq!(s.field("port").unwrap().value().unwrap().as_u64().unwrap(), 8080);
        assert!(s.field("missing").is_none());
    }

    #[test]
    fn wrong_shape_errors() {
        let url = url_field();
        assert!(url.as_primitive().is_err());
        let prim = Field::primitive("x", 1u8);
        assert!(prim.as_structured().is_err());
    }

    #[test]
    fn set_value_replaces_content() {
        let mut f = Field::primitive("XID", 1u8);
        f.as_primitive_mut().unwrap().set_value(Value::Unsigned(9));
        assert_eq!(f.value().unwrap().as_u64().unwrap(), 9);
    }

    #[test]
    fn with_length_records_bits() {
        let f = PrimitiveField::with_length("XID", "Integer", 16, Value::Unsigned(0));
        assert_eq!(f.length_bits(), Some(16));
    }
}
