//! Property tests on abstract messages: path algebra, set/get coherence,
//! and the XML image round-trip.

use proptest::prelude::*;
use starlink_message::{xml, AbstractMessage, Field, FieldPath, Value};

fn label_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_-]{0,10}"
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u64>().prop_map(Value::Unsigned),
        any::<i64>().prop_map(Value::Signed),
        "[ -~]{0,16}".prop_map(Value::Str),
        prop::collection::vec(any::<u8>(), 0..12).prop_map(Value::Bytes),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// A message with unique top-level labels (duplicate labels are legal in
/// the wire model but path lookup addresses the first, so uniqueness
/// keeps the oracle simple).
fn message_strategy() -> impl Strategy<Value = AbstractMessage> {
    prop::collection::btree_map(label_strategy(), value_strategy(), 1..8).prop_map(|fields| {
        let mut msg = AbstractMessage::new("Prop", "PropMsg");
        for (label, value) in fields {
            msg.push_field(Field::primitive(label, value));
        }
        msg
    })
}

proptest! {
    #[test]
    fn set_then_get_returns_value(msg in message_strategy(), value in value_strategy()) {
        let mut msg = msg;
        let label = msg.fields()[0].label().to_owned();
        let path = FieldPath::field(&label);
        msg.set(&path, value.clone()).unwrap();
        prop_assert_eq!(msg.get(&path).unwrap(), &value);
    }

    #[test]
    fn xml_image_roundtrip(msg in message_strategy()) {
        let rendered = xml::message_to_xml(&msg);
        let back = xml::message_from_xml(&rendered).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn xpath_form_of_every_field_resolves(msg in message_strategy()) {
        for (path, prim) in msg.primitive_fields() {
            // The XPath rendering of a discovered path must resolve to
            // the same value.
            let xpath = FieldPath::parse(&path.to_xpath()).unwrap();
            prop_assert_eq!(msg.get(&xpath).unwrap(), prim.value());
        }
    }

    #[test]
    fn dotted_path_roundtrip(labels in prop::collection::vec(label_strategy(), 1..4)) {
        let expr = labels.join(".");
        let path = FieldPath::parse_dotted(&expr).unwrap();
        prop_assert_eq!(path.to_string(), expr);
        prop_assert_eq!(path.len(), labels.len());
    }

    #[test]
    fn set_or_insert_creates_then_get_finds(
        labels in prop::collection::vec(label_strategy(), 1..4),
        value in value_strategy(),
    ) {
        // Nested labels must be distinct from each other to avoid
        // shape conflicts in this oracle.
        let mut unique = labels.clone();
        unique.dedup();
        prop_assume!(unique.len() == labels.len());
        let mut msg = AbstractMessage::new("P", "M");
        let path = FieldPath::parse_dotted(&labels.join(".")).unwrap();
        msg.set_or_insert(&path, value.clone()).unwrap();
        prop_assert_eq!(msg.get(&path).unwrap(), &value);
    }

    #[test]
    fn to_text_is_total(value in value_strategy()) {
        let _ = value.to_text();
        let _ = value.to_string();
    }
}
