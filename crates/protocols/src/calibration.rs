//! Latency calibration for the legacy protocol endpoints.
//!
//! The paper's Fig. 12(a) medians are dominated by legacy-stack behaviour
//! (OpenSLP ≈ 6022 ms, Apple Bonjour ≈ 710 ms, CyberLink UPnP ≈ 1014 ms).
//! We model each stack's service-side response delay and client-side
//! processing overhead as uniform ranges whose sums land on the published
//! native figures; the **bridge** numbers of Fig. 12(b) are then *not*
//! calibrated — they emerge from the engine's actual behaviour, bounded
//! by the target protocol's response delay exactly as §VI describes.
//!
//! Derivation (all ms, native = service delay + client overhead + links):
//!
//! | protocol | service delay | client overhead | native range | paper |
//! |----------|---------------|-----------------|--------------|-------|
//! | SLP      | 5981–6051     | ~0 (receipt)    | 5982–6053    | 5982/6022/6053 |
//! | Bonjour  | 252–286       | 430–448         | 683–735      | 687/710/726 |
//! | UPnP     | 225–248 (SSDP) + 86–92 (HTTP) + 6–10 think | 622–726 | 940–1078 | 945/1014/1079 |

use starlink_net::{Context, SimDuration};

/// A uniform virtual-delay range in milliseconds, sampled with
/// microsecond granularity from the simulation's seeded RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayRange {
    /// Lower bound in milliseconds (inclusive).
    pub min_ms: u64,
    /// Upper bound in milliseconds (inclusive).
    pub max_ms: u64,
}

impl DelayRange {
    /// Creates a range.
    pub const fn new(min_ms: u64, max_ms: u64) -> Self {
        DelayRange { min_ms, max_ms }
    }

    /// Samples a delay from the simulation's RNG stream.
    pub fn sample(&self, ctx: &mut Context<'_>) -> SimDuration {
        SimDuration::from_micros(ctx.rand_range(self.min_ms * 1_000, self.max_ms * 1_000))
    }

    /// The midpoint in milliseconds (the expected median of a uniform
    /// sample).
    pub fn midpoint_ms(&self) -> u64 {
        (self.min_ms + self.max_ms) / 2
    }
}

/// The full calibration set used by the legacy endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibration {
    /// OpenSLP's service-side response delay (multicast convergence wait):
    /// the source of the paper's ≈6 s SLP figures.
    pub slp_service_delay: DelayRange,
    /// mDNS responder delay before answering a PTR question.
    pub mdns_service_delay: DelayRange,
    /// Apple SDK client-side overhead (daemon IPC + callback dispatch)
    /// between the mDNS answer arriving and the application seeing it.
    pub bonjour_client_overhead: DelayRange,
    /// UPnP device delay before answering an M-SEARCH (within MX).
    pub ssdp_device_delay: DelayRange,
    /// UPnP device delay serving the description document over HTTP.
    pub http_device_delay: DelayRange,
    /// CyberLink client think-time between the SSDP response and the
    /// description GET.
    pub upnp_client_think: DelayRange,
    /// CyberLink client-side stack overhead before the application sees
    /// the discovered device.
    pub upnp_client_overhead: DelayRange,
    /// WS-Discovery target delay before answering a Probe: WSDAPI-style
    /// stacks spread their ProbeMatch inside the `APP_MAX_DELAY` window
    /// (≤ 500 ms) to avoid multicast storms. The paper predates WSD in
    /// the matrix, so this range is WSDAPI-derived, not Fig. 12-derived.
    pub wsd_service_delay: DelayRange,
    /// WSD client-side stack overhead between the ProbeMatch arriving
    /// and the application callback.
    pub wsd_client_overhead: DelayRange,
    /// How long a cached SLP `SrvRply` stays valid: SLP URL entries carry
    /// a lifetime (RFC 2608 caps it at 0xFFFF s; OpenSLP registers with
    /// 60 s by default), so a bridge may replay an answer for that long.
    pub slp_answer_ttl: DelayRange,
    /// How long a cached mDNS answer stays valid: the PTR records our
    /// responder model emits carry TTL = 120 s.
    pub mdns_answer_ttl: DelayRange,
    /// How long a cached WS-Discovery ProbeMatch stays valid: matches
    /// carry `MetadataVersion`, and WSDAPI stacks re-probe on the order
    /// of a minute.
    pub wsd_answer_ttl: DelayRange,
    /// How long a cached SSDP response stays valid: `CACHE-CONTROL:
    /// max-age=1800` is the UPnP-arch default.
    pub ssdp_answer_ttl: DelayRange,
}

impl Calibration {
    /// The paper-derived calibration (see module docs).
    pub const fn paper() -> Self {
        Calibration {
            slp_service_delay: DelayRange::new(5_981, 6_051),
            mdns_service_delay: DelayRange::new(252, 286),
            bonjour_client_overhead: DelayRange::new(430, 448),
            ssdp_device_delay: DelayRange::new(225, 248),
            http_device_delay: DelayRange::new(86, 92),
            upnp_client_think: DelayRange::new(6, 10),
            upnp_client_overhead: DelayRange::new(622, 726),
            wsd_service_delay: DelayRange::new(180, 420),
            wsd_client_overhead: DelayRange::new(55, 75),
            slp_answer_ttl: DelayRange::new(60_000, 60_000),
            mdns_answer_ttl: DelayRange::new(120_000, 120_000),
            wsd_answer_ttl: DelayRange::new(60_000, 60_000),
            ssdp_answer_ttl: DelayRange::new(1_800_000, 1_800_000),
        }
    }

    /// A zero-delay calibration: every legacy-stack delay is 0, so a
    /// bridged exchange costs only the framework's own compute. This is
    /// what throughput saturation benches want — with virtual waits
    /// removed, sustained msgs/sec measures the engine, not the model
    /// of somebody's legacy stack.
    pub const fn instant() -> Self {
        Calibration {
            slp_service_delay: DelayRange::new(0, 0),
            mdns_service_delay: DelayRange::new(0, 0),
            bonjour_client_overhead: DelayRange::new(0, 0),
            ssdp_device_delay: DelayRange::new(0, 0),
            http_device_delay: DelayRange::new(0, 0),
            upnp_client_think: DelayRange::new(0, 0),
            upnp_client_overhead: DelayRange::new(0, 0),
            wsd_service_delay: DelayRange::new(0, 0),
            wsd_client_overhead: DelayRange::new(0, 0),
            // Answer TTLs stay realistic even under instant delays: the
            // flood benches want the cache hot, not disabled.
            slp_answer_ttl: DelayRange::new(60_000, 60_000),
            mdns_answer_ttl: DelayRange::new(60_000, 60_000),
            wsd_answer_ttl: DelayRange::new(60_000, 60_000),
            ssdp_answer_ttl: DelayRange::new(60_000, 60_000),
        }
    }

    /// A fast calibration for unit tests (every delay 1–2 ms) so test
    /// suites do not simulate six virtual seconds per case.
    pub const fn fast() -> Self {
        Calibration {
            slp_service_delay: DelayRange::new(4, 6),
            mdns_service_delay: DelayRange::new(2, 3),
            bonjour_client_overhead: DelayRange::new(1, 2),
            ssdp_device_delay: DelayRange::new(2, 3),
            http_device_delay: DelayRange::new(1, 2),
            upnp_client_think: DelayRange::new(1, 1),
            upnp_client_overhead: DelayRange::new(1, 2),
            wsd_service_delay: DelayRange::new(2, 3),
            wsd_client_overhead: DelayRange::new(1, 2),
            // Short TTLs so expiry paths are reachable inside a unit
            // test's simulated milliseconds.
            slp_answer_ttl: DelayRange::new(50, 50),
            mdns_answer_ttl: DelayRange::new(50, 50),
            wsd_answer_ttl: DelayRange::new(50, 50),
            ssdp_answer_ttl: DelayRange::new(50, 50),
        }
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_sums_to_published_medians() {
        let cal = Calibration::paper();
        // Native SLP median ≈ 6022 ms (paper Fig. 12(a)).
        let slp = cal.slp_service_delay.midpoint_ms();
        assert!((6_000..=6_030).contains(&slp), "slp median {slp}");
        // Native Bonjour median ≈ 710 ms.
        let bonjour =
            cal.mdns_service_delay.midpoint_ms() + cal.bonjour_client_overhead.midpoint_ms();
        assert!((695..=725).contains(&bonjour), "bonjour median {bonjour}");
        // Native UPnP median ≈ 1014 ms.
        let upnp = cal.ssdp_device_delay.midpoint_ms()
            + cal.http_device_delay.midpoint_ms()
            + cal.upnp_client_think.midpoint_ms()
            + cal.upnp_client_overhead.midpoint_ms();
        assert!((990..=1_040).contains(&upnp), "upnp median {upnp}");
    }

    #[test]
    fn bridge_bounds_follow_target_protocol() {
        // §VI: "the cost of translation is bounded by the response of the
        // legacy protocols". Bridging *to* UPnP must stay near the SSDP +
        // HTTP delays (paper case 1: 319–343 ms).
        let cal = Calibration::paper();
        let to_upnp_min = cal.ssdp_device_delay.min_ms + cal.http_device_delay.min_ms;
        let to_upnp_max = cal.ssdp_device_delay.max_ms + cal.http_device_delay.max_ms;
        assert!(to_upnp_min >= 300 && to_upnp_max <= 350, "{to_upnp_min}..{to_upnp_max}");
        // Bridging *to* Bonjour near the mDNS delay (paper case 2: 255–287 ms).
        assert!(cal.mdns_service_delay.min_ms >= 245 && cal.mdns_service_delay.max_ms <= 295);
    }
}
