//! Byte-level helpers shared by the native binary codecs (SLP, DNS).

use crate::WireError;

/// Cursor over a byte slice with big-endian integer reads.
#[derive(Debug, Clone)]
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.data.len() {
            return Err(WireError(format!(
                "truncated message: needed {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn u24(&mut self) -> Result<u32, WireError> {
        let b = self.take(3)?;
        Ok(u32::from_be_bytes([0, b[0], b[1], b[2]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// A 16-bit length followed by that many bytes, as UTF-8 text.
    pub(crate) fn lp_string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        Ok(String::from_utf8_lossy(bytes).into_owned())
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<Vec<u8>, WireError> {
        Ok(self.take(n)?.to_vec())
    }

    #[cfg(test)]
    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }
}

/// Big-endian writer matching [`Cursor`].
#[derive(Debug, Clone, Default)]
pub(crate) struct Writer {
    out: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn u8(&mut self, v: u8) -> &mut Self {
        self.out.push(v);
        self
    }

    pub(crate) fn u16(&mut self, v: u16) -> &mut Self {
        self.out.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub(crate) fn u24(&mut self, v: u32) -> &mut Self {
        self.out.extend_from_slice(&v.to_be_bytes()[1..]);
        self
    }

    pub(crate) fn u32(&mut self, v: u32) -> &mut Self {
        self.out.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub(crate) fn lp_string(&mut self, s: &str) -> &mut Self {
        self.u16(s.len() as u16);
        self.out.extend_from_slice(s.as_bytes());
        self
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.out.extend_from_slice(b);
        self
    }

    pub(crate) fn patch_u24(&mut self, at: usize, v: u32) {
        let be = v.to_be_bytes();
        self.out[at..at + 3].copy_from_slice(&be[1..]);
    }

    pub(crate) fn len(&self) -> usize {
        self.out.len()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.out
    }
}

/// Writes a DNS name as length-prefixed labels (RFC 1035 §3.1).
pub(crate) fn write_dns_name(writer: &mut Writer, name: &str) -> Result<(), WireError> {
    if !name.is_empty() {
        for label in name.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(WireError(format!("bad DNS label {label:?}")));
            }
            writer.u8(label.len() as u8);
            writer.bytes(label.as_bytes());
        }
    }
    writer.u8(0);
    Ok(())
}

/// Reads a DNS name (no compression pointers — the substrates never emit
/// them).
pub(crate) fn read_dns_name(cursor: &mut Cursor<'_>) -> Result<String, WireError> {
    let mut labels = Vec::new();
    loop {
        let len = cursor.u8()?;
        if len == 0 {
            break;
        }
        if len & 0xC0 != 0 {
            return Err(WireError("DNS compression pointers unsupported".into()));
        }
        let bytes = cursor.bytes(len as usize)?;
        labels.push(String::from_utf8_lossy(&bytes).into_owned());
    }
    Ok(labels.join("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_reads_integers() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A];
        let mut c = Cursor::new(&data);
        assert_eq!(c.u8().unwrap(), 1);
        assert_eq!(c.u16().unwrap(), 0x0203);
        assert_eq!(c.u24().unwrap(), 0x040506);
        assert_eq!(c.u32().unwrap(), 0x0708090A);
        assert_eq!(c.remaining(), 0);
        assert!(c.u8().is_err());
    }

    #[test]
    fn lp_string_roundtrip() {
        let mut w = Writer::new();
        w.lp_string("service:printer");
        let bytes = w.into_bytes();
        let mut c = Cursor::new(&bytes);
        assert_eq!(c.lp_string().unwrap(), "service:printer");
    }

    #[test]
    fn patch_u24_overwrites() {
        let mut w = Writer::new();
        w.u24(0);
        w.u16(0xFFFF);
        w.patch_u24(0, 5);
        assert_eq!(w.into_bytes(), vec![0, 0, 5, 0xFF, 0xFF]);
    }

    #[test]
    fn dns_name_roundtrip() {
        let mut w = Writer::new();
        write_dns_name(&mut w, "_printer._tcp.local").unwrap();
        let bytes = w.into_bytes();
        let mut c = Cursor::new(&bytes);
        assert_eq!(read_dns_name(&mut c).unwrap(), "_printer._tcp.local");
    }

    #[test]
    fn dns_root_name() {
        let mut w = Writer::new();
        write_dns_name(&mut w, "").unwrap();
        assert_eq!(w.into_bytes(), vec![0]);
    }

    #[test]
    fn dns_name_rejects_oversized_label() {
        let mut w = Writer::new();
        let long = "a".repeat(64);
        assert!(write_dns_name(&mut w, &long).is_err());
    }
}
