//! SSDP (Simple Service Discovery Protocol, the discovery layer of
//! UPnP): native wire codec and the Starlink models of Figs. 2 and 11.
//! The legacy endpoints live in [`crate::upnp`] since UPnP discovery
//! spans SSDP + HTTP.

mod models;
mod wire;

pub(crate) use wire::split_head;

pub use models::{client_automaton, color, mdl_xml, service_automaton};
pub use wire::{decode, encode, MSearch, SsdpMessage, SsdpResponse, SSDP_GROUP, SSDP_PORT};
