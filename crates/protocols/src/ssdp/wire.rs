//! Native SSDP wire codec (UPnP discovery, text over multicast UDP).

use crate::WireError;
use std::collections::BTreeMap;

/// The SSDP well-known port.
pub const SSDP_PORT: u16 = 1900;
/// The SSDP multicast group (Fig. 2).
pub const SSDP_GROUP: &str = "239.255.255.250";

/// A parsed SSDP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdpMessage {
    /// An M-SEARCH discovery request.
    MSearch(MSearch),
    /// A 200 OK discovery response.
    Response(SsdpResponse),
}

/// An SSDP M-SEARCH request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MSearch {
    /// Search target, e.g. `urn:schemas-upnp-org:service:printer:1`.
    pub st: String,
    /// Maximum response delay in seconds.
    pub mx: u32,
}

impl MSearch {
    /// Creates an M-SEARCH for `st` with the conventional MX of 2.
    pub fn new(st: impl Into<String>) -> Self {
        MSearch { st: st.into(), mx: 2 }
    }
}

/// An SSDP discovery response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsdpResponse {
    /// Search target echoed from the request.
    pub st: String,
    /// Unique service name.
    pub usn: String,
    /// URL of the device description document.
    pub location: String,
}

impl SsdpResponse {
    /// Creates a response.
    pub fn new(st: impl Into<String>, usn: impl Into<String>, location: impl Into<String>) -> Self {
        SsdpResponse { st: st.into(), usn: usn.into(), location: location.into() }
    }
}

/// Encodes a message to its wire text.
pub fn encode(message: &SsdpMessage) -> Vec<u8> {
    match message {
        SsdpMessage::MSearch(m) => format!(
            "M-SEARCH * HTTP/1.1\r\nHOST: {SSDP_GROUP}:{SSDP_PORT}\r\nMAN: \"ssdp:discover\"\r\nMX: {}\r\nST: {}\r\n\r\n",
            m.mx, m.st
        )
        .into_bytes(),
        SsdpMessage::Response(r) => format!(
            "HTTP/1.1 200 OK\r\nCACHE-CONTROL: max-age=1800\r\nEXT: \r\nLOCATION: {}\r\nST: {}\r\nUSN: {}\r\n\r\n",
            r.location, r.st, r.usn
        )
        .into_bytes(),
    }
}

/// Splits an HTTP-style text message into (start line, headers).
pub(crate) fn split_head(bytes: &[u8]) -> Result<(String, BTreeMap<String, String>), WireError> {
    let text = String::from_utf8_lossy(bytes);
    let mut lines = text.split("\r\n");
    let start = lines
        .next()
        .filter(|l| !l.is_empty())
        .ok_or_else(|| WireError("empty message".into()))?
        .to_owned();
    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError(format!("header line without colon: {line:?}")))?;
        headers.insert(name.trim().to_ascii_uppercase(), value.trim().to_owned());
    }
    Ok((start, headers))
}

/// Decodes wire text.
///
/// # Errors
///
/// Returns [`WireError`] for malformed start lines or missing mandatory
/// headers.
pub fn decode(bytes: &[u8]) -> Result<SsdpMessage, WireError> {
    let (start, headers) = split_head(bytes)?;
    if start.starts_with("M-SEARCH") {
        let st = headers
            .get("ST")
            .cloned()
            .ok_or_else(|| WireError("M-SEARCH without ST header".into()))?;
        let mx = headers.get("MX").and_then(|v| v.parse().ok()).unwrap_or(1);
        Ok(SsdpMessage::MSearch(MSearch { st, mx }))
    } else if start.starts_with("HTTP/1.1") {
        let st = headers.get("ST").cloned().unwrap_or_default();
        let usn = headers.get("USN").cloned().unwrap_or_default();
        let location = headers
            .get("LOCATION")
            .cloned()
            .ok_or_else(|| WireError("SSDP response without LOCATION header".into()))?;
        Ok(SsdpMessage::Response(SsdpResponse { st, usn, location }))
    } else {
        Err(WireError(format!("unknown SSDP start line {start:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msearch_roundtrip() {
        let m = MSearch::new("urn:schemas-upnp-org:service:printer:1");
        let wire = encode(&SsdpMessage::MSearch(m.clone()));
        assert_eq!(decode(&wire).unwrap(), SsdpMessage::MSearch(m));
    }

    #[test]
    fn response_roundtrip() {
        let r = SsdpResponse::new("urn:x", "uuid:1", "http://10.0.0.3:5000/desc.xml");
        let wire = encode(&SsdpMessage::Response(r.clone()));
        assert_eq!(decode(&wire).unwrap(), SsdpMessage::Response(r));
    }

    #[test]
    fn wire_text_has_crlf_framing() {
        let wire = encode(&SsdpMessage::MSearch(MSearch::new("urn:x")));
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("M-SEARCH * HTTP/1.1\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"NOTIFY * HTTP/1.1\r\n\r\n").is_err());
        assert!(decode(b"").is_err());
        assert!(decode(b"M-SEARCH * HTTP/1.1\r\n\r\n").is_err()); // no ST
    }
}
