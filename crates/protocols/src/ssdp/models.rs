//! Starlink models of SSDP: the Fig. 11 MDL and the Fig. 2 automaton.

use crate::ssdp::wire::{SSDP_GROUP, SSDP_PORT};
use starlink_automata::{Color, ColoredAutomaton, Mode, Transport};

/// The SSDP MDL document — Fig. 11 of the paper (text MDL: boundary
/// delimiters instead of bit widths).
pub fn mdl_xml() -> &'static str {
    include_str!("../../specs/ssdp.xml")
}

/// The SSDP colour of Fig. 2: UDP 1900, async, multicast 239.255.255.250.
pub fn color() -> Color {
    Color::new(Transport::Udp, SSDP_PORT, Mode::Async).multicast(SSDP_GROUP)
}

/// Fig. 2 exactly — client side (the bridge searches for UPnP devices):
/// send M-SEARCH, await the response.
pub fn client_automaton() -> ColoredAutomaton {
    ColoredAutomaton::builder("SSDP")
        .color(color())
        .state("s0")
        .state("s1")
        .state_accepting("s2")
        .send("s0", "SSDP_M-Search", "s1")
        .receive("s1", "SSDP_Resp", "s2")
        .build()
        .expect("static SSDP client automaton is valid")
}

/// Service side (the bridge answers legacy UPnP control points, cases 3
/// and 4): receive M-SEARCH, later send the response.
pub fn service_automaton() -> ColoredAutomaton {
    ColoredAutomaton::builder("SSDP")
        .color(color())
        .state("r0")
        .state("r1")
        .state_accepting("r2")
        .receive("r0", "SSDP_M-Search", "r1")
        .send("r1", "SSDP_Resp", "r2")
        .build()
        .expect("static SSDP service automaton is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssdp::wire::{self, MSearch, SsdpMessage, SsdpResponse};
    use starlink_mdl::{load_mdl, MdlCodec};

    fn codec() -> MdlCodec {
        MdlCodec::generate(load_mdl(mdl_xml()).unwrap()).unwrap()
    }

    #[test]
    fn mdl_parses_native_msearch() {
        let native = wire::encode(&SsdpMessage::MSearch(MSearch::new("urn:x:printer:1")));
        let msg = codec().parse(&native).unwrap();
        assert_eq!(msg.name(), "SSDP_M-Search");
        assert_eq!(msg.get(&"ST".into()).unwrap().as_str().unwrap(), "urn:x:printer:1");
        assert_eq!(msg.get(&"MX".into()).unwrap().as_u64().unwrap(), 2);
    }

    #[test]
    fn mdl_parses_native_response() {
        let native = wire::encode(&SsdpMessage::Response(SsdpResponse::new(
            "urn:x",
            "uuid:1",
            "http://10.0.0.3:5000/desc.xml",
        )));
        let msg = codec().parse(&native).unwrap();
        assert_eq!(msg.name(), "SSDP_Resp");
        assert_eq!(
            msg.get(&"LOCATION".into()).unwrap().as_str().unwrap(),
            "http://10.0.0.3:5000/desc.xml"
        );
    }

    #[test]
    fn mdl_roundtrip_preserves_native_decodability() {
        // Model-parsed then model-composed SSDP must still decode with
        // the native codec (field order may differ; semantics must not).
        let codec = codec();
        let native = wire::encode(&SsdpMessage::MSearch(MSearch::new("urn:x:printer:1")));
        let msg = codec.parse(&native).unwrap();
        let recomposed = codec.compose(&msg).unwrap();
        let decoded = wire::decode(&recomposed).unwrap();
        assert_eq!(decoded, SsdpMessage::MSearch(MSearch::new("urn:x:printer:1")));
    }

    #[test]
    fn automata_shapes() {
        assert_eq!(client_automaton().messages(), vec!["SSDP_M-Search", "SSDP_Resp"]);
        assert_eq!(service_automaton().states().len(), 3);
    }
}
