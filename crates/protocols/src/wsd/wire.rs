//! Native WS-Discovery wire codec: SOAP-over-UDP Probe / ProbeMatch in
//! the canonical namespace-elided single-line envelope form legacy
//! endpoints in this repository emit (`e:` soap envelope, `a:`
//! ws-addressing, `d:` ws-discovery).
//!
//! The shape is deliberately different from the other three families:
//! a verbose text envelope, uuid request/response correlation
//! (`RelatesTo` echoes the probe's `MessageID`), a unicast reply to a
//! multicast probe, and a length-framed metadata blob that may itself
//! contain markup (`<d:Metadata l="NN">`).

use crate::WireError;

/// The WS-Discovery well-known port (SOAP-over-UDP).
pub const WSD_PORT: u16 = 3702;
/// The WS-Discovery multicast group (shared with SSDP's group address,
/// but on port 3702 — the two colours stay distinct endpoints).
pub const WSD_GROUP: &str = "239.255.255.250";

/// WS-Addressing action URI of a Probe.
pub const ACTION_PROBE: &str = "http://schemas.xmlsoap.org/ws/2005/04/discovery/Probe";
/// WS-Addressing action URI of a ProbeMatches envelope.
pub const ACTION_PROBE_MATCHES: &str =
    "http://schemas.xmlsoap.org/ws/2005/04/discovery/ProbeMatches";
/// The `To` URN every Probe is addressed to.
pub const TO_DISCOVERY: &str = "urn:schemas-xmlsoap-org:ws:2005:04:discovery";
/// The anonymous `To` role a ProbeMatch replies to.
pub const TO_ANONYMOUS: &str = "http://schemas.xmlsoap.org/ws/2004/08/addressing/role/anonymous";

/// The metadata blob a target attaches to its ProbeMatch. Contains
/// markup on purpose: it exercises the length-framed body (no delimiter
/// could end it).
pub const DEFAULT_METADATA: &str =
    "<d:Relationship><d:Host>starlink-target</d:Host></d:Relationship>";

/// A deterministic WS-Addressing MessageID embedding a small numeric id
/// — what the legacy probe clients and the wire-level harnesses use so
/// replies can be matched back to their probe.
pub fn probe_uuid(id: u64) -> String {
    format!("urn:uuid:00000000-0000-4000-8000-{id:012x}")
}

/// A parsed WS-Discovery message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsdMessage {
    /// A multicast Probe.
    Probe(WsdProbe),
    /// A unicast ProbeMatch answering a Probe.
    ProbeMatch(WsdProbeMatch),
}

/// A WS-Discovery Probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsdProbe {
    /// WS-Addressing MessageID (`urn:uuid:...`).
    pub message_id: String,
    /// The probed device type QName, e.g. `dn:printer`.
    pub types: String,
}

impl WsdProbe {
    /// Creates a Probe for `types` with a MessageID derived from `id`.
    pub fn new(id: u64, types: impl Into<String>) -> Self {
        WsdProbe { message_id: probe_uuid(id), types: types.into() }
    }
}

/// A WS-Discovery ProbeMatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WsdProbeMatch {
    /// Fresh MessageID of the reply envelope.
    pub message_id: String,
    /// Echo of the probe's MessageID — the uuid correlation.
    pub relates_to: String,
    /// The matched type QName.
    pub types: String,
    /// Transport addresses of the matched service (the discovery
    /// payload the bridges translate into SLP URLs / DNS RData).
    pub xaddrs: String,
    /// Length-framed metadata blob (may contain markup).
    pub metadata: String,
}

impl WsdProbeMatch {
    /// Creates a ProbeMatch answering `relates_to` with the default
    /// metadata blob.
    pub fn new(
        message_id: impl Into<String>,
        relates_to: impl Into<String>,
        types: impl Into<String>,
        xaddrs: impl Into<String>,
    ) -> Self {
        WsdProbeMatch {
            message_id: message_id.into(),
            relates_to: relates_to.into(),
            types: types.into(),
            xaddrs: xaddrs.into(),
            metadata: DEFAULT_METADATA.to_owned(),
        }
    }
}

/// Encodes a message to its canonical wire text.
pub fn encode(message: &WsdMessage) -> Vec<u8> {
    match message {
        WsdMessage::Probe(p) => format!(
            "<e:Envelope><e:Header><a:Action>{ACTION_PROBE}</a:Action>\
             <a:To>{TO_DISCOVERY}</a:To>\
             <a:MessageID>{}</a:MessageID></e:Header>\
             <e:Body><d:Probe><d:Types>{}</d:Types></d:Probe></e:Body></e:Envelope>",
            p.message_id, p.types
        )
        .into_bytes(),
        WsdMessage::ProbeMatch(m) => format!(
            "<e:Envelope><e:Header><a:Action>{ACTION_PROBE_MATCHES}</a:Action>\
             <a:To>{TO_ANONYMOUS}</a:To>\
             <a:MessageID>{}</a:MessageID>\
             <a:RelatesTo>{}</a:RelatesTo></e:Header>\
             <e:Body><d:ProbeMatches><d:ProbeMatch><d:Types>{}</d:Types>\
             <d:XAddrs>{}</d:XAddrs>\
             <d:Metadata l=\"{}\">{}</d:Metadata>\
             </d:ProbeMatch></d:ProbeMatches></e:Body></e:Envelope>",
            m.message_id,
            m.relates_to,
            m.types,
            m.xaddrs,
            m.metadata.len(),
            m.metadata
        )
        .into_bytes(),
    }
}

/// The content of the first `<tag>` element in `text`.
fn element<'t>(text: &'t str, tag: &str) -> Result<&'t str, WireError> {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let start =
        text.find(&open).ok_or_else(|| WireError(format!("wsd: no <{tag}> element")))? + open.len();
    let end = text[start..]
        .find(&close)
        .ok_or_else(|| WireError(format!("wsd: unterminated <{tag}> element")))?
        + start;
    Ok(&text[start..end])
}

/// Decodes canonical wire text.
///
/// # Errors
///
/// Returns [`WireError`] for unknown actions, missing envelope elements
/// or a metadata length frame that overruns the input.
pub fn decode(bytes: &[u8]) -> Result<WsdMessage, WireError> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| WireError("wsd: envelope is not UTF-8".into()))?;
    let action = element(text, "a:Action")?;
    let message_id = element(text, "a:MessageID")?.to_owned();
    if action == ACTION_PROBE {
        Ok(WsdMessage::Probe(WsdProbe { message_id, types: element(text, "d:Types")?.to_owned() }))
    } else if action == ACTION_PROBE_MATCHES {
        let relates_to = element(text, "a:RelatesTo")?.to_owned();
        let types = element(text, "d:Types")?.to_owned();
        let xaddrs = element(text, "d:XAddrs")?.to_owned();
        // The metadata blob is length-framed, not delimiter-framed: read
        // the l="NN" attribute and take exactly NN bytes.
        let open = "<d:Metadata l=\"";
        let start =
            text.find(open).ok_or_else(|| WireError("wsd: no <d:Metadata> frame".into()))?
                + open.len();
        let len_end = text[start..]
            .find("\">")
            .ok_or_else(|| WireError("wsd: unterminated metadata length".into()))?
            + start;
        let length: usize = text[start..len_end].parse().map_err(|_| {
            WireError(format!("wsd: bad metadata length {:?}", &text[start..len_end]))
        })?;
        let blob_start = len_end + 2;
        // `get` guards both the bounds (a huge or overflowing l="NN")
        // and char boundaries (a frame cutting a multi-byte character):
        // hostile input must error, never panic.
        let metadata = blob_start
            .checked_add(length)
            .and_then(|end| text.get(blob_start..end))
            .ok_or_else(|| {
                WireError(format!("wsd: metadata frame of {length} bytes overruns the envelope"))
            })?;
        Ok(WsdMessage::ProbeMatch(WsdProbeMatch {
            message_id,
            relates_to,
            types,
            xaddrs,
            metadata: metadata.to_owned(),
        }))
    } else {
        Err(WireError(format!("wsd: unknown action {action:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_roundtrip() {
        let probe = WsdProbe::new(0x1234, "dn:printer");
        let wire = encode(&WsdMessage::Probe(probe.clone()));
        assert_eq!(decode(&wire).unwrap(), WsdMessage::Probe(probe));
    }

    #[test]
    fn probe_match_roundtrip_with_markup_metadata() {
        let m = WsdProbeMatch::new(
            probe_uuid(9),
            probe_uuid(0x1234),
            "dn:printer",
            "http://10.0.0.3:5357/device",
        );
        assert!(m.metadata.contains('<'), "metadata carries markup");
        let wire = encode(&WsdMessage::ProbeMatch(m.clone()));
        assert_eq!(decode(&wire).unwrap(), WsdMessage::ProbeMatch(m));
    }

    #[test]
    fn wire_is_single_line_canonical_soap() {
        let wire = encode(&WsdMessage::Probe(WsdProbe::new(1, "dn:printer")));
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("<e:Envelope><e:Header><a:Action>"));
        assert!(text.ends_with("</d:Probe></e:Body></e:Envelope>"));
        assert!(!text.contains('\n'));
        assert!(!text.contains("  "), "no leftover indentation: {text}");
    }

    #[test]
    fn metadata_length_frames_the_blob_exactly() {
        let mut m = WsdProbeMatch::new(probe_uuid(1), probe_uuid(2), "dn:x", "http://h");
        m.metadata = "<x>a</x>".into();
        let wire = encode(&WsdMessage::ProbeMatch(m.clone()));
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("<d:Metadata l=\"8\"><x>a</x></d:Metadata>"), "{text}");
        assert_eq!(decode(&wire).unwrap(), WsdMessage::ProbeMatch(m));
    }

    #[test]
    fn metadata_frame_cutting_a_multibyte_char_errors_without_panic() {
        // 'é' is two UTF-8 bytes; a length frame ending inside it must be
        // a WireError, not a str-slice panic.
        let mut m = WsdProbeMatch::new(probe_uuid(1), probe_uuid(2), "dn:x", "http://h");
        m.metadata = "é!".into();
        let wire = encode(&WsdMessage::ProbeMatch(m));
        let text = String::from_utf8(wire).unwrap();
        let cut = text.replace("l=\"3\"", "l=\"1\"");
        assert!(decode(cut.as_bytes()).is_err());
        // A length near usize::MAX must not overflow the bound check.
        let huge = text.replace("l=\"3\"", &format!("l=\"{}\"", usize::MAX));
        assert!(decode(huge.as_bytes()).is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"").is_err());
        assert!(decode(b"<e:Envelope>").is_err());
        assert!(decode(b"GET / HTTP/1.1\r\n\r\n").is_err());
        // Overrunning metadata length frame.
        let bad = b"<e:Envelope><e:Header><a:Action>http://schemas.xmlsoap.org/ws/2005/04/discovery/ProbeMatches</a:Action><a:To>x</a:To><a:MessageID>m</a:MessageID><a:RelatesTo>r</a:RelatesTo></e:Header><e:Body><d:ProbeMatches><d:ProbeMatch><d:Types>t</d:Types><d:XAddrs>x</d:XAddrs><d:Metadata l=\"9999\">oops</d:Metadata></d:ProbeMatch></d:ProbeMatches></e:Body></e:Envelope>";
        assert!(decode(bad).is_err());
    }

    #[test]
    fn probe_uuid_is_stable_and_id_bearing() {
        assert_eq!(probe_uuid(0x1234), "urn:uuid:00000000-0000-4000-8000-000000001234");
        assert_ne!(probe_uuid(1), probe_uuid(2));
    }
}
