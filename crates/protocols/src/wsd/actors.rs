//! Legacy WS-Discovery endpoints: a WSDAPI-style probe client and a
//! matching target, the "simple legacy applications" of §V for the
//! fourth protocol family.

use crate::calibration::Calibration;
use crate::probe::DiscoveryProbe;
use crate::wsd::wire::{
    self, probe_uuid, WsdMessage, WsdProbe, WsdProbeMatch, WSD_GROUP, WSD_PORT,
};
use starlink_net::{Actor, Context, Datagram, SimAddr, SimTime};

/// The UDP port legacy WSD probe clients bind for unicast replies
/// (distinct from 3702 so client and bridge can share a simulated LAN).
pub const WSD_CLIENT_PORT: u16 = 36_270;

/// A legacy WS-Discovery client: multicasts one Probe and records the
/// first ProbeMatch whose `RelatesTo` echoes its own MessageID, after
/// the calibrated stack overhead.
#[derive(Debug)]
pub struct WsdClient {
    types: String,
    message_id: String,
    calibration: Calibration,
    probe: DiscoveryProbe,
    sent_at: Option<SimTime>,
    pending: Option<(String, SimTime)>,
}

impl WsdClient {
    /// Creates a client probing for `types` (e.g. `dn:printer`).
    pub fn new(types: impl Into<String>, calibration: Calibration, probe: DiscoveryProbe) -> Self {
        WsdClient {
            types: types.into(),
            message_id: probe_uuid(0x5157),
            calibration,
            probe,
            sent_at: None,
            pending: None,
        }
    }

    /// Creates a client with a MessageID derived from `id` — wire-level
    /// harnesses give every client its own uuid this way.
    pub fn with_id(
        types: impl Into<String>,
        id: u64,
        calibration: Calibration,
        probe: DiscoveryProbe,
    ) -> Self {
        let mut client = WsdClient::new(types, calibration, probe);
        client.message_id = probe_uuid(id);
        client
    }
}

impl Actor for WsdClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(WSD_CLIENT_PORT).expect("wsd client port free");
        let probe = WsdProbe { message_id: self.message_id.clone(), types: self.types.clone() };
        let wire = wire::encode(&WsdMessage::Probe(probe));
        self.sent_at = Some(ctx.now());
        ctx.udp_send(WSD_CLIENT_PORT, SimAddr::new(WSD_GROUP, WSD_PORT), wire);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let Ok(WsdMessage::ProbeMatch(matched)) = wire::decode(&datagram.payload) else {
            ctx.trace("wsd client: ignoring non-probe-match datagram");
            return;
        };
        if matched.relates_to != self.message_id {
            return;
        }
        let Some(sent_at) = self.sent_at.take() else { return };
        // Stack overhead between the wire arrival and the application
        // callback, as in the Bonjour client model.
        let overhead = self.calibration.wsd_client_overhead.sample(ctx);
        self.pending = Some((matched.xaddrs, sent_at));
        ctx.set_timer(overhead, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        if let Some((url, sent_at)) = self.pending.take() {
            self.probe.record(url, ctx.now().since(sent_at), ctx.now());
        }
    }
}

/// A legacy WS-Discovery target: joins the discovery group and answers
/// matching Probes with a unicast ProbeMatch after the calibrated
/// `APP_MAX_DELAY`-style response delay.
#[derive(Debug)]
pub struct WsdTarget {
    types: String,
    xaddrs: String,
    calibration: Calibration,
    pending: Vec<Option<(WsdProbe, SimAddr)>>,
}

impl WsdTarget {
    /// Creates a target matching `types`, advertising `xaddrs`.
    pub fn new(
        types: impl Into<String>,
        xaddrs: impl Into<String>,
        calibration: Calibration,
    ) -> Self {
        WsdTarget { types: types.into(), xaddrs: xaddrs.into(), calibration, pending: Vec::new() }
    }
}

impl Actor for WsdTarget {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(WSD_PORT).expect("wsd port free");
        ctx.join_group(SimAddr::new(WSD_GROUP, WSD_PORT));
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let Ok(WsdMessage::Probe(probe)) = wire::decode(&datagram.payload) else {
            return;
        };
        if !probe.types.is_empty() && probe.types != self.types {
            return;
        }
        let delay = self.calibration.wsd_service_delay.sample(ctx);
        let tag = self.pending.len() as u64;
        self.pending.push(Some((probe, datagram.from)));
        ctx.set_timer(delay, tag);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        let Some(slot) = self.pending.get_mut(tag as usize) else { return };
        let Some((probe, reply_to)) = slot.take() else { return };
        let matched = WsdProbeMatch::new(
            format!("{}-match", probe.message_id),
            probe.message_id,
            probe.types,
            self.xaddrs.clone(),
        );
        let wire = wire::encode(&WsdMessage::ProbeMatch(matched));
        ctx.udp_send(WSD_PORT, reply_to, wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_net::SimNet;

    #[test]
    fn native_wsd_probe_roundtrip() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(51);
        sim.add_actor(
            "10.0.0.3",
            WsdTarget::new("dn:printer", "http://10.0.0.3:5357/device", Calibration::fast()),
        );
        sim.add_actor("10.0.0.1", WsdClient::new("dn:printer", Calibration::fast(), probe.clone()));
        sim.run_until_idle();
        let result = probe.first().expect("probe answered");
        assert_eq!(result.url, "http://10.0.0.3:5357/device");
        assert!(result.elapsed.as_millis() >= 2);
    }

    #[test]
    fn target_ignores_other_types() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(52);
        sim.add_actor("10.0.0.3", WsdTarget::new("dn:scanner", "http://x", Calibration::fast()));
        sim.add_actor("10.0.0.1", WsdClient::new("dn:printer", Calibration::fast(), probe.clone()));
        sim.run_until_idle();
        assert!(probe.is_empty());
    }

    #[test]
    fn client_ignores_probe_matches_for_other_probes() {
        // Two clients with distinct uuids: each records exactly its own
        // ProbeMatch — RelatesTo correlation at the legacy endpoint.
        let probe_a = DiscoveryProbe::new();
        let probe_b = DiscoveryProbe::new();
        let mut sim = SimNet::new(53);
        sim.add_actor(
            "10.0.0.3",
            WsdTarget::new("dn:printer", "http://10.0.0.3:5357/device", Calibration::fast()),
        );
        sim.add_actor(
            "10.0.0.1",
            WsdClient::with_id("dn:printer", 1, Calibration::fast(), probe_a.clone()),
        );
        sim.add_actor(
            "10.0.0.4",
            WsdClient::with_id("dn:printer", 2, Calibration::fast(), probe_b.clone()),
        );
        sim.run_until_idle();
        assert_eq!(probe_a.results().len(), 1);
        assert_eq!(probe_b.results().len(), 1);
    }

    #[test]
    fn native_response_time_matches_calibration() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(54);
        sim.add_actor("10.0.0.3", WsdTarget::new("dn:printer", "u", Calibration::paper()));
        sim.add_actor(
            "10.0.0.1",
            WsdClient::new("dn:printer", Calibration::paper(), probe.clone()),
        );
        sim.run_until_idle();
        let elapsed = probe.first().unwrap().elapsed.as_millis();
        // WSDAPI-derived: service 180–420 ms + client 55–75 ms.
        assert!((230..=500).contains(&elapsed), "elapsed {elapsed}ms");
    }
}
