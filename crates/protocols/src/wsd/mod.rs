//! WS-Discovery (SOAP-over-UDP probe / probe-match): native wire codec,
//! legacy probe client + matching target, and the Starlink models — the
//! fourth protocol family of the bridge matrix.
//!
//! WS-Discovery stresses the runtime differently from the other three
//! families: a verbose XML text envelope (parsed by boundary tags, not
//! control bytes), uuid request/response correlation (`RelatesTo`
//! echoes the probe's `MessageID` — see
//! [`FieldCorrelator::message_field`](starlink_core::FieldCorrelator)),
//! a unicast reply to a multicast probe, and a length-framed metadata
//! body.

mod actors;
mod models;
mod wire;

pub use actors::{WsdClient, WsdTarget, WSD_CLIENT_PORT};
pub use models::{client_automaton, color, mdl_xml, service_automaton};
pub use wire::{
    decode, encode, probe_uuid, WsdMessage, WsdProbe, WsdProbeMatch, ACTION_PROBE,
    ACTION_PROBE_MATCHES, DEFAULT_METADATA, TO_ANONYMOUS, TO_DISCOVERY, WSD_GROUP, WSD_PORT,
};
