//! Starlink models of WS-Discovery: the text MDL with XML-envelope
//! boundaries and the probe/probe-match coloured automata.

use crate::wsd::wire::{WSD_GROUP, WSD_PORT};
use starlink_automata::{Color, ColoredAutomaton, Mode, Transport};

/// The WS-Discovery MDL document: a text MDL whose field boundaries are
/// quoted XML-envelope tags, with a length-framed metadata body
/// (`MetadataLength` declares `f-length(Metadata)`).
pub fn mdl_xml() -> &'static str {
    include_str!("../../specs/wsd.xml")
}

/// The WSD colour: UDP 3702, async, multicast 239.255.255.250 (the SSDP
/// group address on the WS-Discovery port — the (group, port) endpoint
/// stays distinct from SSDP's).
pub fn color() -> Color {
    Color::new(Transport::Udp, WSD_PORT, Mode::Async).multicast(WSD_GROUP)
}

/// Client side (the bridge probes for a legacy WSD target): send a
/// Probe, await the ProbeMatch.
pub fn client_automaton() -> ColoredAutomaton {
    ColoredAutomaton::builder("WSD")
        .color(color())
        .state("w0")
        .state("w1")
        .state_accepting("w2")
        .send("w0", "WSD_Probe", "w1")
        .receive("w1", "WSD_ProbeMatch", "w2")
        .build()
        .expect("static WSD client automaton is valid")
}

/// Service side (the bridge answers legacy WSD probe clients): receive a
/// Probe, later send the ProbeMatch.
pub fn service_automaton() -> ColoredAutomaton {
    ColoredAutomaton::builder("WSD")
        .color(color())
        .state("v0")
        .state("v1")
        .state_accepting("v2")
        .receive("v0", "WSD_Probe", "v1")
        .send("v1", "WSD_ProbeMatch", "v2")
        .build()
        .expect("static WSD service automaton is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wsd::wire::{self, probe_uuid, WsdMessage, WsdProbe, WsdProbeMatch};
    use starlink_mdl::{load_mdl, MdlCodec};
    use starlink_message::Value;

    fn codec() -> MdlCodec {
        MdlCodec::generate(load_mdl(mdl_xml()).unwrap()).unwrap()
    }

    #[test]
    fn mdl_parses_native_probe() {
        let native = wire::encode(&WsdMessage::Probe(WsdProbe::new(0x1234, "dn:printer")));
        let msg = codec().parse(&native).unwrap();
        assert_eq!(msg.name(), "WSD_Probe");
        assert_eq!(msg.get(&"Types".into()).unwrap().as_str().unwrap(), "dn:printer");
        assert_eq!(msg.get(&"MessageID".into()).unwrap().as_str().unwrap(), probe_uuid(0x1234));
        // The envelope's constant markup lives in marker-field
        // delimiters, so marker values parse empty.
        assert_eq!(msg.get(&"ProbeOpen".into()).unwrap().as_str().unwrap(), "");
        assert!(msg.is_mandatory("Types"));
        assert!(msg.is_mandatory("MessageID"));
    }

    #[test]
    fn mdl_parses_native_probe_match_including_length_framed_metadata() {
        let native = wire::encode(&WsdMessage::ProbeMatch(WsdProbeMatch::new(
            probe_uuid(9),
            probe_uuid(0x1234),
            "dn:printer",
            "http://10.0.0.3:5357/device",
        )));
        let msg = codec().parse(&native).unwrap();
        assert_eq!(msg.name(), "WSD_ProbeMatch");
        assert_eq!(msg.get(&"RelatesTo".into()).unwrap().as_str().unwrap(), probe_uuid(0x1234));
        assert_eq!(
            msg.get(&"XAddrs".into()).unwrap().as_str().unwrap(),
            "http://10.0.0.3:5357/device"
        );
        // The length-framed blob parsed whole, markup included.
        assert_eq!(msg.get(&"Metadata".into()).unwrap().as_str().unwrap(), wire::DEFAULT_METADATA);
        assert_eq!(
            msg.get(&"MetadataLength".into()).unwrap().as_u64().unwrap(),
            wire::DEFAULT_METADATA.len() as u64
        );
    }

    #[test]
    fn mdl_roundtrip_reproduces_native_bytes() {
        let codec = codec();
        for native in [
            wire::encode(&WsdMessage::Probe(WsdProbe::new(7, "dn:printer"))),
            wire::encode(&WsdMessage::ProbeMatch(WsdProbeMatch::new(
                probe_uuid(8),
                probe_uuid(7),
                "dn:printer",
                "http://10.0.0.3:5357/device",
            ))),
        ] {
            let msg = codec.parse(&native).unwrap();
            assert_eq!(codec.compose(&msg).unwrap(), native);
        }
    }

    #[test]
    fn mdl_composes_probe_native_codec_reads() {
        let codec = codec();
        let mut probe = codec.schema("WSD_Probe").unwrap().instantiate();
        probe.set(&"MessageID".into(), Value::Str(probe_uuid(5))).unwrap();
        probe.set(&"Types".into(), Value::Str("dn:printer".into())).unwrap();
        let bytes = codec.compose(&probe).unwrap();
        assert_eq!(
            wire::decode(&bytes).unwrap(),
            WsdMessage::Probe(WsdProbe::new(5, "dn:printer"))
        );
    }

    #[test]
    fn mdl_recomputes_metadata_length_on_compose() {
        let codec = codec();
        let native = wire::encode(&WsdMessage::ProbeMatch(WsdProbeMatch::new(
            probe_uuid(1),
            probe_uuid(2),
            "dn:x",
            "http://h",
        )));
        let mut msg = codec.parse(&native).unwrap();
        msg.set(&"Metadata".into(), Value::Str("<m>edited</m>".into())).unwrap();
        let bytes = codec.compose(&msg).unwrap();
        let WsdMessage::ProbeMatch(m) = wire::decode(&bytes).unwrap() else {
            panic!("not a probe match")
        };
        assert_eq!(m.metadata, "<m>edited</m>");
    }

    #[test]
    fn automata_shapes() {
        assert_eq!(client_automaton().messages(), vec!["WSD_Probe", "WSD_ProbeMatch"]);
        assert_eq!(service_automaton().states().len(), 3);
        assert_eq!(color().group(), Some("239.255.255.250"));
        assert_eq!(color().port(), 3702);
    }
}
