//! The six case-study bridges of §V: merged automata (with translation
//! logic and λ actions) for every ordered pair of the three discovery
//! protocols. Cases 1 and 2 are the paper's Figs. 4 and 10; the remaining
//! four complete the 3×2 matrix the evaluation reports.
//!
//! In the reverse cases (UPnP or Bonjour clients discovering an SLP/
//! Bonjour service) the bridge itself serves the device-description HTTP
//! GET, so its SSDP response LOCATION points at the bridge host — which
//! is why those constructors take `bridge_host`.

use crate::{http, mdns, slp, ssdp};
use starlink_automata::{Assignment, Delta, MergedAutomaton, NetworkAction, ValueSource};
use starlink_core::Starlink;
use starlink_message::Value;

/// Loads the four protocol MDLs into a framework instance (the model-
/// loading step every deployment starts with).
///
/// # Errors
///
/// Propagates MDL loading failures (impossible for the embedded specs
/// unless they are edited).
pub fn load_all_mdls(starlink: &mut Starlink) -> starlink_core::Result<()> {
    starlink.load_mdl_xml(slp::mdl_xml())?;
    starlink.load_mdl_xml(mdns::mdl_xml())?;
    starlink.load_mdl_xml(ssdp::mdl_xml())?;
    starlink.load_mdl_xml(http::mdl_xml())?;
    Ok(())
}

fn lit(value: impl Into<Value>) -> ValueSource {
    ValueSource::literal(value)
}

fn field(message: &str, path: &str) -> ValueSource {
    ValueSource::field(message, path)
}

fn func(name: &str, args: Vec<ValueSource>) -> ValueSource {
    ValueSource::function(name, args)
}

fn assign(target: &str, path: &str, source: ValueSource) -> Assignment {
    Assignment::new(target, path, source)
}

/// Fills the constant start-line and header fields of an outgoing
/// `SSDP_M-Search`, plus its translated `ST`.
fn msearch_assignments(delta: Delta, st_source: ValueSource) -> Delta {
    delta
        .assignment(assign("SSDP_M-Search", "URI", lit("*")))
        .assignment(assign("SSDP_M-Search", "Version", lit("HTTP/1.1")))
        .assignment(assign(
            "SSDP_M-Search",
            "HOST",
            lit(format!("{}:{}", ssdp::SSDP_GROUP, ssdp::SSDP_PORT)),
        ))
        .assignment(assign("SSDP_M-Search", "MAN", lit("\"ssdp:discover\"")))
        .assignment(assign("SSDP_M-Search", "MX", lit(2u64)))
        .assignment(assign("SSDP_M-Search", "ST", st_source))
}

/// Fills an outgoing `SSDP_Resp` whose LOCATION points at the bridge's
/// own HTTP listener (reverse cases).
fn ssdp_resp_assignments(delta: Delta, bridge_host: &str, st_source: ValueSource) -> Delta {
    delta
        .assignment(assign("SSDP_Resp", "URI", lit("200")))
        .assignment(assign("SSDP_Resp", "Version", lit("OK")))
        .assignment(assign("SSDP_Resp", "CACHE-CONTROL", lit("max-age=1800")))
        .assignment(assign(
            "SSDP_Resp",
            "LOCATION",
            lit(format!("http://{bridge_host}:{}/desc.xml", http::HTTP_PORT)),
        ))
        .assignment(assign("SSDP_Resp", "ST", st_source))
        .assignment(assign("SSDP_Resp", "USN", lit("uuid:starlink-bridge")))
}

/// The `set_host` λ of Fig. 5 line 11: point the next TCP connection at
/// the host/port named by the SSDP response's LOCATION header.
fn set_host_from_location() -> NetworkAction {
    NetworkAction::set_host(
        func("url-host", vec![field("SSDP_Resp", "LOCATION")]),
        func("url-port", vec![field("SSDP_Resp", "LOCATION")]),
    )
}

/// Fills the GET the bridge issues for the device description.
fn http_get_assignments(delta: Delta) -> Delta {
    delta
        .assignment(assign(
            "HTTP_GET",
            "URI",
            func("url-path", vec![field("SSDP_Resp", "LOCATION")]),
        ))
        .assignment(assign("HTTP_GET", "Version", lit("HTTP/1.1")))
        .assignment(assign(
            "HTTP_GET",
            "HOST",
            func(
                "concat",
                vec![
                    func("url-host", vec![field("SSDP_Resp", "LOCATION")]),
                    lit(":"),
                    func("to-text", vec![func("url-port", vec![field("SSDP_Resp", "LOCATION")])]),
                ],
            ),
        ))
}

/// Fills the description document the bridge serves in the reverse
/// cases, embedding the discovered URL.
fn http_ok_assignments(delta: Delta, url_source: ValueSource) -> Delta {
    delta
        .assignment(assign("HTTP_OK", "URI", lit("200")))
        .assignment(assign("HTTP_OK", "Version", lit("OK")))
        .assignment(assign("HTTP_OK", "CONTENT-TYPE", lit("text/xml")))
        .assignment(assign(
            "HTTP_OK",
            "Body",
            func("concat", vec![lit("<root><URLBase>"), url_source, lit("</URLBase></root>")]),
        ))
}

/// Case 1 — **SLP → UPnP** (Fig. 4): an SLP client's lookup answered by
/// a UPnP device, chaining SLP, SSDP and HTTP.
pub fn slp_to_upnp() -> MergedAutomaton {
    MergedAutomaton::builder("slp-to-upnp")
        .part(slp::service_automaton())
        .part(ssdp::client_automaton())
        .part(http::client_automaton(http::HTTP_PORT))
        .equivalence("SSDP_M-Search", &["SLPSrvRequest"])
        .equivalence("HTTP_GET", &["SSDP_Resp"])
        .equivalence("SLPSrvReply", &["HTTP_OK"])
        .delta(msearch_assignments(
            Delta::new("SLP:s1", "SSDP:s0"),
            func("slp-to-ssdp-type", vec![field("SLPSrvRequest", "SRVType")]),
        ))
        .delta(http_get_assignments(
            Delta::new("SSDP:s2", "HTTP:h0").action(set_host_from_location()),
        ))
        .delta(
            Delta::new("HTTP:h2", "SLP:s1")
                .assignment(assign(
                    "SLPSrvReply",
                    "URLEntry",
                    func("extract-tag", vec![field("HTTP_OK", "Body"), lit("URLBase")]),
                ))
                .assignment(assign("SLPSrvReply", "XID", field("SLPSrvRequest", "XID")))
                .assignment(assign("SLPSrvReply", "LangTag", field("SLPSrvRequest", "LangTag")))
                .assignment(assign("SLPSrvReply", "Version", lit(2u64)))
                .assignment(assign("SLPSrvReply", "LifeTime", lit(60u64))),
        )
        .build()
        .expect("case 1 bridge is well-formed")
}

/// Case 2 — **SLP → Bonjour** (Fig. 10): an SLP client's lookup answered
/// by a Bonjour responder.
pub fn slp_to_bonjour() -> MergedAutomaton {
    MergedAutomaton::builder("slp-to-bonjour")
        .part(slp::service_automaton())
        .part(mdns::client_automaton())
        .equivalence("DNS_Question", &["SLPSrvRequest"])
        .equivalence("SLPSrvReply", &["DNS_Response"])
        .delta(
            Delta::new("SLP:s1", "DNS:s0")
                .assignment(assign(
                    "DNS_Question",
                    "QName",
                    func("slp-to-dns-type", vec![field("SLPSrvRequest", "SRVType")]),
                ))
                .assignment(assign("DNS_Question", "ID", field("SLPSrvRequest", "XID")))
                .assignment(assign("DNS_Question", "QDCount", lit(1u64)))
                .assignment(assign("DNS_Question", "QType", lit(u64::from(mdns::TYPE_PTR))))
                .assignment(assign("DNS_Question", "QClass", lit(u64::from(mdns::CLASS_IN)))),
        )
        .delta(
            Delta::new("DNS:s2", "SLP:s1")
                .assignment(assign("SLPSrvReply", "URLEntry", field("DNS_Response", "RData")))
                .assignment(assign("SLPSrvReply", "XID", field("SLPSrvRequest", "XID")))
                .assignment(assign("SLPSrvReply", "LangTag", field("SLPSrvRequest", "LangTag")))
                .assignment(assign("SLPSrvReply", "Version", lit(2u64)))
                .assignment(assign("SLPSrvReply", "LifeTime", lit(60u64))),
        )
        .build()
        .expect("case 2 bridge is well-formed")
}

/// Case 3 — **UPnP → SLP**: a UPnP control point's search answered by an
/// SLP service; the bridge also serves the description GET, so LOCATION
/// names `bridge_host`.
pub fn upnp_to_slp(bridge_host: &str) -> MergedAutomaton {
    MergedAutomaton::builder("upnp-to-slp")
        .part(ssdp::service_automaton())
        .part(slp::client_automaton())
        .part(http::server_automaton(http::HTTP_PORT))
        .equivalence("SLPSrvRequest", &["SSDP_M-Search"])
        .equivalence("SSDP_Resp", &["SLPSrvReply"])
        .equivalence("HTTP_OK", &["SLPSrvReply"])
        .delta(
            Delta::new("SSDP:r1", "SLP:p0")
                .assignment(assign(
                    "SLPSrvRequest",
                    "SRVType",
                    func("ssdp-to-slp-type", vec![field("SSDP_M-Search", "ST")]),
                ))
                .assignment(assign("SLPSrvRequest", "Version", lit(2u64)))
                .assignment(assign("SLPSrvRequest", "XID", lit(42u64)))
                .assignment(assign("SLPSrvRequest", "LangTag", lit("en"))),
        )
        .delta(ssdp_resp_assignments(
            Delta::new("SLP:p2", "SSDP:r1"),
            bridge_host,
            field("SSDP_M-Search", "ST"),
        ))
        .delta(http_ok_assignments(
            Delta::new("SSDP:r2", "HTTP:g0"),
            field("SLPSrvReply", "URLEntry"),
        ))
        .build()
        .expect("case 3 bridge is well-formed")
}

/// Case 4 — **UPnP → Bonjour**: a UPnP control point's search answered by
/// a Bonjour responder; the bridge serves the description GET.
pub fn upnp_to_bonjour(bridge_host: &str) -> MergedAutomaton {
    MergedAutomaton::builder("upnp-to-bonjour")
        .part(ssdp::service_automaton())
        .part(mdns::client_automaton())
        .part(http::server_automaton(http::HTTP_PORT))
        .equivalence("DNS_Question", &["SSDP_M-Search"])
        .equivalence("SSDP_Resp", &["DNS_Response"])
        .equivalence("HTTP_OK", &["DNS_Response"])
        .delta(
            Delta::new("SSDP:r1", "DNS:s0")
                .assignment(assign(
                    "DNS_Question",
                    "QName",
                    func(
                        "slp-to-dns-type",
                        vec![func("ssdp-to-slp-type", vec![field("SSDP_M-Search", "ST")])],
                    ),
                ))
                .assignment(assign("DNS_Question", "ID", lit(1u64)))
                .assignment(assign("DNS_Question", "QDCount", lit(1u64)))
                .assignment(assign("DNS_Question", "QType", lit(u64::from(mdns::TYPE_PTR))))
                .assignment(assign("DNS_Question", "QClass", lit(u64::from(mdns::CLASS_IN)))),
        )
        .delta(ssdp_resp_assignments(
            Delta::new("DNS:s2", "SSDP:r1"),
            bridge_host,
            field("SSDP_M-Search", "ST"),
        ))
        .delta(http_ok_assignments(
            Delta::new("SSDP:r2", "HTTP:g0"),
            field("DNS_Response", "RData"),
        ))
        .build()
        .expect("case 4 bridge is well-formed")
}

/// Case 5 — **Bonjour → UPnP**: a Bonjour browser's question answered by
/// a UPnP device (the Fig. 4 chain with mDNS in place of SLP).
pub fn bonjour_to_upnp() -> MergedAutomaton {
    MergedAutomaton::builder("bonjour-to-upnp")
        .part(mdns::service_automaton())
        .part(ssdp::client_automaton())
        .part(http::client_automaton(http::HTTP_PORT))
        .equivalence("SSDP_M-Search", &["DNS_Question"])
        .equivalence("HTTP_GET", &["SSDP_Resp"])
        .equivalence("DNS_Response", &["HTTP_OK"])
        .delta(msearch_assignments(
            Delta::new("DNS:d1", "SSDP:s0"),
            func(
                "slp-to-ssdp-type",
                vec![func("dns-to-slp-type", vec![field("DNS_Question", "QName")])],
            ),
        ))
        .delta(http_get_assignments(
            Delta::new("SSDP:s2", "HTTP:h0").action(set_host_from_location()),
        ))
        .delta(
            Delta::new("HTTP:h2", "DNS:d1")
                .assignment(assign(
                    "DNS_Response",
                    "RData",
                    func("extract-tag", vec![field("HTTP_OK", "Body"), lit("URLBase")]),
                ))
                .assignment(assign("DNS_Response", "ID", field("DNS_Question", "ID")))
                .assignment(assign("DNS_Response", "AName", field("DNS_Question", "QName")))
                .assignment(assign("DNS_Response", "ANCount", lit(1u64)))
                .assignment(assign("DNS_Response", "AType", lit(u64::from(mdns::TYPE_PTR))))
                .assignment(assign("DNS_Response", "AClass", lit(u64::from(mdns::CLASS_IN))))
                .assignment(assign("DNS_Response", "TTL", lit(120u64))),
        )
        .build()
        .expect("case 5 bridge is well-formed")
}

/// Case 6 — **Bonjour → SLP**: a Bonjour browser's question answered by
/// an SLP service (the Fig. 10 chain reversed).
pub fn bonjour_to_slp() -> MergedAutomaton {
    MergedAutomaton::builder("bonjour-to-slp")
        .part(mdns::service_automaton())
        .part(slp::client_automaton())
        .equivalence("SLPSrvRequest", &["DNS_Question"])
        .equivalence("DNS_Response", &["SLPSrvReply"])
        .delta(
            Delta::new("DNS:d1", "SLP:p0")
                .assignment(assign(
                    "SLPSrvRequest",
                    "SRVType",
                    func("dns-to-slp-type", vec![field("DNS_Question", "QName")]),
                ))
                .assignment(assign("SLPSrvRequest", "Version", lit(2u64)))
                .assignment(assign("SLPSrvRequest", "XID", field("DNS_Question", "ID")))
                .assignment(assign("SLPSrvRequest", "LangTag", lit("en"))),
        )
        .delta(
            Delta::new("SLP:p2", "DNS:d1")
                .assignment(assign("DNS_Response", "RData", field("SLPSrvReply", "URLEntry")))
                .assignment(assign("DNS_Response", "ID", field("DNS_Question", "ID")))
                .assignment(assign("DNS_Response", "AName", field("DNS_Question", "QName")))
                .assignment(assign("DNS_Response", "ANCount", lit(1u64)))
                .assignment(assign("DNS_Response", "AType", lit(u64::from(mdns::TYPE_PTR))))
                .assignment(assign("DNS_Response", "AClass", lit(u64::from(mdns::CLASS_IN))))
                .assignment(assign("DNS_Response", "TTL", lit(120u64))),
        )
        .build()
        .expect("case 6 bridge is well-formed")
}

/// The six bridge cases of Fig. 12(b), in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BridgeCase {
    /// Case 1: SLP client, UPnP device.
    SlpToUpnp,
    /// Case 2: SLP client, Bonjour responder.
    SlpToBonjour,
    /// Case 3: UPnP control point, SLP service.
    UpnpToSlp,
    /// Case 4: UPnP control point, Bonjour responder.
    UpnpToBonjour,
    /// Case 5: Bonjour browser, UPnP device.
    BonjourToUpnp,
    /// Case 6: Bonjour browser, SLP service.
    BonjourToSlp,
}

impl BridgeCase {
    /// All six cases in paper order.
    pub fn all() -> [BridgeCase; 6] {
        [
            BridgeCase::SlpToUpnp,
            BridgeCase::SlpToBonjour,
            BridgeCase::UpnpToSlp,
            BridgeCase::UpnpToBonjour,
            BridgeCase::BonjourToUpnp,
            BridgeCase::BonjourToSlp,
        ]
    }

    /// The paper's case number (1–6).
    pub fn number(&self) -> usize {
        match self {
            BridgeCase::SlpToUpnp => 1,
            BridgeCase::SlpToBonjour => 2,
            BridgeCase::UpnpToSlp => 3,
            BridgeCase::UpnpToBonjour => 4,
            BridgeCase::BonjourToUpnp => 5,
            BridgeCase::BonjourToSlp => 6,
        }
    }

    /// The paper's row label.
    pub fn name(&self) -> &'static str {
        match self {
            BridgeCase::SlpToUpnp => "SLP to UPnP",
            BridgeCase::SlpToBonjour => "SLP to Bonjour",
            BridgeCase::UpnpToSlp => "UPnP to SLP",
            BridgeCase::UpnpToBonjour => "UPnP to Bonjour",
            BridgeCase::BonjourToUpnp => "Bonjour to UPnP",
            BridgeCase::BonjourToSlp => "Bonjour to SLP",
        }
    }

    /// Builds the merged automaton for this case; `bridge_host` is the
    /// address the bridge is deployed on (needed by the reverse cases'
    /// LOCATION header).
    pub fn build(&self, bridge_host: &str) -> MergedAutomaton {
        match self {
            BridgeCase::SlpToUpnp => slp_to_upnp(),
            BridgeCase::SlpToBonjour => slp_to_bonjour(),
            BridgeCase::UpnpToSlp => upnp_to_slp(bridge_host),
            BridgeCase::UpnpToBonjour => upnp_to_bonjour(bridge_host),
            BridgeCase::BonjourToUpnp => bonjour_to_upnp(),
            BridgeCase::BonjourToSlp => bonjour_to_slp(),
        }
    }

    /// The paper's Fig. 12(b) median translation time in milliseconds
    /// (for shape comparison in the benches).
    pub fn paper_median_ms(&self) -> u64 {
        match self {
            BridgeCase::SlpToUpnp => 337,
            BridgeCase::SlpToBonjour => 271,
            BridgeCase::UpnpToSlp => 6_311,
            BridgeCase::UpnpToBonjour => 289,
            BridgeCase::BonjourToUpnp => 359,
            BridgeCase::BonjourToSlp => 6_190,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_automata::uncovered_mandatory_fields;
    use starlink_mdl::{load_mdl, MdlCodec};

    #[test]
    fn all_six_bridges_satisfy_merge_constraints() {
        for case in BridgeCase::all() {
            let merged = case.build("10.0.0.2");
            let report = merged.check_merge();
            assert!(report.is_mergeable(), "case {} ({}): {report}", case.number(), case.name());
        }
    }

    #[test]
    fn two_part_bridges_are_strongly_merged_chains_are_weak() {
        // SLP↔Bonjour pairs merge strongly (δ both ways); the three-part
        // chains involving HTTP are only weakly merged — exactly the
        // distinction §III-C draws for Fig. 4.
        assert!(slp_to_bonjour().check_merge().strongly_merged);
        assert!(bonjour_to_slp().check_merge().strongly_merged);
        assert!(!slp_to_upnp().check_merge().strongly_merged);
        assert!(slp_to_upnp().check_merge().weakly_merged);
    }

    #[test]
    fn translation_logic_covers_mandatory_fields() {
        // The ⊨ check of equation (1): every mandatory field of every
        // composed message is covered by an assignment (or a schema
        // default).
        let codecs: Vec<MdlCodec> = [
            crate::slp::mdl_xml(),
            crate::mdns::mdl_xml(),
            crate::ssdp::mdl_xml(),
            crate::http::mdl_xml(),
        ]
        .iter()
        .map(|xml| MdlCodec::generate(load_mdl(xml).unwrap()).unwrap())
        .collect();
        for case in BridgeCase::all() {
            let merged = case.build("10.0.0.2");
            let assignments: Vec<_> = merged.assignments().cloned().collect();
            for decl in merged.equivalences().declarations() {
                let Some(schema) = codecs.iter().find_map(|c| c.schema(&decl.target).ok()) else {
                    panic!("no schema for {}", decl.target);
                };
                let blank = schema.instantiate();
                let uncovered = uncovered_mandatory_fields(&blank, &assignments);
                assert!(
                    uncovered.is_empty(),
                    "case {}: {} leaves mandatory fields unfilled: {uncovered:?}",
                    case.number(),
                    decl.target
                );
            }
        }
    }

    #[test]
    fn bridge_xml_roundtrip() {
        // Every bridge survives export to the Fig. 5/8 XML document form
        // and reloading — the "models only" claim. The XML document form
        // is canonical (XPath selectors carry explicit field-shape
        // constraints that the programmatic dotted form leaves open), so
        // the invariant is that export∘load is a fixed point and the
        // reloaded bridge still satisfies the merge constraints.
        for case in BridgeCase::all() {
            let merged = case.build("10.0.0.2");
            let xml = starlink_automata::bridge_to_xml(&merged);
            let reloaded = starlink_automata::load_bridge(&xml)
                .unwrap_or_else(|e| panic!("case {}: {e}", case.number()));
            assert_eq!(
                xml,
                starlink_automata::bridge_to_xml(&reloaded),
                "case {}: XML form is not a fixed point",
                case.number()
            );
            assert!(reloaded.check_merge().is_mergeable(), "case {}", case.number());
        }
    }

    #[test]
    fn case_metadata() {
        assert_eq!(BridgeCase::all().len(), 6);
        assert_eq!(BridgeCase::SlpToUpnp.number(), 1);
        assert_eq!(BridgeCase::BonjourToSlp.name(), "Bonjour to SLP");
        assert!(BridgeCase::UpnpToSlp.paper_median_ms() > 6_000);
    }
}
