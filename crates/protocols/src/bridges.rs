//! The case-study bridges: merged automata (with translation logic and
//! λ actions) for every ordered pair of the four discovery protocol
//! families. Cases 1 and 2 are the paper's Figs. 4 and 10; cases 3–6
//! complete the paper's 3×2 matrix; cases 7–12 extend it to the full
//! 4×3 matrix with WS-Discovery — the fourth family, which the paper's
//! models-only claim predicts should multiply cases, not code.
//!
//! The four WSD↔{SLP, Bonjour} two-part bridges are **not hand-written**:
//! they are produced by [`starlink_core::synthesize_bridge`] from the
//! loaded MDLs plus a small per-pair [`Ontology`] (field concepts,
//! vocabulary conversions, protocol constants) — the §VII "generate the
//! merge at runtime" path promoted from example to production bridge.
//! Only the two three-part UPnP chains (WSD↔UPnP spans SSDP + HTTP) use
//! the explicit builder, exactly like the paper's own chain cases.
//!
//! In the reverse cases (UPnP or Bonjour clients discovering an SLP/
//! Bonjour service) the bridge itself serves the device-description HTTP
//! GET, so its SSDP response LOCATION points at the bridge host — which
//! is why those constructors take `bridge_host`.

use crate::calibration::Calibration;
use crate::{http, mdns, slp, ssdp, wsd};
use starlink_automata::{
    Assignment, ColoredAutomaton, Delta, MergedAutomaton, NetworkAction, ValueSource,
};
use starlink_core::{synthesize_bridge, FieldCorrelator, Ontology, Starlink};
use starlink_message::Value;
use starlink_net::SimDuration;

/// Loads the five protocol MDLs into a framework instance (the model-
/// loading step every deployment starts with).
///
/// # Errors
///
/// Propagates MDL loading failures (impossible for the embedded specs
/// unless they are edited).
pub fn load_all_mdls(starlink: &mut Starlink) -> starlink_core::Result<()> {
    starlink.load_mdl_xml(slp::mdl_xml())?;
    starlink.load_mdl_xml(mdns::mdl_xml())?;
    starlink.load_mdl_xml(ssdp::mdl_xml())?;
    starlink.load_mdl_xml(http::mdl_xml())?;
    starlink.load_mdl_xml(wsd::mdl_xml())?;
    Ok(())
}

/// The session correlator matching every id-bearing protocol of the
/// matrix: SLP's `XID`, DNS's `ID`, and WS-Discovery's uuid correlation
/// (a Probe keys on its `MessageID`; the ProbeMatch echoing it keys on
/// `RelatesTo`, so request and response meet in one session).
///
/// **Caveat — UPnP-source cases.** SSDP M-SEARCH carries no client-side
/// transaction id at all, so the ids the bridge *composes* on behalf of
/// UPnP clients are constants per service type (case 3's `XID = 42`,
/// case 12's `MessageID = derive-uuid(ST)`): under this correlator,
/// concurrent UPnP-source sessions searching the same type would
/// cross-correlate on the target side. Leave the correlator unset for
/// those deployments (the default) — source-address keying plus
/// oldest-waiting-receiver routing disambiguates them, as every harness
/// in this repository does.
///
/// **Caveat — id width.** SLP's `XID` and DNS's `ID` are 16 bits *on
/// the wire*, so the `uuid-to-id` translation of a WSD-source case
/// compresses 128-bit uuids into that space: with many concurrent
/// sessions, birthday collisions on the composed target-side id are
/// possible (exactly as they are between independent native SLP clients
/// choosing random XIDs). The correlator makes such a collision route
/// both replies to the elder session; without it the oldest-waiting-
/// receiver rule applies. Deployments needing collision-free
/// correlation at scale should correlate only on the WSD side (where
/// the full uuid keys the session).
pub fn default_correlator() -> FieldCorrelator {
    FieldCorrelator::new([("SLP", "XID"), ("DNS", "ID")])
        .message_field("WSD_Probe", "MessageID")
        .message_field("WSD_ProbeMatch", "RelatesTo")
}

fn lit(value: impl Into<Value>) -> ValueSource {
    ValueSource::literal(value)
}

fn field(message: &str, path: &str) -> ValueSource {
    ValueSource::field(message, path)
}

fn func(name: &str, args: Vec<ValueSource>) -> ValueSource {
    ValueSource::function(name, args)
}

fn assign(target: &str, path: &str, source: ValueSource) -> Assignment {
    Assignment::new(target, path, source)
}

/// Fills the constant start-line and header fields of an outgoing
/// `SSDP_M-Search`, plus its translated `ST`.
fn msearch_assignments(delta: Delta, st_source: ValueSource) -> Delta {
    delta
        .assignment(assign("SSDP_M-Search", "URI", lit("*")))
        .assignment(assign("SSDP_M-Search", "Version", lit("HTTP/1.1")))
        .assignment(assign(
            "SSDP_M-Search",
            "HOST",
            lit(format!("{}:{}", ssdp::SSDP_GROUP, ssdp::SSDP_PORT)),
        ))
        .assignment(assign("SSDP_M-Search", "MAN", lit("\"ssdp:discover\"")))
        .assignment(assign("SSDP_M-Search", "MX", lit(2u64)))
        .assignment(assign("SSDP_M-Search", "ST", st_source))
}

/// Fills an outgoing `SSDP_Resp` whose LOCATION points at the bridge's
/// own HTTP listener (reverse cases).
fn ssdp_resp_assignments(delta: Delta, bridge_host: &str, st_source: ValueSource) -> Delta {
    delta
        .assignment(assign("SSDP_Resp", "URI", lit("200")))
        .assignment(assign("SSDP_Resp", "Version", lit("OK")))
        .assignment(assign("SSDP_Resp", "CACHE-CONTROL", lit("max-age=1800")))
        .assignment(assign(
            "SSDP_Resp",
            "LOCATION",
            lit(format!("http://{bridge_host}:{}/desc.xml", http::HTTP_PORT)),
        ))
        .assignment(assign("SSDP_Resp", "ST", st_source))
        .assignment(assign("SSDP_Resp", "USN", lit("uuid:starlink-bridge")))
}

/// The `set_host` λ of Fig. 5 line 11: point the next TCP connection at
/// the host/port named by the SSDP response's LOCATION header.
fn set_host_from_location() -> NetworkAction {
    NetworkAction::set_host(
        func("url-host", vec![field("SSDP_Resp", "LOCATION")]),
        func("url-port", vec![field("SSDP_Resp", "LOCATION")]),
    )
}

/// Fills the GET the bridge issues for the device description.
fn http_get_assignments(delta: Delta) -> Delta {
    delta
        .assignment(assign(
            "HTTP_GET",
            "URI",
            func("url-path", vec![field("SSDP_Resp", "LOCATION")]),
        ))
        .assignment(assign("HTTP_GET", "Version", lit("HTTP/1.1")))
        .assignment(assign(
            "HTTP_GET",
            "HOST",
            func(
                "concat",
                vec![
                    func("url-host", vec![field("SSDP_Resp", "LOCATION")]),
                    lit(":"),
                    func("to-text", vec![func("url-port", vec![field("SSDP_Resp", "LOCATION")])]),
                ],
            ),
        ))
}

/// Fills the description document the bridge serves in the reverse
/// cases, embedding the discovered URL.
fn http_ok_assignments(delta: Delta, url_source: ValueSource) -> Delta {
    delta
        .assignment(assign("HTTP_OK", "URI", lit("200")))
        .assignment(assign("HTTP_OK", "Version", lit("OK")))
        .assignment(assign("HTTP_OK", "CONTENT-TYPE", lit("text/xml")))
        .assignment(assign(
            "HTTP_OK",
            "Body",
            func("concat", vec![lit("<root><URLBase>"), url_source, lit("</URLBase></root>")]),
        ))
}

/// Case 1 — **SLP → UPnP** (Fig. 4): an SLP client's lookup answered by
/// a UPnP device, chaining SLP, SSDP and HTTP.
pub fn slp_to_upnp() -> MergedAutomaton {
    MergedAutomaton::builder("slp-to-upnp")
        .part(slp::service_automaton())
        .part(ssdp::client_automaton())
        .part(http::client_automaton(http::HTTP_PORT))
        .equivalence("SSDP_M-Search", &["SLPSrvRequest"])
        .equivalence("HTTP_GET", &["SSDP_Resp"])
        .equivalence("SLPSrvReply", &["HTTP_OK"])
        .delta(msearch_assignments(
            Delta::new("SLP:s1", "SSDP:s0"),
            func("slp-to-ssdp-type", vec![field("SLPSrvRequest", "SRVType")]),
        ))
        .delta(http_get_assignments(
            Delta::new("SSDP:s2", "HTTP:h0").action(set_host_from_location()),
        ))
        .delta(
            Delta::new("HTTP:h2", "SLP:s1")
                .assignment(assign(
                    "SLPSrvReply",
                    "URLEntry",
                    func("extract-tag", vec![field("HTTP_OK", "Body"), lit("URLBase")]),
                ))
                .assignment(assign("SLPSrvReply", "XID", field("SLPSrvRequest", "XID")))
                .assignment(assign("SLPSrvReply", "LangTag", field("SLPSrvRequest", "LangTag")))
                .assignment(assign("SLPSrvReply", "Version", lit(2u64)))
                .assignment(assign("SLPSrvReply", "LifeTime", lit(60u64))),
        )
        .build()
        .expect("case 1 bridge is well-formed")
}

/// Case 2 — **SLP → Bonjour** (Fig. 10): an SLP client's lookup answered
/// by a Bonjour responder.
pub fn slp_to_bonjour() -> MergedAutomaton {
    MergedAutomaton::builder("slp-to-bonjour")
        .part(slp::service_automaton())
        .part(mdns::client_automaton())
        .equivalence("DNS_Question", &["SLPSrvRequest"])
        .equivalence("SLPSrvReply", &["DNS_Response"])
        .delta(
            Delta::new("SLP:s1", "DNS:s0")
                .assignment(assign(
                    "DNS_Question",
                    "QName",
                    func("slp-to-dns-type", vec![field("SLPSrvRequest", "SRVType")]),
                ))
                .assignment(assign("DNS_Question", "ID", field("SLPSrvRequest", "XID")))
                .assignment(assign("DNS_Question", "QDCount", lit(1u64)))
                .assignment(assign("DNS_Question", "QType", lit(u64::from(mdns::TYPE_PTR))))
                .assignment(assign("DNS_Question", "QClass", lit(u64::from(mdns::CLASS_IN)))),
        )
        .delta(
            Delta::new("DNS:s2", "SLP:s1")
                .assignment(assign("SLPSrvReply", "URLEntry", field("DNS_Response", "RData")))
                .assignment(assign("SLPSrvReply", "XID", field("SLPSrvRequest", "XID")))
                .assignment(assign("SLPSrvReply", "LangTag", field("SLPSrvRequest", "LangTag")))
                .assignment(assign("SLPSrvReply", "Version", lit(2u64)))
                .assignment(assign("SLPSrvReply", "LifeTime", lit(60u64))),
        )
        .build()
        .expect("case 2 bridge is well-formed")
}

/// Case 3 — **UPnP → SLP**: a UPnP control point's search answered by an
/// SLP service; the bridge also serves the description GET, so LOCATION
/// names `bridge_host`.
pub fn upnp_to_slp(bridge_host: &str) -> MergedAutomaton {
    MergedAutomaton::builder("upnp-to-slp")
        .part(ssdp::service_automaton())
        .part(slp::client_automaton())
        .part(http::server_automaton(http::HTTP_PORT))
        .equivalence("SLPSrvRequest", &["SSDP_M-Search"])
        .equivalence("SSDP_Resp", &["SLPSrvReply"])
        .equivalence("HTTP_OK", &["SLPSrvReply"])
        .delta(
            Delta::new("SSDP:r1", "SLP:p0")
                .assignment(assign(
                    "SLPSrvRequest",
                    "SRVType",
                    func("ssdp-to-slp-type", vec![field("SSDP_M-Search", "ST")]),
                ))
                .assignment(assign("SLPSrvRequest", "Version", lit(2u64)))
                .assignment(assign("SLPSrvRequest", "XID", lit(42u64)))
                .assignment(assign("SLPSrvRequest", "LangTag", lit("en"))),
        )
        .delta(ssdp_resp_assignments(
            Delta::new("SLP:p2", "SSDP:r1"),
            bridge_host,
            field("SSDP_M-Search", "ST"),
        ))
        .delta(http_ok_assignments(
            Delta::new("SSDP:r2", "HTTP:g0"),
            field("SLPSrvReply", "URLEntry"),
        ))
        .build()
        .expect("case 3 bridge is well-formed")
}

/// Case 4 — **UPnP → Bonjour**: a UPnP control point's search answered by
/// a Bonjour responder; the bridge serves the description GET.
pub fn upnp_to_bonjour(bridge_host: &str) -> MergedAutomaton {
    MergedAutomaton::builder("upnp-to-bonjour")
        .part(ssdp::service_automaton())
        .part(mdns::client_automaton())
        .part(http::server_automaton(http::HTTP_PORT))
        .equivalence("DNS_Question", &["SSDP_M-Search"])
        .equivalence("SSDP_Resp", &["DNS_Response"])
        .equivalence("HTTP_OK", &["DNS_Response"])
        .delta(
            Delta::new("SSDP:r1", "DNS:s0")
                .assignment(assign(
                    "DNS_Question",
                    "QName",
                    func(
                        "slp-to-dns-type",
                        vec![func("ssdp-to-slp-type", vec![field("SSDP_M-Search", "ST")])],
                    ),
                ))
                .assignment(assign("DNS_Question", "ID", lit(1u64)))
                .assignment(assign("DNS_Question", "QDCount", lit(1u64)))
                .assignment(assign("DNS_Question", "QType", lit(u64::from(mdns::TYPE_PTR))))
                .assignment(assign("DNS_Question", "QClass", lit(u64::from(mdns::CLASS_IN)))),
        )
        .delta(ssdp_resp_assignments(
            Delta::new("DNS:s2", "SSDP:r1"),
            bridge_host,
            field("SSDP_M-Search", "ST"),
        ))
        .delta(http_ok_assignments(
            Delta::new("SSDP:r2", "HTTP:g0"),
            field("DNS_Response", "RData"),
        ))
        .build()
        .expect("case 4 bridge is well-formed")
}

/// Case 5 — **Bonjour → UPnP**: a Bonjour browser's question answered by
/// a UPnP device (the Fig. 4 chain with mDNS in place of SLP).
pub fn bonjour_to_upnp() -> MergedAutomaton {
    MergedAutomaton::builder("bonjour-to-upnp")
        .part(mdns::service_automaton())
        .part(ssdp::client_automaton())
        .part(http::client_automaton(http::HTTP_PORT))
        .equivalence("SSDP_M-Search", &["DNS_Question"])
        .equivalence("HTTP_GET", &["SSDP_Resp"])
        .equivalence("DNS_Response", &["HTTP_OK"])
        .delta(msearch_assignments(
            Delta::new("DNS:d1", "SSDP:s0"),
            func(
                "slp-to-ssdp-type",
                vec![func("dns-to-slp-type", vec![field("DNS_Question", "QName")])],
            ),
        ))
        .delta(http_get_assignments(
            Delta::new("SSDP:s2", "HTTP:h0").action(set_host_from_location()),
        ))
        .delta(
            Delta::new("HTTP:h2", "DNS:d1")
                .assignment(assign(
                    "DNS_Response",
                    "RData",
                    func("extract-tag", vec![field("HTTP_OK", "Body"), lit("URLBase")]),
                ))
                .assignment(assign("DNS_Response", "ID", field("DNS_Question", "ID")))
                .assignment(assign("DNS_Response", "AName", field("DNS_Question", "QName")))
                .assignment(assign("DNS_Response", "ANCount", lit(1u64)))
                .assignment(assign("DNS_Response", "AType", lit(u64::from(mdns::TYPE_PTR))))
                .assignment(assign("DNS_Response", "AClass", lit(u64::from(mdns::CLASS_IN))))
                .assignment(assign("DNS_Response", "TTL", lit(120u64))),
        )
        .build()
        .expect("case 5 bridge is well-formed")
}

/// Case 6 — **Bonjour → SLP**: a Bonjour browser's question answered by
/// an SLP service (the Fig. 10 chain reversed).
pub fn bonjour_to_slp() -> MergedAutomaton {
    MergedAutomaton::builder("bonjour-to-slp")
        .part(mdns::service_automaton())
        .part(slp::client_automaton())
        .equivalence("SLPSrvRequest", &["DNS_Question"])
        .equivalence("DNS_Response", &["SLPSrvReply"])
        .delta(
            Delta::new("DNS:d1", "SLP:p0")
                .assignment(assign(
                    "SLPSrvRequest",
                    "SRVType",
                    func("dns-to-slp-type", vec![field("DNS_Question", "QName")]),
                ))
                .assignment(assign("SLPSrvRequest", "Version", lit(2u64)))
                .assignment(assign("SLPSrvRequest", "XID", field("DNS_Question", "ID")))
                .assignment(assign("SLPSrvRequest", "LangTag", lit("en"))),
        )
        .delta(
            Delta::new("SLP:p2", "DNS:d1")
                .assignment(assign("DNS_Response", "RData", field("SLPSrvReply", "URLEntry")))
                .assignment(assign("DNS_Response", "ID", field("DNS_Question", "ID")))
                .assignment(assign("DNS_Response", "AName", field("DNS_Question", "QName")))
                .assignment(assign("DNS_Response", "ANCount", lit(1u64)))
                .assignment(assign("DNS_Response", "AType", lit(u64::from(mdns::TYPE_PTR))))
                .assignment(assign("DNS_Response", "AClass", lit(u64::from(mdns::CLASS_IN))))
                .assignment(assign("DNS_Response", "TTL", lit(120u64))),
        )
        .build()
        .expect("case 6 bridge is well-formed")
}

/// A framework instance with every embedded MDL loaded — what the
/// synthesis-driven WSD constructors reason over. Loaded once per
/// process: the embedded specs never change, and test harnesses build
/// bridges hundreds of times (proptests draw cases per iteration), so
/// re-parsing five XML documents per `build` would be pure waste.
fn synthesis_framework() -> &'static Starlink {
    static FRAMEWORK: std::sync::OnceLock<Starlink> = std::sync::OnceLock::new();
    FRAMEWORK.get_or_init(|| {
        let mut framework = Starlink::new();
        load_all_mdls(&mut framework).expect("embedded MDLs load");
        framework
    })
}

/// The WS-Discovery field concepts shared by every WSD ontology: probe
/// ids are uuids, the match echoes the probe's uuid in `RelatesTo`,
/// carries a fresh `reply-uuid`, and delivers the discovery payload in
/// `XAddrs`.
fn wsd_concepts(ontology: Ontology) -> Ontology {
    ontology
        .concept("WSD_Probe", "MessageID", "uuid")
        .concept("WSD_Probe", "Types", "svc-wsd")
        .concept("WSD_ProbeMatch", "MessageID", "reply-uuid")
        .concept("WSD_ProbeMatch", "RelatesTo", "uuid")
        .concept("WSD_ProbeMatch", "XAddrs", "url")
        .constant("WSD_ProbeMatch", "Metadata", wsd::DEFAULT_METADATA)
}

/// The raw synthesis inputs of every ontology-synthesized bridge case —
/// `(case, service-side automaton, client-side automaton, ontology)` —
/// so `starlink-check` and the conformance tests can verify the
/// ontologies themselves (totality, conversion compatibility, unused
/// concepts) independently of the synthesized product. Cases 9 and 12
/// are hand-built three-part UPnP chains and carry no ontology.
pub fn synthesized_inputs() -> Vec<(BridgeCase, ColoredAutomaton, ColoredAutomaton, Ontology)> {
    vec![
        (
            BridgeCase::WsdToSlp,
            wsd::service_automaton(),
            slp::client_automaton(),
            wsd_to_slp_ontology(),
        ),
        (
            BridgeCase::WsdToBonjour,
            wsd::service_automaton(),
            mdns::client_automaton(),
            wsd_to_bonjour_ontology(),
        ),
        (
            BridgeCase::SlpToWsd,
            slp::service_automaton(),
            wsd::client_automaton(),
            slp_to_wsd_ontology(),
        ),
        (
            BridgeCase::BonjourToWsd,
            mdns::service_automaton(),
            wsd::client_automaton(),
            bonjour_to_wsd_ontology(),
        ),
    ]
}

/// Case 7 — **WSD → SLP**: a legacy WS-Discovery probe answered by an
/// SLP service. Synthesized from the models: the ontology names the
/// semantic matches, [`synthesize_bridge`] infers the δs, equivalences
/// and translation logic.
pub fn wsd_to_slp() -> MergedAutomaton {
    synthesize_bridge(
        synthesis_framework(),
        "wsd-to-slp",
        wsd::service_automaton(),
        slp::client_automaton(),
        &wsd_to_slp_ontology(),
    )
    .expect("case 7 bridge synthesizes")
}

/// The ontology case 7 is synthesized from.
fn wsd_to_slp_ontology() -> Ontology {
    wsd_concepts(Ontology::new())
        .concept("SLPSrvRequest", "SRVType", "svc-slp")
        .concept("SLPSrvRequest", "XID", "txn")
        .concept("SLPSrvReply", "URLEntry", "url")
        .conversion("svc-wsd", "svc-slp", "wsd-to-slp-type")
        .conversion("uuid", "txn", "uuid-to-id")
        .conversion("uuid", "reply-uuid", "derive-uuid")
        .constant("SLPSrvRequest", "Version", 2u64)
        .constant("SLPSrvRequest", "LangTag", "en")
}

/// Case 8 — **WSD → Bonjour**: a legacy WS-Discovery probe answered by a
/// Bonjour responder. Synthesized from the models.
pub fn wsd_to_bonjour() -> MergedAutomaton {
    synthesize_bridge(
        synthesis_framework(),
        "wsd-to-bonjour",
        wsd::service_automaton(),
        mdns::client_automaton(),
        &wsd_to_bonjour_ontology(),
    )
    .expect("case 8 bridge synthesizes")
}

/// The ontology case 8 is synthesized from.
fn wsd_to_bonjour_ontology() -> Ontology {
    wsd_concepts(Ontology::new())
        .concept("DNS_Question", "QName", "svc-dns")
        .concept("DNS_Question", "ID", "txn")
        .concept("DNS_Response", "RData", "url")
        .conversion("svc-wsd", "svc-dns", "wsd-to-dns-type")
        .conversion("uuid", "txn", "uuid-to-id")
        .conversion("uuid", "reply-uuid", "derive-uuid")
        .constant("DNS_Question", "QDCount", 1u64)
        .constant("DNS_Question", "QType", u64::from(mdns::TYPE_PTR))
        .constant("DNS_Question", "QClass", u64::from(mdns::CLASS_IN))
}

/// Case 9 — **WSD → UPnP**: a legacy WS-Discovery probe answered by a
/// UPnP device — the Fig. 4 chain with WSD in place of SLP: the bridge
/// searches over SSDP, follows LOCATION with an HTTP GET, and answers
/// the probe with the description's URLBase in `XAddrs`.
pub fn wsd_to_upnp() -> MergedAutomaton {
    MergedAutomaton::builder("wsd-to-upnp")
        .part(wsd::service_automaton())
        .part(ssdp::client_automaton())
        .part(http::client_automaton(http::HTTP_PORT))
        .equivalence("SSDP_M-Search", &["WSD_Probe"])
        .equivalence("HTTP_GET", &["SSDP_Resp"])
        .equivalence("WSD_ProbeMatch", &["HTTP_OK"])
        .delta(msearch_assignments(
            Delta::new("WSD:v1", "SSDP:s0"),
            func(
                "slp-to-ssdp-type",
                vec![func("wsd-to-slp-type", vec![field("WSD_Probe", "Types")])],
            ),
        ))
        .delta(http_get_assignments(
            Delta::new("SSDP:s2", "HTTP:h0").action(set_host_from_location()),
        ))
        .delta(wsd_probe_match_assignments(
            Delta::new("HTTP:h2", "WSD:v1"),
            func("extract-tag", vec![field("HTTP_OK", "Body"), lit("URLBase")]),
        ))
        .build()
        .expect("case 9 bridge is well-formed")
}

/// Case 10 — **SLP → WSD**: an SLP client's lookup answered by a
/// WS-Discovery target. Synthesized from the models.
pub fn slp_to_wsd() -> MergedAutomaton {
    synthesize_bridge(
        synthesis_framework(),
        "slp-to-wsd",
        slp::service_automaton(),
        wsd::client_automaton(),
        &slp_to_wsd_ontology(),
    )
    .expect("case 10 bridge synthesizes")
}

/// The ontology case 10 is synthesized from.
fn slp_to_wsd_ontology() -> Ontology {
    wsd_concepts(Ontology::new())
        .concept("SLPSrvRequest", "SRVType", "svc-slp")
        .concept("SLPSrvRequest", "XID", "txn")
        .concept("SLPSrvReply", "XID", "txn")
        .concept("SLPSrvReply", "URLEntry", "url")
        .conversion("svc-slp", "svc-wsd", "slp-to-wsd-type")
        .conversion("txn", "uuid", "derive-uuid")
        .constant("SLPSrvReply", "Version", 2u64)
        .constant("SLPSrvReply", "LifeTime", 60u64)
}

/// Case 11 — **Bonjour → WSD**: a Bonjour browser's question answered by
/// a WS-Discovery target. Synthesized from the models.
pub fn bonjour_to_wsd() -> MergedAutomaton {
    synthesize_bridge(
        synthesis_framework(),
        "bonjour-to-wsd",
        mdns::service_automaton(),
        wsd::client_automaton(),
        &bonjour_to_wsd_ontology(),
    )
    .expect("case 11 bridge synthesizes")
}

/// The ontology case 11 is synthesized from.
fn bonjour_to_wsd_ontology() -> Ontology {
    wsd_concepts(Ontology::new())
        .concept("DNS_Question", "QName", "svc-dns")
        .concept("DNS_Question", "ID", "txn")
        .concept("DNS_Response", "ID", "txn")
        .concept("DNS_Response", "AName", "svc-dns")
        .concept("DNS_Response", "RData", "url")
        .conversion("svc-dns", "svc-wsd", "dns-to-wsd-type")
        .conversion("txn", "uuid", "derive-uuid")
        .constant("DNS_Response", "ANCount", 1u64)
        .constant("DNS_Response", "RType", u64::from(mdns::TYPE_PTR))
        .constant("DNS_Response", "RClass", u64::from(mdns::CLASS_IN))
        .constant("DNS_Response", "TTL", 120u64)
}

/// Case 12 — **UPnP → WSD**: a UPnP control point's search answered by a
/// WS-Discovery target; the bridge serves the description GET, embedding
/// the target's `XAddrs`.
///
/// The probe's `MessageID` is derived from the search target (SSDP
/// M-SEARCH carries no per-client id to seed from — the same limitation
/// as case 3's constant `XID`), so concurrent same-type sessions share
/// it; see [`default_correlator`] for why such deployments rely on
/// source-address keying instead.
pub fn upnp_to_wsd(bridge_host: &str) -> MergedAutomaton {
    MergedAutomaton::builder("upnp-to-wsd")
        .part(ssdp::service_automaton())
        .part(wsd::client_automaton())
        .part(http::server_automaton(http::HTTP_PORT))
        .equivalence("WSD_Probe", &["SSDP_M-Search"])
        .equivalence("SSDP_Resp", &["WSD_ProbeMatch"])
        .equivalence("HTTP_OK", &["WSD_ProbeMatch"])
        .delta(
            Delta::new("SSDP:r1", "WSD:w0")
                .assignment(assign(
                    "WSD_Probe",
                    "Types",
                    func(
                        "slp-to-wsd-type",
                        vec![func("ssdp-to-slp-type", vec![field("SSDP_M-Search", "ST")])],
                    ),
                ))
                .assignment(assign(
                    "WSD_Probe",
                    "MessageID",
                    func("derive-uuid", vec![field("SSDP_M-Search", "ST")]),
                )),
        )
        .delta(ssdp_resp_assignments(
            Delta::new("WSD:w2", "SSDP:r1"),
            bridge_host,
            field("SSDP_M-Search", "ST"),
        ))
        .delta(http_ok_assignments(
            Delta::new("SSDP:r2", "HTTP:g0"),
            field("WSD_ProbeMatch", "XAddrs"),
        ))
        .build()
        .expect("case 12 bridge is well-formed")
}

/// Fills an outgoing `WSD_ProbeMatch` (the WSD-source chain case):
/// `RelatesTo` echoes the probe's uuid, the reply uuid is derived from
/// it, and `XAddrs` carries the translated discovery payload.
/// `MetadataLength` is not assigned — the text composer recomputes it
/// from the metadata blob (`f-length`).
fn wsd_probe_match_assignments(delta: Delta, xaddrs_source: ValueSource) -> Delta {
    delta
        .assignment(assign("WSD_ProbeMatch", "XAddrs", xaddrs_source))
        .assignment(assign("WSD_ProbeMatch", "RelatesTo", field("WSD_Probe", "MessageID")))
        .assignment(assign(
            "WSD_ProbeMatch",
            "MessageID",
            func("derive-uuid", vec![field("WSD_Probe", "MessageID")]),
        ))
        .assignment(assign("WSD_ProbeMatch", "Types", field("WSD_Probe", "Types")))
        .assignment(assign("WSD_ProbeMatch", "Metadata", lit(wsd::DEFAULT_METADATA)))
}

/// The protocol family on one side of a bridge case — what a harness
/// needs to pick the right legacy client or service for a case without
/// matching on all twelve cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Service Location Protocol.
    Slp,
    /// UPnP (SSDP discovery + HTTP description retrieval).
    Upnp,
    /// Bonjour / mDNS.
    Bonjour,
    /// WS-Discovery (SOAP-over-UDP).
    Wsd,
}

impl Family {
    /// Human-readable family name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Slp => "SLP",
            Family::Upnp => "UPnP",
            Family::Bonjour => "Bonjour",
            Family::Wsd => "WSD",
        }
    }
}

/// The twelve bridge cases: the paper's Fig. 12(b) six in the paper's
/// order, followed by the six WS-Discovery pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BridgeCase {
    /// Case 1: SLP client, UPnP device.
    SlpToUpnp,
    /// Case 2: SLP client, Bonjour responder.
    SlpToBonjour,
    /// Case 3: UPnP control point, SLP service.
    UpnpToSlp,
    /// Case 4: UPnP control point, Bonjour responder.
    UpnpToBonjour,
    /// Case 5: Bonjour browser, UPnP device.
    BonjourToUpnp,
    /// Case 6: Bonjour browser, SLP service.
    BonjourToSlp,
    /// Case 7: WS-Discovery probe client, SLP service.
    WsdToSlp,
    /// Case 8: WS-Discovery probe client, Bonjour responder.
    WsdToBonjour,
    /// Case 9: WS-Discovery probe client, UPnP device.
    WsdToUpnp,
    /// Case 10: SLP client, WS-Discovery target.
    SlpToWsd,
    /// Case 11: Bonjour browser, WS-Discovery target.
    BonjourToWsd,
    /// Case 12: UPnP control point, WS-Discovery target.
    UpnpToWsd,
}

impl BridgeCase {
    /// The one table every case count derives from: the paper's six
    /// cases in the paper's order, then the six WS-Discovery cases.
    /// Adding a protocol family means adding rows here — `all()`,
    /// `paper_cases()` and `number()` follow automatically.
    pub const ALL: [BridgeCase; 12] = [
        BridgeCase::SlpToUpnp,
        BridgeCase::SlpToBonjour,
        BridgeCase::UpnpToSlp,
        BridgeCase::UpnpToBonjour,
        BridgeCase::BonjourToUpnp,
        BridgeCase::BonjourToSlp,
        BridgeCase::WsdToSlp,
        BridgeCase::WsdToBonjour,
        BridgeCase::WsdToUpnp,
        BridgeCase::SlpToWsd,
        BridgeCase::BonjourToWsd,
        BridgeCase::UpnpToWsd,
    ];

    /// All cases of the matrix, in row order.
    ///
    /// ```
    /// use starlink_protocols::BridgeCase;
    ///
    /// assert_eq!(BridgeCase::all().len(), 12);
    /// for &case in BridgeCase::all() {
    ///     assert_eq!(BridgeCase::all()[case.number() - 1], case);
    /// }
    /// ```
    pub fn all() -> &'static [BridgeCase] {
        &Self::ALL
    }

    /// The six cases the paper's Fig. 12(b) reports (the WSD cases have
    /// no published row to compare against).
    pub fn paper_cases() -> &'static [BridgeCase] {
        &Self::ALL[..6]
    }

    /// The case number (1–12): the row's position in the one table.
    pub fn number(&self) -> usize {
        Self::ALL.iter().position(|case| case == self).expect("every case is in the table") + 1
    }

    /// The matrix row label.
    pub fn name(&self) -> &'static str {
        match self {
            BridgeCase::SlpToUpnp => "SLP to UPnP",
            BridgeCase::SlpToBonjour => "SLP to Bonjour",
            BridgeCase::UpnpToSlp => "UPnP to SLP",
            BridgeCase::UpnpToBonjour => "UPnP to Bonjour",
            BridgeCase::BonjourToUpnp => "Bonjour to UPnP",
            BridgeCase::BonjourToSlp => "Bonjour to SLP",
            BridgeCase::WsdToSlp => "WSD to SLP",
            BridgeCase::WsdToBonjour => "WSD to Bonjour",
            BridgeCase::WsdToUpnp => "WSD to UPnP",
            BridgeCase::SlpToWsd => "SLP to WSD",
            BridgeCase::BonjourToWsd => "Bonjour to WSD",
            BridgeCase::UpnpToWsd => "UPnP to WSD",
        }
    }

    /// The family of the legacy *client* this case serves (which legacy
    /// lookup application talks to the bridge).
    pub fn source(&self) -> Family {
        match self {
            BridgeCase::SlpToUpnp | BridgeCase::SlpToBonjour | BridgeCase::SlpToWsd => Family::Slp,
            BridgeCase::UpnpToSlp | BridgeCase::UpnpToBonjour | BridgeCase::UpnpToWsd => {
                Family::Upnp
            }
            BridgeCase::BonjourToUpnp | BridgeCase::BonjourToSlp | BridgeCase::BonjourToWsd => {
                Family::Bonjour
            }
            BridgeCase::WsdToSlp | BridgeCase::WsdToBonjour | BridgeCase::WsdToUpnp => Family::Wsd,
        }
    }

    /// The family of the legacy *service* this case discovers.
    pub fn target(&self) -> Family {
        match self {
            BridgeCase::UpnpToSlp | BridgeCase::BonjourToSlp | BridgeCase::WsdToSlp => Family::Slp,
            BridgeCase::SlpToUpnp | BridgeCase::BonjourToUpnp | BridgeCase::WsdToUpnp => {
                Family::Upnp
            }
            BridgeCase::SlpToBonjour | BridgeCase::UpnpToBonjour | BridgeCase::WsdToBonjour => {
                Family::Bonjour
            }
            BridgeCase::SlpToWsd | BridgeCase::BonjourToWsd | BridgeCase::UpnpToWsd => Family::Wsd,
        }
    }

    /// Builds the merged automaton for this case; `bridge_host` is the
    /// address the bridge is deployed on (needed by the reverse cases'
    /// LOCATION header).
    pub fn build(&self, bridge_host: &str) -> MergedAutomaton {
        match self {
            BridgeCase::SlpToUpnp => slp_to_upnp(),
            BridgeCase::SlpToBonjour => slp_to_bonjour(),
            BridgeCase::UpnpToSlp => upnp_to_slp(bridge_host),
            BridgeCase::UpnpToBonjour => upnp_to_bonjour(bridge_host),
            BridgeCase::BonjourToUpnp => bonjour_to_upnp(),
            BridgeCase::BonjourToSlp => bonjour_to_slp(),
            BridgeCase::WsdToSlp => wsd_to_slp(),
            BridgeCase::WsdToBonjour => wsd_to_bonjour(),
            BridgeCase::WsdToUpnp => wsd_to_upnp(),
            BridgeCase::SlpToWsd => slp_to_wsd(),
            BridgeCase::BonjourToWsd => bonjour_to_wsd(),
            BridgeCase::UpnpToWsd => upnp_to_wsd(bridge_host),
        }
    }

    /// The paper's Fig. 12(b) median translation time in milliseconds
    /// (for shape comparison in the benches); `None` for the WSD cases,
    /// which postdate the paper.
    pub fn paper_median_ms(&self) -> Option<u64> {
        match self {
            BridgeCase::SlpToUpnp => Some(337),
            BridgeCase::SlpToBonjour => Some(271),
            BridgeCase::UpnpToSlp => Some(6_311),
            BridgeCase::UpnpToBonjour => Some(289),
            BridgeCase::BonjourToUpnp => Some(359),
            BridgeCase::BonjourToSlp => Some(6_190),
            _ => None,
        }
    }

    /// Whether this case compiles to the fused parse→translate→compose
    /// fast path. A case fuses when its merged automaton is a plain
    /// two-part request/response chain over UDP whose translation is
    /// field-to-field assignments and deterministic builtins; the UPnP
    /// chains stay interpreted (three parts, a TCP leg, and a `set_host`
    /// λ action). Asserted against the engine's actual plan-compile
    /// outcome in the fused-equivalence suite.
    pub fn fusable(&self) -> bool {
        !matches!(self.source(), Family::Upnp) && !matches!(self.target(), Family::Upnp)
    }

    /// The answer-cache TTL for this case: how long a translated
    /// response may be replayed to duplicate queries, governed by the
    /// *target* family's protocol (the cached answer is a claim about
    /// the legacy service, so its validity follows that service's own
    /// caching rules — SLP URL lifetime, mDNS record TTL, WSD metadata
    /// refresh, SSDP max-age).
    pub fn answer_ttl(&self, calibration: &Calibration) -> SimDuration {
        let range = match self.target() {
            Family::Slp => calibration.slp_answer_ttl,
            Family::Bonjour => calibration.mdns_answer_ttl,
            Family::Wsd => calibration.wsd_answer_ttl,
            Family::Upnp => calibration.ssdp_answer_ttl,
        };
        SimDuration::from_millis(range.midpoint_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_automata::uncovered_mandatory_fields;
    use starlink_mdl::{load_mdl, MdlCodec};

    #[test]
    fn all_twelve_bridges_satisfy_merge_constraints() {
        for &case in BridgeCase::all() {
            let merged = case.build("10.0.0.2");
            let report = merged.check_merge();
            assert!(report.is_mergeable(), "case {} ({}): {report}", case.number(), case.name());
        }
    }

    #[test]
    fn two_part_bridges_are_strongly_merged_chains_are_weak() {
        // SLP↔Bonjour pairs merge strongly (δ both ways); the three-part
        // chains involving HTTP are only weakly merged — exactly the
        // distinction §III-C draws for Fig. 4. The synthesized WSD pairs
        // land on the strong side like every other two-part bridge.
        assert!(slp_to_bonjour().check_merge().strongly_merged);
        assert!(bonjour_to_slp().check_merge().strongly_merged);
        assert!(!slp_to_upnp().check_merge().strongly_merged);
        assert!(slp_to_upnp().check_merge().weakly_merged);
        assert!(wsd_to_slp().check_merge().strongly_merged);
        assert!(slp_to_wsd().check_merge().strongly_merged);
        assert!(!wsd_to_upnp().check_merge().strongly_merged);
        assert!(wsd_to_upnp().check_merge().weakly_merged);
    }

    #[test]
    fn translation_logic_covers_mandatory_fields() {
        // The ⊨ check of equation (1): every mandatory field of every
        // composed message is covered by an assignment (or a schema
        // default).
        let codecs: Vec<MdlCodec> = [
            crate::slp::mdl_xml(),
            crate::mdns::mdl_xml(),
            crate::ssdp::mdl_xml(),
            crate::http::mdl_xml(),
            crate::wsd::mdl_xml(),
        ]
        .iter()
        .map(|xml| MdlCodec::generate(load_mdl(xml).unwrap()).unwrap())
        .collect();
        for &case in BridgeCase::all() {
            let merged = case.build("10.0.0.2");
            let assignments: Vec<_> = merged.assignments().cloned().collect();
            for decl in merged.equivalences().declarations() {
                let Some(schema) = codecs.iter().find_map(|c| c.schema(&decl.target).ok()) else {
                    panic!("no schema for {}", decl.target);
                };
                let blank = schema.instantiate();
                let uncovered = uncovered_mandatory_fields(&blank, &assignments);
                assert!(
                    uncovered.is_empty(),
                    "case {}: {} leaves mandatory fields unfilled: {uncovered:?}",
                    case.number(),
                    decl.target
                );
            }
        }
    }

    #[test]
    fn bridge_xml_roundtrip() {
        // Every bridge survives export to the Fig. 5/8 XML document form
        // and reloading — the "models only" claim. The XML document form
        // is canonical (XPath selectors carry explicit field-shape
        // constraints that the programmatic dotted form leaves open), so
        // the invariant is that export∘load is a fixed point and the
        // reloaded bridge still satisfies the merge constraints.
        for &case in BridgeCase::all() {
            let merged = case.build("10.0.0.2");
            let xml = starlink_automata::bridge_to_xml(&merged);
            let reloaded = starlink_automata::load_bridge(&xml)
                .unwrap_or_else(|e| panic!("case {}: {e}", case.number()));
            assert_eq!(
                xml,
                starlink_automata::bridge_to_xml(&reloaded),
                "case {}: XML form is not a fixed point",
                case.number()
            );
            assert!(reloaded.check_merge().is_mergeable(), "case {}", case.number());
        }
    }

    #[test]
    fn case_metadata() {
        assert_eq!(BridgeCase::all().len(), 12);
        assert_eq!(BridgeCase::paper_cases().len(), 6);
        assert_eq!(BridgeCase::SlpToUpnp.number(), 1);
        assert_eq!(BridgeCase::UpnpToWsd.number(), 12);
        assert_eq!(BridgeCase::BonjourToSlp.name(), "Bonjour to SLP");
        assert_eq!(BridgeCase::WsdToBonjour.name(), "WSD to Bonjour");
        assert!(BridgeCase::UpnpToSlp.paper_median_ms().unwrap() > 6_000);
        assert_eq!(BridgeCase::WsdToSlp.paper_median_ms(), None);
        // The one-table invariant: numbers are positions, every case is
        // reachable, and the family matrix is complete (each family
        // appears as source and target exactly three times).
        for (index, &case) in BridgeCase::ALL.iter().enumerate() {
            assert_eq!(case.number(), index + 1);
            assert_ne!(case.source(), case.target(), "no same-family bridge");
        }
        for family in [Family::Slp, Family::Upnp, Family::Bonjour, Family::Wsd] {
            assert_eq!(BridgeCase::all().iter().filter(|c| c.source() == family).count(), 3);
            assert_eq!(BridgeCase::all().iter().filter(|c| c.target() == family).count(), 3);
            assert!(!family.name().is_empty());
        }
    }
}
