//! HTTP/1.1 (the retrieval leg of UPnP discovery, Fig. 3): native wire
//! codec and Starlink models.

mod models;
mod wire;

pub use models::{client_automaton, color, mdl_xml, server_automaton};
pub use wire::{
    decode, device_description, encode, HttpGet, HttpMessage, HttpOk, HTTP_PORT, UPNP_HTTP_PORT,
};
