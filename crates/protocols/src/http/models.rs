//! Starlink models of HTTP: the text MDL and the Fig. 3 automaton.

use starlink_automata::{Color, ColoredAutomaton, Mode, Transport};

/// The HTTP MDL document (text MDL with a `rest` body field).
pub fn mdl_xml() -> &'static str {
    include_str!("../../specs/http.xml")
}

/// The HTTP colour of Fig. 3 at a given port: TCP, sync, unicast.
pub fn color(port: u16) -> Color {
    Color::new(Transport::Tcp, port, Mode::Sync)
}

/// Fig. 3 exactly — client side (the bridge fetches a device
/// description): send GET, await 200 OK.
pub fn client_automaton(port: u16) -> ColoredAutomaton {
    ColoredAutomaton::builder("HTTP")
        .color(color(port))
        .state("h0")
        .state("h1")
        .state_accepting("h2")
        .send("h0", "HTTP_GET", "h1")
        .receive("h1", "HTTP_OK", "h2")
        .build()
        .expect("static HTTP client automaton is valid")
}

/// Server side (the bridge serves the description, cases 3 and 4):
/// receive GET, send 200 OK.
pub fn server_automaton(port: u16) -> ColoredAutomaton {
    ColoredAutomaton::builder("HTTP")
        .color(color(port))
        .state("g0")
        .state("g1")
        .state_accepting("g2")
        .receive("g0", "HTTP_GET", "g1")
        .send("g1", "HTTP_OK", "g2")
        .build()
        .expect("static HTTP server automaton is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::wire::{self, HttpGet, HttpMessage, HttpOk};
    use starlink_mdl::{load_mdl, MdlCodec};

    fn codec() -> MdlCodec {
        MdlCodec::generate(load_mdl(mdl_xml()).unwrap()).unwrap()
    }

    #[test]
    fn mdl_parses_native_get() {
        let native = wire::encode(&HttpMessage::Get(HttpGet::new("/desc.xml", "h:5000")));
        let msg = codec().parse(&native).unwrap();
        assert_eq!(msg.name(), "HTTP_GET");
        assert_eq!(msg.get(&"URI".into()).unwrap().as_str().unwrap(), "/desc.xml");
        assert_eq!(msg.get(&"HOST".into()).unwrap().as_str().unwrap(), "h:5000");
    }

    #[test]
    fn mdl_parses_native_ok_with_body() {
        let native = wire::encode(&HttpMessage::Ok(HttpOk::xml(wire::device_description(
            "http://10.0.0.3:5000",
            "urn:x",
        ))));
        let msg = codec().parse(&native).unwrap();
        assert_eq!(msg.name(), "HTTP_OK");
        let body = msg.get(&"Body".into()).unwrap().as_str().unwrap().to_owned();
        assert!(body.contains("<URLBase>http://10.0.0.3:5000</URLBase>"));
    }

    #[test]
    fn mdl_composed_ok_is_natively_decodable() {
        let codec = codec();
        let native = wire::encode(&HttpMessage::Ok(HttpOk::xml("<root/>")));
        let msg = codec.parse(&native).unwrap();
        let recomposed = codec.compose(&msg).unwrap();
        match wire::decode(&recomposed).unwrap() {
            HttpMessage::Ok(ok) => assert_eq!(ok.body, "<root/>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn colors_are_sync_tcp() {
        let c = color(80);
        assert_eq!(c.transport(), Transport::Tcp);
        assert_eq!(c.mode(), Mode::Sync);
        assert!(!c.is_multicast());
    }
}
