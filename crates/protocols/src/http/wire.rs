//! Native HTTP/1.1 wire codec (the minimal GET / 200 OK exchange UPnP
//! description retrieval needs, Fig. 3).

use crate::ssdp::split_head;
use crate::WireError;

/// Default HTTP port of the Fig. 3 colour.
pub const HTTP_PORT: u16 = 80;
/// The port UPnP devices in this substrate serve descriptions on.
pub const UPNP_HTTP_PORT: u16 = 5000;

/// A parsed HTTP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpMessage {
    /// A GET request.
    Get(HttpGet),
    /// A 200 OK response.
    Ok(HttpOk),
}

/// An HTTP GET request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpGet {
    /// Request path (e.g. `/desc.xml`).
    pub path: String,
    /// Host header value.
    pub host: String,
}

impl HttpGet {
    /// Creates a GET for `path` at `host`.
    pub fn new(path: impl Into<String>, host: impl Into<String>) -> Self {
        HttpGet { path: path.into(), host: host.into() }
    }
}

/// An HTTP 200 OK response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpOk {
    /// Content-Type header value.
    pub content_type: String,
    /// Response body (the UPnP device description document).
    pub body: String,
}

impl HttpOk {
    /// Creates an XML response.
    pub fn xml(body: impl Into<String>) -> Self {
        HttpOk { content_type: "text/xml".into(), body: body.into() }
    }
}

/// Builds the UPnP device description document served by devices (and by
/// the bridge in the reverse cases): `<URLBase>` carries the service
/// endpoint the paper's translation logic extracts (`HTTP_OK.URL_BASE`).
pub fn device_description(url_base: &str, service_type: &str) -> String {
    format!(
        "<root><URLBase>{url_base}</URLBase><device><serviceType>{service_type}</serviceType></device></root>"
    )
}

/// Encodes a message to wire text.
pub fn encode(message: &HttpMessage) -> Vec<u8> {
    match message {
        HttpMessage::Get(get) => {
            format!("GET {} HTTP/1.1\r\nHOST: {}\r\n\r\n", get.path, get.host).into_bytes()
        }
        HttpMessage::Ok(ok) => format!(
            "HTTP/1.1 200 OK\r\nCONTENT-TYPE: {}\r\nCONTENT-LENGTH: {}\r\n\r\n{}",
            ok.content_type,
            ok.body.len(),
            ok.body
        )
        .into_bytes(),
    }
}

/// Decodes wire text.
///
/// # Errors
///
/// Returns [`WireError`] for non-GET/non-200 messages.
pub fn decode(bytes: &[u8]) -> Result<HttpMessage, WireError> {
    let (start, headers) = split_head(bytes)?;
    if let Some(rest) = start.strip_prefix("GET ") {
        let path = rest.split_whitespace().next().unwrap_or("/").to_owned();
        let host = headers.get("HOST").cloned().unwrap_or_default();
        Ok(HttpMessage::Get(HttpGet { path, host }))
    } else if start.starts_with("HTTP/1.1 200") {
        let content_type = headers.get("CONTENT-TYPE").cloned().unwrap_or_default();
        let text = String::from_utf8_lossy(bytes);
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
        Ok(HttpMessage::Ok(HttpOk { content_type, body }))
    } else {
        Err(WireError(format!("unsupported HTTP start line {start:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_roundtrip() {
        let get = HttpGet::new("/desc.xml", "10.0.0.3:5000");
        let wire = encode(&HttpMessage::Get(get.clone()));
        assert_eq!(decode(&wire).unwrap(), HttpMessage::Get(get));
    }

    #[test]
    fn ok_roundtrip() {
        let ok = HttpOk::xml(device_description("http://10.0.0.3:5000", "urn:x:printer:1"));
        let wire = encode(&HttpMessage::Ok(ok.clone()));
        assert_eq!(decode(&wire).unwrap(), HttpMessage::Ok(ok));
    }

    #[test]
    fn description_carries_url_base() {
        let desc = device_description("http://10.0.0.3:5000", "urn:x");
        assert!(desc.contains("<URLBase>http://10.0.0.3:5000</URLBase>"));
    }

    #[test]
    fn decode_rejects_other_methods() {
        assert!(decode(b"POST / HTTP/1.1\r\n\r\n").is_err());
        assert!(decode(b"HTTP/1.1 404 Not Found\r\n\r\n").is_err());
    }
}
