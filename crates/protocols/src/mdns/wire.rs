//! Native mDNS wire codec (RFC 1035/6762 subset — Bonjour carries DNS
//! messages, §V-A: "Bonjour uses DNS messages so this MDL describes DNS
//! questions and responses").
//!
//! Header: ID(16) Flags(16) QDCount(16) ANCount(16) NSCount(16)
//! ARCount(16). Questions carry one PTR query; responses carry one
//! answer record whose RDATA is the service URL.

use crate::util::{read_dns_name, write_dns_name, Cursor, Writer};
use crate::WireError;

/// The mDNS well-known port.
pub const MDNS_PORT: u16 = 5353;
/// The mDNS IPv4 multicast group (Fig. 9).
pub const MDNS_GROUP: &str = "224.0.0.251";
/// Flags word of a standard query.
pub const FLAGS_QUERY: u16 = 0x0000;
/// Flags word of an authoritative response (QR|AA).
pub const FLAGS_RESPONSE: u16 = 0x8400;
/// PTR record type.
pub const TYPE_PTR: u16 = 12;
/// IN class.
pub const CLASS_IN: u16 = 1;

/// A parsed DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsMessage {
    /// A question (service browse).
    Question(DnsQuestion),
    /// A response (service answer).
    Response(DnsResponse),
}

/// A one-question DNS query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    /// Transaction id (0 in real mDNS; kept for bridging to XID-carrying
    /// protocols).
    pub id: u16,
    /// Queried name, e.g. `_printer._tcp.local`.
    pub qname: String,
    /// Query type (PTR).
    pub qtype: u16,
    /// Query class (IN).
    pub qclass: u16,
}

impl DnsQuestion {
    /// Creates a PTR/IN question for `qname`.
    pub fn new(id: u16, qname: impl Into<String>) -> Self {
        DnsQuestion { id, qname: qname.into(), qtype: TYPE_PTR, qclass: CLASS_IN }
    }
}

/// A one-answer DNS response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsResponse {
    /// Transaction id (copied from the question).
    pub id: u16,
    /// Answer owner name.
    pub name: String,
    /// Record type.
    pub rtype: u16,
    /// Record class.
    pub rclass: u16,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Record data — the service URL in this substrate.
    pub rdata: String,
}

impl DnsResponse {
    /// Creates a PTR/IN answer carrying `rdata` for `name`.
    pub fn new(id: u16, name: impl Into<String>, rdata: impl Into<String>) -> Self {
        DnsResponse {
            id,
            name: name.into(),
            rtype: TYPE_PTR,
            rclass: CLASS_IN,
            ttl: 120,
            rdata: rdata.into(),
        }
    }
}

/// Encodes a message to its wire image.
///
/// # Errors
///
/// Returns [`WireError`] for unencodable DNS names.
pub fn encode(message: &DnsMessage) -> Result<Vec<u8>, WireError> {
    let mut writer = Writer::new();
    match message {
        DnsMessage::Question(q) => {
            writer.u16(q.id);
            writer.u16(FLAGS_QUERY);
            writer.u16(1); // QDCount
            writer.u16(0);
            writer.u16(0);
            writer.u16(0);
            write_dns_name(&mut writer, &q.qname)?;
            writer.u16(q.qtype);
            writer.u16(q.qclass);
        }
        DnsMessage::Response(r) => {
            writer.u16(r.id);
            writer.u16(FLAGS_RESPONSE);
            writer.u16(0);
            writer.u16(1); // ANCount
            writer.u16(0);
            writer.u16(0);
            write_dns_name(&mut writer, &r.name)?;
            writer.u16(r.rtype);
            writer.u16(r.rclass);
            writer.u32(r.ttl);
            writer.u16(r.rdata.len() as u16);
            writer.bytes(r.rdata.as_bytes());
        }
    }
    Ok(writer.into_bytes())
}

/// Decodes a wire image.
///
/// # Errors
///
/// Returns [`WireError`] for truncated input or unexpected flags.
pub fn decode(bytes: &[u8]) -> Result<DnsMessage, WireError> {
    let mut cursor = Cursor::new(bytes);
    let id = cursor.u16()?;
    let flags = cursor.u16()?;
    let _qd = cursor.u16()?;
    let _an = cursor.u16()?;
    let _ns = cursor.u16()?;
    let _ar = cursor.u16()?;
    if flags & 0x8000 == 0 {
        let qname = read_dns_name(&mut cursor)?;
        let qtype = cursor.u16()?;
        let qclass = cursor.u16()?;
        Ok(DnsMessage::Question(DnsQuestion { id, qname, qtype, qclass }))
    } else {
        let name = read_dns_name(&mut cursor)?;
        let rtype = cursor.u16()?;
        let rclass = cursor.u16()?;
        let ttl = cursor.u32()?;
        let rdlength = cursor.u16()? as usize;
        let rdata = String::from_utf8_lossy(&cursor.bytes(rdlength)?).into_owned();
        Ok(DnsMessage::Response(DnsResponse { id, name, rtype, rclass, ttl, rdata }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_roundtrip() {
        let q = DnsQuestion::new(7, "_printer._tcp.local");
        let wire = encode(&DnsMessage::Question(q.clone())).unwrap();
        assert_eq!(decode(&wire).unwrap(), DnsMessage::Question(q));
    }

    #[test]
    fn response_roundtrip() {
        let r = DnsResponse::new(7, "_printer._tcp.local", "service:printer://10.0.0.9:631");
        let wire = encode(&DnsMessage::Response(r.clone())).unwrap();
        assert_eq!(decode(&wire).unwrap(), DnsMessage::Response(r));
    }

    #[test]
    fn header_counts_match_rfc1035() {
        let wire = encode(&DnsMessage::Question(DnsQuestion::new(1, "_x._tcp.local"))).unwrap();
        assert_eq!(&wire[4..6], &[0, 1]); // QDCount = 1
        assert_eq!(&wire[6..8], &[0, 0]); // ANCount = 0
        let wire = encode(&DnsMessage::Response(DnsResponse::new(1, "a.local", "u"))).unwrap();
        assert_eq!(&wire[4..6], &[0, 0]); // QDCount = 0
        assert_eq!(&wire[6..8], &[0, 1]); // ANCount = 1
        assert_eq!(&wire[2..4], &[0x84, 0x00]); // Flags
    }

    #[test]
    fn decode_rejects_truncated() {
        let wire = encode(&DnsMessage::Response(DnsResponse::new(1, "a.local", "url"))).unwrap();
        assert!(decode(&wire[..wire.len() - 2]).is_err());
    }
}
