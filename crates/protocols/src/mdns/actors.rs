//! Legacy Bonjour endpoints (Apple SDK behaviour modelled): an mDNS
//! browser client and a responder service.

use crate::calibration::Calibration;
use crate::mdns::wire::{self, DnsMessage, DnsQuestion, DnsResponse, MDNS_GROUP, MDNS_PORT};
use crate::probe::DiscoveryProbe;
use starlink_net::{Actor, Context, Datagram, SimAddr, SimTime};

/// A Bonjour browse client: multicasts one PTR question and records the
/// first answer; the calibrated client-side overhead models the Apple
/// SDK's daemon IPC + callback path before the application sees the
/// result.
#[derive(Debug)]
pub struct BonjourClient {
    qname: String,
    id: u16,
    calibration: Calibration,
    probe: DiscoveryProbe,
    sent_at: Option<SimTime>,
    pending: Option<(String, SimTime)>,
}

impl BonjourClient {
    /// Creates a client browsing for `qname` (e.g. `_printer._tcp.local`).
    pub fn new(qname: impl Into<String>, calibration: Calibration, probe: DiscoveryProbe) -> Self {
        BonjourClient {
            qname: qname.into(),
            id: 0x0042,
            calibration,
            probe,
            sent_at: None,
            pending: None,
        }
    }
}

impl Actor for BonjourClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(MDNS_PORT).expect("mdns port free");
        let question = DnsQuestion::new(self.id, self.qname.clone());
        let wire = wire::encode(&DnsMessage::Question(question)).expect("encodable question");
        self.sent_at = Some(ctx.now());
        ctx.udp_send(MDNS_PORT, SimAddr::new(MDNS_GROUP, MDNS_PORT), wire);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let Ok(DnsMessage::Response(response)) = wire::decode(&datagram.payload) else {
            return;
        };
        let Some(sent_at) = self.sent_at.take() else { return };
        // SDK overhead between wire arrival and application callback.
        let overhead = self.calibration.bonjour_client_overhead.sample(ctx);
        self.pending = Some((response.rdata, sent_at));
        ctx.set_timer(overhead, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
        if let Some((url, sent_at)) = self.pending.take() {
            self.probe.record(url, ctx.now().since(sent_at), ctx.now());
        }
    }
}

/// A Bonjour responder: answers matching PTR questions with the service
/// URL after the calibrated responder delay.
#[derive(Debug)]
pub struct BonjourService {
    qname: String,
    url: String,
    calibration: Calibration,
    pending: Vec<Option<(DnsQuestion, SimAddr)>>,
}

impl BonjourService {
    /// Creates a responder for `qname` advertising `url`.
    pub fn new(qname: impl Into<String>, url: impl Into<String>, calibration: Calibration) -> Self {
        BonjourService { qname: qname.into(), url: url.into(), calibration, pending: Vec::new() }
    }
}

impl Actor for BonjourService {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(MDNS_PORT).expect("mdns port free");
        ctx.join_group(SimAddr::new(MDNS_GROUP, MDNS_PORT));
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let Ok(DnsMessage::Question(question)) = wire::decode(&datagram.payload) else {
            return;
        };
        if question.qname != self.qname {
            return;
        }
        let delay = self.calibration.mdns_service_delay.sample(ctx);
        let tag = self.pending.len() as u64;
        self.pending.push(Some((question, datagram.from)));
        ctx.set_timer(delay, tag);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        let Some(slot) = self.pending.get_mut(tag as usize) else { return };
        let Some((question, reply_to)) = slot.take() else { return };
        let response = DnsResponse::new(question.id, question.qname, self.url.clone());
        let wire = wire::encode(&DnsMessage::Response(response)).expect("encodable response");
        ctx.udp_send(MDNS_PORT, reply_to, wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_net::SimNet;

    #[test]
    fn native_bonjour_lookup_roundtrip() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(31);
        sim.add_actor(
            "10.0.0.3",
            BonjourService::new(
                "_printer._tcp.local",
                "service:printer://10.0.0.3:631",
                Calibration::fast(),
            ),
        );
        sim.add_actor(
            "10.0.0.1",
            BonjourClient::new("_printer._tcp.local", Calibration::fast(), probe.clone()),
        );
        sim.run_until_idle();
        assert_eq!(probe.first().unwrap().url, "service:printer://10.0.0.3:631");
    }

    #[test]
    fn service_ignores_other_names() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(32);
        sim.add_actor(
            "10.0.0.3",
            BonjourService::new("_scanner._tcp.local", "x", Calibration::fast()),
        );
        sim.add_actor(
            "10.0.0.1",
            BonjourClient::new("_printer._tcp.local", Calibration::fast(), probe.clone()),
        );
        sim.run_until_idle();
        assert!(probe.is_empty());
    }

    #[test]
    fn native_response_time_matches_calibration() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(33);
        sim.add_actor(
            "10.0.0.3",
            BonjourService::new("_printer._tcp.local", "u", Calibration::paper()),
        );
        sim.add_actor(
            "10.0.0.1",
            BonjourClient::new("_printer._tcp.local", Calibration::paper(), probe.clone()),
        );
        sim.run_until_idle();
        let elapsed = probe.first().unwrap().elapsed.as_millis();
        // Fig. 12(a): Bonjour 687–726 ms.
        assert!((675..=745).contains(&elapsed), "elapsed {elapsed}ms");
    }
}
