//! mDNS / Bonjour (DNS over multicast UDP, RFC 6762 subset): native wire
//! codec, legacy endpoints, and the Starlink models of Fig. 9.

mod actors;
mod models;
mod wire;

pub use actors::{BonjourClient, BonjourService};
pub use models::{client_automaton, color, mdl_xml, service_automaton};
pub use wire::{
    decode, encode, DnsMessage, DnsQuestion, DnsResponse, CLASS_IN, FLAGS_QUERY, FLAGS_RESPONSE,
    MDNS_GROUP, MDNS_PORT, TYPE_PTR,
};
