//! Starlink models of mDNS/Bonjour: the DNS MDL and the Fig. 9 automaton.

use crate::mdns::wire::{MDNS_GROUP, MDNS_PORT};
use starlink_automata::{Color, ColoredAutomaton, Mode, Transport};

/// The DNS MDL document (questions and responses, §V-A: "this MDL
/// describes DNS questions and responses"). Uses the plug-in `FQDN`
/// marshaller for names — the paper's own extensibility example.
pub fn mdl_xml() -> &'static str {
    include_str!("../../specs/dns.xml")
}

/// The mDNS colour of Fig. 9: UDP 5353, async, multicast 224.0.0.251.
pub fn color() -> Color {
    Color::new(Transport::Udp, MDNS_PORT, Mode::Async).multicast(MDNS_GROUP)
}

/// Fig. 9 exactly — the client-side automaton (the bridge queries a
/// legacy Bonjour responder): send a question, await the response.
pub fn client_automaton() -> ColoredAutomaton {
    ColoredAutomaton::builder("DNS")
        .color(color())
        .state("s0")
        .state("s1")
        .state_accepting("s2")
        .send("s0", "DNS_Question", "s1")
        .receive("s1", "DNS_Response", "s2")
        .build()
        .expect("static mDNS client automaton is valid")
}

/// The service-side automaton (the bridge answers legacy Bonjour
/// browsers, cases 5 and 6): receive a question, later send the response.
pub fn service_automaton() -> ColoredAutomaton {
    ColoredAutomaton::builder("DNS")
        .color(color())
        .state("d0")
        .state_accepting("d1")
        .receive("d0", "DNS_Question", "d1")
        .send("d1", "DNS_Response", "d0")
        .build()
        .expect("static mDNS service automaton is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdns::wire::{self, DnsMessage, DnsQuestion, DnsResponse};
    use starlink_mdl::{load_mdl, MdlCodec};
    use starlink_message::Value;

    fn codec() -> MdlCodec {
        MdlCodec::generate(load_mdl(mdl_xml()).unwrap()).unwrap()
    }

    #[test]
    fn mdl_parses_native_question() {
        let native =
            wire::encode(&DnsMessage::Question(DnsQuestion::new(9, "_printer._tcp.local")))
                .unwrap();
        let msg = codec().parse(&native).unwrap();
        assert_eq!(msg.name(), "DNS_Question");
        assert_eq!(msg.get(&"ID".into()).unwrap().as_u64().unwrap(), 9);
        assert_eq!(msg.get(&"QName".into()).unwrap().as_str().unwrap(), "_printer._tcp.local");
        assert_eq!(msg.get(&"QType".into()).unwrap().as_u64().unwrap(), 12);
    }

    #[test]
    fn mdl_parses_native_response() {
        let native = wire::encode(&DnsMessage::Response(DnsResponse::new(
            9,
            "_printer._tcp.local",
            "service:printer://10.0.0.9:631",
        )))
        .unwrap();
        let msg = codec().parse(&native).unwrap();
        assert_eq!(msg.name(), "DNS_Response");
        assert_eq!(
            msg.get(&"RData".into()).unwrap().as_str().unwrap(),
            "service:printer://10.0.0.9:631"
        );
        assert_eq!(msg.get(&"TTL".into()).unwrap().as_u64().unwrap(), 120);
    }

    #[test]
    fn mdl_composes_question_native_codec_reads() {
        let codec = codec();
        let mut q = codec.schema("DNS_Question").unwrap().instantiate();
        q.set(&"ID".into(), Value::Unsigned(5)).unwrap();
        q.set(&"QDCount".into(), Value::Unsigned(1)).unwrap();
        q.set(&"QName".into(), Value::Str("_printer._tcp.local".into())).unwrap();
        q.set(&"QType".into(), Value::Unsigned(12)).unwrap();
        q.set(&"QClass".into(), Value::Unsigned(1)).unwrap();
        let bytes = codec.compose(&q).unwrap();
        assert_eq!(
            wire::decode(&bytes).unwrap(),
            DnsMessage::Question(DnsQuestion::new(5, "_printer._tcp.local"))
        );
    }

    #[test]
    fn mdl_wire_roundtrip() {
        let codec = codec();
        for native in [
            wire::encode(&DnsMessage::Question(DnsQuestion::new(1, "_x._tcp.local"))).unwrap(),
            wire::encode(&DnsMessage::Response(DnsResponse::new(1, "_x._tcp.local", "url")))
                .unwrap(),
        ] {
            let msg = codec.parse(&native).unwrap();
            assert_eq!(codec.compose(&msg).unwrap(), native);
        }
    }

    #[test]
    fn automata_shapes() {
        assert_eq!(client_automaton().transitions().len(), 2);
        assert_eq!(service_automaton().transitions().len(), 2);
        assert_eq!(color().group(), Some("224.0.0.251"));
    }
}
