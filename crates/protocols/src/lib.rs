//! # starlink-protocols
//!
//! The legacy protocol substrates of the Starlink evaluation (§V): native
//! wire codecs, calibrated legacy endpoints ("simple legacy applications
//! to lookup a simple test service, and respond to lookup requests") and
//! the Starlink models — MDL documents and coloured automata — for:
//!
//! * [`slp`] — Service Location Protocol (binary, Figs. 1/7);
//! * [`mdns`] — Bonjour / mDNS (binary DNS, Fig. 9);
//! * [`ssdp`] — the discovery leg of UPnP (text, Figs. 2/11);
//! * [`http`] — the retrieval leg of UPnP (text over TCP, Fig. 3);
//! * [`upnp`] — composite UPnP control point and device;
//! * [`wsd`] — WS-Discovery (SOAP-over-UDP text envelope), the fourth
//!   family, beyond the paper's original three;
//! * [`bridges`] — the twelve case-study merged automata (the paper's
//!   six, Figs. 4/10 plus the four remaining pairs, and the six
//!   WS-Discovery pairs), with [`bridges::BridgeCase`] indexing the
//!   matrix rows;
//! * [`calibration`] — the Fig. 12(a)-derived latency model;
//! * [`probe`] — client-side response-time measurement.
//!
//! The native codecs and the MDL-driven codecs are tested against each
//! other in both directions: the transparency requirement means the
//! bridge must consume exactly the bytes legacy stacks emit, and emit
//! exactly the bytes legacy stacks consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridges;
pub mod calibration;
pub mod http;
pub mod mdns;
pub mod probe;
pub mod slp;
pub mod ssdp;
pub mod upnp;
mod util;
pub mod wsd;

pub use bridges::{BridgeCase, Family};
pub use calibration::{Calibration, DelayRange};
pub use probe::{Discovery, DiscoveryProbe};

use std::fmt;

/// Error raised by the native wire codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}
