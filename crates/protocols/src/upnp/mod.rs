//! Legacy UPnP endpoints. UPnP discovery "uses two protocols" (§V-B):
//! SSDP for the multicast search and HTTP for retrieving the device
//! description, so the control point (client) and device (service) here
//! drive both legs, with CyberLink-calibrated delays.

use crate::calibration::Calibration;
use crate::http::{self, HttpGet, HttpMessage, HttpOk, UPNP_HTTP_PORT};
use crate::probe::DiscoveryProbe;
use crate::ssdp::{self, MSearch, SsdpMessage, SsdpResponse, SSDP_GROUP, SSDP_PORT};
use starlink_net::{Actor, ConnId, Context, Datagram, SimAddr, SimTime, TcpEvent};

/// Device timers interleave two unbounded pending queues on one tag
/// space: searches on even tags (`2·index`), GETs on odd (`2·index+1`).
/// (A fixed split point — searches at `1000+index`, GETs at `2000+index`
/// — capped the device at 1000 concurrent searches: the 1001st search's
/// tag landed in the GET range and its response was never sent. The
/// sharded saturation bench found it.)
const TAG_SEARCH_PARITY: u64 = 0;
const TAG_GET_PARITY: u64 = 1;
/// Timer tag used by the client for the pre-GET think time.
const TAG_CLIENT_THINK: u64 = 1;
/// Timer tag used by the client for the final stack overhead.
const TAG_CLIENT_DONE: u64 = 2;

/// A legacy UPnP device: answers M-SEARCH on SSDP and serves its
/// description document over HTTP.
#[derive(Debug)]
pub struct UpnpDevice {
    service_type: String,
    host: String,
    calibration: Calibration,
    /// Pending SSDP responses: (search, requester).
    pending_searches: Vec<Option<(MSearch, SimAddr)>>,
    /// Pending HTTP responses: connection awaiting the description.
    pending_gets: Vec<Option<ConnId>>,
}

impl UpnpDevice {
    /// Creates a device advertising `service_type`, serving its
    /// description at `http://{host}:5000/desc.xml`.
    pub fn new(
        service_type: impl Into<String>,
        host: impl Into<String>,
        calibration: Calibration,
    ) -> Self {
        UpnpDevice {
            service_type: service_type.into(),
            host: host.into(),
            calibration,
            pending_searches: Vec::new(),
            pending_gets: Vec::new(),
        }
    }

    fn location(&self) -> String {
        format!("http://{}:{}/desc.xml", self.host, UPNP_HTTP_PORT)
    }

    fn url_base(&self) -> String {
        format!("http://{}:{}", self.host, UPNP_HTTP_PORT)
    }
}

impl Actor for UpnpDevice {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(SSDP_PORT).expect("ssdp port free");
        ctx.join_group(SimAddr::new(SSDP_GROUP, SSDP_PORT));
        ctx.listen_tcp(UPNP_HTTP_PORT);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let Ok(SsdpMessage::MSearch(search)) = ssdp::decode(&datagram.payload) else {
            return;
        };
        if search.st != self.service_type && search.st != "ssdp:all" {
            return;
        }
        // Respond within the device's calibrated slice of the MX window.
        let delay = self.calibration.ssdp_device_delay.sample(ctx);
        let tag = 2 * self.pending_searches.len() as u64 + TAG_SEARCH_PARITY;
        self.pending_searches.push(Some((search, datagram.from)));
        ctx.set_timer(delay, tag);
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        if let TcpEvent::Data { conn, payload } = event {
            let Ok(HttpMessage::Get(_)) = http::decode(&payload) else {
                ctx.trace("upnp device: unsupported HTTP request");
                return;
            };
            let delay = self.calibration.http_device_delay.sample(ctx);
            let tag = 2 * self.pending_gets.len() as u64 + TAG_GET_PARITY;
            self.pending_gets.push(Some(conn));
            ctx.set_timer(delay, tag);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        let index = (tag / 2) as usize;
        if tag % 2 == TAG_GET_PARITY {
            let Some(Some(conn)) = self.pending_gets.get_mut(index).map(Option::take) else {
                return;
            };
            let body = http::device_description(&self.url_base(), &self.service_type);
            let wire = http::encode(&HttpMessage::Ok(HttpOk::xml(body)));
            if let Err(err) = ctx.tcp_send(conn, wire) {
                ctx.trace(format!("upnp device: send failed: {err}"));
            }
        } else {
            let Some(Some((search, reply_to))) =
                self.pending_searches.get_mut(index).map(Option::take)
            else {
                return;
            };
            let response =
                SsdpResponse::new(search.st, format!("uuid:device-{}", self.host), self.location());
            let wire = ssdp::encode(&SsdpMessage::Response(response));
            ctx.udp_send(SSDP_PORT, reply_to, wire);
        }
    }
}

#[derive(Debug)]
enum ClientPhase {
    WaitingSsdp,
    Thinking { location: String },
    WaitingHttp,
    Draining { url: String },
    Done,
}

/// A legacy UPnP control point: multicasts M-SEARCH, fetches the device
/// description named by LOCATION, and records the discovered URL base.
#[derive(Debug)]
pub struct UpnpClient {
    service_type: String,
    calibration: Calibration,
    probe: DiscoveryProbe,
    sent_at: Option<SimTime>,
    phase: ClientPhase,
}

impl UpnpClient {
    /// Creates a control point searching for `service_type`.
    pub fn new(
        service_type: impl Into<String>,
        calibration: Calibration,
        probe: DiscoveryProbe,
    ) -> Self {
        UpnpClient {
            service_type: service_type.into(),
            calibration,
            probe,
            sent_at: None,
            phase: ClientPhase::WaitingSsdp,
        }
    }
}

impl Actor for UpnpClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(SSDP_PORT).expect("ssdp port free");
        let search = MSearch::new(self.service_type.clone());
        let wire = ssdp::encode(&SsdpMessage::MSearch(search));
        self.sent_at = Some(ctx.now());
        ctx.udp_send(SSDP_PORT, SimAddr::new(SSDP_GROUP, SSDP_PORT), wire);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        if !matches!(self.phase, ClientPhase::WaitingSsdp) {
            return;
        }
        let Ok(SsdpMessage::Response(response)) = ssdp::decode(&datagram.payload) else {
            return;
        };
        let think = self.calibration.upnp_client_think.sample(ctx);
        self.phase = ClientPhase::Thinking { location: response.location };
        ctx.set_timer(think, TAG_CLIENT_THINK);
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        match event {
            TcpEvent::Connected { conn, peer } => {
                if let ClientPhase::WaitingHttp = self.phase {
                    let path = "/desc.xml";
                    let get = HttpGet::new(path, format!("{}:{}", peer.host, peer.port));
                    if let Err(err) = ctx.tcp_send(conn, http::encode(&HttpMessage::Get(get))) {
                        ctx.trace(format!("upnp client: GET failed: {err}"));
                    }
                }
            }
            TcpEvent::Data { payload, .. } => {
                if !matches!(self.phase, ClientPhase::WaitingHttp) {
                    return;
                }
                let Ok(HttpMessage::Ok(ok)) = http::decode(&payload) else {
                    return;
                };
                // Extract the URLBase element like a real control point.
                let url = ok
                    .body
                    .split_once("<URLBase>")
                    .and_then(|(_, rest)| rest.split_once("</URLBase>"))
                    .map(|(base, _)| base.trim().to_owned())
                    .unwrap_or_default();
                let overhead = self.calibration.upnp_client_overhead.sample(ctx);
                self.phase = ClientPhase::Draining { url };
                ctx.set_timer(overhead, TAG_CLIENT_DONE);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match tag {
            TAG_CLIENT_THINK => {
                if let ClientPhase::Thinking { location } =
                    std::mem::replace(&mut self.phase, ClientPhase::WaitingHttp)
                {
                    let (host, port) = parse_location(&location);
                    match ctx.tcp_connect(SimAddr::new(host, port)) {
                        Ok(_) => {}
                        Err(err) => {
                            ctx.trace(format!("upnp client: connect failed: {err}"));
                            self.phase = ClientPhase::Done;
                        }
                    }
                }
            }
            TAG_CLIENT_DONE => {
                if let ClientPhase::Draining { url } =
                    std::mem::replace(&mut self.phase, ClientPhase::Done)
                {
                    if let Some(sent_at) = self.sent_at.take() {
                        self.probe.record(url, ctx.now().since(sent_at), ctx.now());
                    }
                }
            }
            _ => {}
        }
    }
}

/// Splits `http://host:port/path` into (host, port).
fn parse_location(location: &str) -> (String, u16) {
    let rest = location.strip_prefix("http://").unwrap_or(location);
    let authority = rest.split('/').next().unwrap_or(rest);
    match authority.rsplit_once(':') {
        Some((host, port)) => (host.to_owned(), port.parse().unwrap_or(80)),
        None => (authority.to_owned(), 80),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_net::SimNet;

    #[test]
    fn native_upnp_discovery_roundtrip() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(41);
        sim.add_actor(
            "10.0.0.3",
            UpnpDevice::new("urn:x:printer:1", "10.0.0.3", Calibration::fast()),
        );
        sim.add_actor(
            "10.0.0.1",
            UpnpClient::new("urn:x:printer:1", Calibration::fast(), probe.clone()),
        );
        sim.run_until_idle();
        let result = probe.first().expect("discovery completed");
        assert_eq!(result.url, "http://10.0.0.3:5000");
    }

    #[test]
    fn device_ignores_other_service_types() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(42);
        sim.add_actor(
            "10.0.0.3",
            UpnpDevice::new("urn:x:scanner:1", "10.0.0.3", Calibration::fast()),
        );
        sim.add_actor(
            "10.0.0.1",
            UpnpClient::new("urn:x:printer:1", Calibration::fast(), probe.clone()),
        );
        sim.run_until_idle();
        assert!(probe.is_empty());
    }

    #[test]
    fn device_answers_ssdp_all() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(43);
        sim.add_actor(
            "10.0.0.3",
            UpnpDevice::new("urn:x:printer:1", "10.0.0.3", Calibration::fast()),
        );
        sim.add_actor("10.0.0.1", UpnpClient::new("ssdp:all", Calibration::fast(), probe.clone()));
        sim.run_until_idle();
        assert_eq!(probe.len(), 1);
    }

    #[test]
    fn native_response_time_matches_calibration() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(44);
        sim.add_actor(
            "10.0.0.3",
            UpnpDevice::new("urn:x:printer:1", "10.0.0.3", Calibration::paper()),
        );
        sim.add_actor(
            "10.0.0.1",
            UpnpClient::new("urn:x:printer:1", Calibration::paper(), probe.clone()),
        );
        sim.run_until_idle();
        let elapsed = probe.first().unwrap().elapsed.as_millis();
        // Fig. 12(a): UPnP 945–1079 ms.
        assert!((930..=1_090).contains(&elapsed), "elapsed {elapsed}ms");
    }

    #[test]
    fn parse_location_variants() {
        assert_eq!(parse_location("http://10.0.0.3:5000/desc.xml"), ("10.0.0.3".into(), 5000));
        assert_eq!(parse_location("http://h/desc.xml"), ("h".into(), 80));
    }
}
