//! Shared measurement probe: legacy clients record their discovery
//! outcomes here, and the Fig. 12(a) harness reads them back.

use starlink_net::{SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// One completed discovery as observed by a legacy client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Discovery {
    /// The service URL the client obtained.
    pub url: String,
    /// Response time: "from when the client sent the message until the
    /// response was received" (§VI).
    pub elapsed: SimDuration,
    /// Virtual time of completion.
    pub at: SimTime,
}

/// Clonable handle collecting [`Discovery`] records across the
/// simulation boundary.
#[derive(Debug, Clone, Default)]
pub struct DiscoveryProbe {
    inner: Arc<Mutex<Vec<Discovery>>>,
}

impl DiscoveryProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        DiscoveryProbe::default()
    }

    /// Records a completed discovery.
    pub fn record(&self, url: impl Into<String>, elapsed: SimDuration, at: SimTime) {
        self.inner.lock().expect("probe lock").push(Discovery { url: url.into(), elapsed, at });
    }

    /// All recorded discoveries.
    pub fn results(&self) -> Vec<Discovery> {
        self.inner.lock().expect("probe lock").clone()
    }

    /// The first discovery, if any completed.
    pub fn first(&self) -> Option<Discovery> {
        self.inner.lock().expect("probe lock").first().cloned()
    }

    /// Number of completed discoveries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("probe lock").len()
    }

    /// True when nothing completed.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("probe lock").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_shares_records_across_clones() {
        let probe = DiscoveryProbe::new();
        let other = probe.clone();
        other.record("service:printer://x", SimDuration::from_millis(5), SimTime::from_millis(9));
        assert_eq!(probe.len(), 1);
        assert_eq!(probe.first().unwrap().url, "service:printer://x");
        assert!(!probe.is_empty());
    }
}
