//! Legacy SLP endpoints: the "simple legacy applications to lookup a
//! simple test service, and respond to lookup requests" of §V, modelled
//! on OpenSLP's observed behaviour.

use crate::calibration::Calibration;
use crate::probe::DiscoveryProbe;
use crate::slp::wire::{self, SlpMessage, SrvRply, SrvRqst, SLP_GROUP, SLP_PORT};
use starlink_net::{Actor, Context, Datagram, SimAddr, SimTime};

/// The UDP port legacy SLP clients bind for replies (distinct from the
/// service port so client and bridge can coexist on one simulated LAN).
pub const SLP_CLIENT_PORT: u16 = 34_427;

/// A legacy SLP user agent: multicasts one SrvRqst at start and records
/// the first SrvRply.
#[derive(Debug)]
pub struct SlpClient {
    service_type: String,
    xid: u16,
    probe: DiscoveryProbe,
    sent_at: Option<SimTime>,
}

impl SlpClient {
    /// Creates a client looking up `service_type`.
    pub fn new(service_type: impl Into<String>, probe: DiscoveryProbe) -> Self {
        SlpClient { service_type: service_type.into(), xid: 0x1234, probe, sent_at: None }
    }
}

impl Actor for SlpClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(SLP_CLIENT_PORT).expect("client port free");
        let rqst = SrvRqst::new(self.xid, self.service_type.clone());
        let wire = wire::encode(&SlpMessage::SrvRqst(rqst));
        self.sent_at = Some(ctx.now());
        ctx.udp_send(SLP_CLIENT_PORT, SimAddr::new(SLP_GROUP, SLP_PORT), wire);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let Ok(SlpMessage::SrvRply(rply)) = wire::decode(&datagram.payload) else {
            ctx.trace("slp client: ignoring non-reply datagram");
            return;
        };
        if rply.xid != self.xid || rply.error_code != 0 {
            return;
        }
        if let Some(sent_at) = self.sent_at.take() {
            self.probe.record(rply.url, ctx.now().since(sent_at), ctx.now());
        }
    }
}

/// A legacy SLP service agent: answers matching SrvRqsts after the
/// calibrated OpenSLP response delay (the source of the ≈6 s figures in
/// Fig. 12(a)).
#[derive(Debug)]
pub struct SlpService {
    service_type: String,
    url: String,
    calibration: Calibration,
    pending: Vec<Option<(SrvRqst, SimAddr)>>,
}

impl SlpService {
    /// Creates a service advertising `url` for `service_type`.
    pub fn new(
        service_type: impl Into<String>,
        url: impl Into<String>,
        calibration: Calibration,
    ) -> Self {
        SlpService {
            service_type: service_type.into(),
            url: url.into(),
            calibration,
            pending: Vec::new(),
        }
    }
}

impl Actor for SlpService {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(SLP_PORT).expect("slp port free");
        ctx.join_group(SimAddr::new(SLP_GROUP, SLP_PORT));
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        let Ok(SlpMessage::SrvRqst(rqst)) = wire::decode(&datagram.payload) else {
            return;
        };
        if !rqst.service_type.is_empty() && rqst.service_type != self.service_type {
            return;
        }
        let delay = self.calibration.slp_service_delay.sample(ctx);
        let tag = self.pending.len() as u64;
        self.pending.push(Some((rqst, datagram.from)));
        ctx.set_timer(delay, tag);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        let Some(slot) = self.pending.get_mut(tag as usize) else { return };
        let Some((rqst, reply_to)) = slot.take() else { return };
        let mut rply = SrvRply::new(rqst.xid, self.url.clone());
        rply.lang_tag = rqst.lang_tag;
        let wire = wire::encode(&SlpMessage::SrvRply(rply));
        ctx.udp_send(SLP_PORT, reply_to, wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_net::SimNet;

    #[test]
    fn native_slp_lookup_roundtrip() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(21);
        sim.add_actor(
            "10.0.0.3",
            SlpService::new(
                "service:printer",
                "service:printer://10.0.0.3:631",
                Calibration::fast(),
            ),
        );
        sim.add_actor("10.0.0.1", SlpClient::new("service:printer", probe.clone()));
        sim.run_until_idle();
        let result = probe.first().expect("lookup completed");
        assert_eq!(result.url, "service:printer://10.0.0.3:631");
        assert!(result.elapsed.as_millis() >= 4);
    }

    #[test]
    fn service_ignores_other_service_types() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(22);
        sim.add_actor(
            "10.0.0.3",
            SlpService::new("service:scanner", "service:scanner://x", Calibration::fast()),
        );
        sim.add_actor("10.0.0.1", SlpClient::new("service:printer", probe.clone()));
        sim.run_until_idle();
        assert!(probe.is_empty());
    }

    #[test]
    fn native_response_time_matches_calibration() {
        let probe = DiscoveryProbe::new();
        let mut sim = SimNet::new(23);
        sim.add_actor(
            "10.0.0.3",
            SlpService::new("service:printer", "service:printer://x", Calibration::paper()),
        );
        sim.add_actor("10.0.0.1", SlpClient::new("service:printer", probe.clone()));
        sim.run_until_idle();
        let elapsed = probe.first().unwrap().elapsed.as_millis();
        // Fig. 12(a): SLP 5982–6053 ms.
        assert!((5_975..=6_060).contains(&elapsed), "elapsed {elapsed}ms");
    }
}
