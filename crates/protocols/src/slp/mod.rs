//! SLP (Service Location Protocol, RFC 2608 subset): native wire codec,
//! legacy client/service actors, and the Starlink models of Figs. 1 and 7.

mod actors;
mod models;
mod wire;

pub use actors::{SlpClient, SlpService, SLP_CLIENT_PORT};
pub use models::{client_automaton, color, mdl_xml, service_automaton};
pub use wire::{
    decode, encode, SlpMessage, SrvRply, SrvRqst, FN_SRVRPLY, FN_SRVRQST, SLP_GROUP, SLP_PORT,
    SLP_VERSION,
};
