//! Native SLP wire codec (RFC 2608 subset, the layout of Fig. 7).
//!
//! Header: Version(8) FunctionID(8) MessageLength(24) Reserved(16)
//! NextExtOffset(24) XID(16) LangTagLen(16) LangTag.
//! SrvRqst body: PRList, SrvType, Predicate, SPI (each 16-bit length +
//! bytes). SrvRply body: ErrorCode(16) LifeTime(16) URLLength(16) URL.

use crate::util::{Cursor, Writer};
use crate::WireError;

/// The SLP well-known port.
pub const SLP_PORT: u16 = 427;
/// The SLP administrative multicast group (per the paper's Fig. 1).
pub const SLP_GROUP: &str = "239.255.255.253";
/// SLP protocol version 2.
pub const SLP_VERSION: u8 = 2;
/// Function id of a service request.
pub const FN_SRVRQST: u8 = 1;
/// Function id of a service reply.
pub const FN_SRVRPLY: u8 = 2;

/// A parsed SLP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlpMessage {
    /// SrvRqst: a service lookup.
    SrvRqst(SrvRqst),
    /// SrvRply: a lookup answer.
    SrvRply(SrvRply),
}

/// An SLP service request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrvRqst {
    /// Transaction id.
    pub xid: u16,
    /// Language tag (e.g. `en`).
    pub lang_tag: String,
    /// Previous-responder list.
    pub prlist: String,
    /// Requested service type (e.g. `service:printer`).
    pub service_type: String,
    /// Attribute predicate.
    pub predicate: String,
    /// SPI string.
    pub spi: String,
}

impl SrvRqst {
    /// Creates a minimal request for `service_type`.
    pub fn new(xid: u16, service_type: impl Into<String>) -> Self {
        SrvRqst {
            xid,
            lang_tag: "en".into(),
            prlist: String::new(),
            service_type: service_type.into(),
            predicate: String::new(),
            spi: String::new(),
        }
    }
}

/// An SLP service reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrvRply {
    /// Transaction id (copied from the request).
    pub xid: u16,
    /// Language tag.
    pub lang_tag: String,
    /// Error code (0 = ok).
    pub error_code: u16,
    /// URL entry lifetime in seconds.
    pub lifetime: u16,
    /// The service URL.
    pub url: String,
}

impl SrvRply {
    /// Creates a success reply.
    pub fn new(xid: u16, url: impl Into<String>) -> Self {
        SrvRply { xid, lang_tag: "en".into(), error_code: 0, lifetime: 60, url: url.into() }
    }
}

fn encode_header(writer: &mut Writer, function_id: u8, xid: u16, lang_tag: &str) {
    writer.u8(SLP_VERSION);
    writer.u8(function_id);
    writer.u24(0); // MessageLength, patched after the body is written
    writer.u16(0); // Reserved/flags
    writer.u24(0); // NextExtOffset
    writer.u16(xid);
    writer.lp_string(lang_tag);
}

/// Encodes a message to its wire image.
pub fn encode(message: &SlpMessage) -> Vec<u8> {
    let mut writer = Writer::new();
    match message {
        SlpMessage::SrvRqst(rqst) => {
            encode_header(&mut writer, FN_SRVRQST, rqst.xid, &rqst.lang_tag);
            writer.lp_string(&rqst.prlist);
            writer.lp_string(&rqst.service_type);
            writer.lp_string(&rqst.predicate);
            writer.lp_string(&rqst.spi);
        }
        SlpMessage::SrvRply(rply) => {
            encode_header(&mut writer, FN_SRVRPLY, rply.xid, &rply.lang_tag);
            writer.u16(rply.error_code);
            writer.u16(rply.lifetime);
            writer.lp_string(&rply.url);
        }
    }
    let total = writer.len() as u32;
    writer.patch_u24(2, total);
    writer.into_bytes()
}

/// Decodes a wire image.
///
/// # Errors
///
/// Returns [`WireError`] for truncated input or unknown function ids.
pub fn decode(bytes: &[u8]) -> Result<SlpMessage, WireError> {
    let mut cursor = Cursor::new(bytes);
    let version = cursor.u8()?;
    if version != SLP_VERSION && version != 0 {
        return Err(WireError(format!("unsupported SLP version {version}")));
    }
    let function_id = cursor.u8()?;
    let declared_length = cursor.u24()? as usize;
    if declared_length != 0 && declared_length > bytes.len() {
        return Err(WireError(format!(
            "SLP message declares {declared_length} bytes, only {} present",
            bytes.len()
        )));
    }
    let _reserved = cursor.u16()?;
    let _next_ext = cursor.u24()?;
    let xid = cursor.u16()?;
    let lang_tag = cursor.lp_string()?;
    match function_id {
        FN_SRVRQST => {
            let prlist = cursor.lp_string()?;
            let service_type = cursor.lp_string()?;
            let predicate = cursor.lp_string()?;
            let spi = cursor.lp_string()?;
            Ok(SlpMessage::SrvRqst(SrvRqst { xid, lang_tag, prlist, service_type, predicate, spi }))
        }
        FN_SRVRPLY => {
            let error_code = cursor.u16()?;
            let lifetime = cursor.u16()?;
            let url = cursor.lp_string()?;
            Ok(SlpMessage::SrvRply(SrvRply { xid, lang_tag, error_code, lifetime, url }))
        }
        other => Err(WireError(format!("unknown SLP function id {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srvrqst_roundtrip() {
        let rqst = SrvRqst::new(0xBEEF, "service:printer");
        let wire = encode(&SlpMessage::SrvRqst(rqst.clone()));
        assert_eq!(decode(&wire).unwrap(), SlpMessage::SrvRqst(rqst));
    }

    #[test]
    fn srvrply_roundtrip() {
        let rply = SrvRply::new(7, "service:printer://10.0.0.9:631");
        let wire = encode(&SlpMessage::SrvRply(rply.clone()));
        assert_eq!(decode(&wire).unwrap(), SlpMessage::SrvRply(rply));
    }

    #[test]
    fn message_length_is_patched() {
        let wire = encode(&SlpMessage::SrvRqst(SrvRqst::new(1, "x")));
        let declared = u32::from_be_bytes([0, wire[2], wire[3], wire[4]]) as usize;
        assert_eq!(declared, wire.len());
    }

    #[test]
    fn decode_rejects_truncated() {
        let wire = encode(&SlpMessage::SrvRqst(SrvRqst::new(1, "service:printer")));
        assert!(decode(&wire[..10]).is_err());
    }

    #[test]
    fn decode_rejects_unknown_function() {
        let mut wire = encode(&SlpMessage::SrvRqst(SrvRqst::new(1, "x")));
        wire[1] = 9;
        assert!(decode(&wire).is_err());
    }

    #[test]
    fn decode_tolerates_version_zero_from_model_driven_peers() {
        // The Starlink bridge may compose with Version 0 unless the
        // translation logic sets it; the decoder is lenient (like real
        // stacks are towards the reserved bits).
        let mut wire = encode(&SlpMessage::SrvRqst(SrvRqst::new(1, "x")));
        wire[0] = 0;
        assert!(decode(&wire).is_ok());
    }

    #[test]
    fn header_layout_matches_fig7() {
        let wire = encode(&SlpMessage::SrvRqst(SrvRqst::new(0x1234, "ab")));
        assert_eq!(wire[0], 2); // Version
        assert_eq!(wire[1], 1); // FunctionID
        assert_eq!(&wire[10..12], &[0x12, 0x34]); // XID at offset 10
        assert_eq!(&wire[12..14], &[0, 2]); // LangTagLen
        assert_eq!(&wire[14..16], b"en"); // LangTag
    }
}
