//! Starlink models of SLP: the MDL specification (Fig. 7) and the
//! coloured automata (Fig. 1).

use crate::slp::wire::{SLP_GROUP, SLP_PORT};
use starlink_automata::{Color, ColoredAutomaton, Mode, Transport};

/// The SLP MDL document (Fig. 7 of the paper, completed with the reply
/// message and explicit length-function types).
pub fn mdl_xml() -> &'static str {
    include_str!("../../specs/slp.xml")
}

/// The SLP colour of Fig. 1: UDP 427, async, multicast 239.255.255.253.
pub fn color() -> Color {
    Color::new(Transport::Udp, SLP_PORT, Mode::Async).multicast(SLP_GROUP)
}

/// Fig. 1 exactly — the *service-side* automaton the bridge embodies when
/// legacy SLP clients talk to it: receive a SrvRqst, later send the
/// SrvRply.
pub fn service_automaton() -> ColoredAutomaton {
    ColoredAutomaton::builder("SLP")
        .color(color())
        .state("s0")
        .state_accepting("s1")
        .receive("s0", "SLPSrvRequest", "s1")
        .send("s1", "SLPSrvReply", "s0")
        .build()
        .expect("static SLP service automaton is valid")
}

/// The *client-side* automaton the bridge embodies when it performs an
/// SLP lookup against a legacy service (cases 3 and 6).
pub fn client_automaton() -> ColoredAutomaton {
    ColoredAutomaton::builder("SLP")
        .color(color())
        .state("p0")
        .state("p1")
        .state_accepting("p2")
        .send("p0", "SLPSrvRequest", "p1")
        .receive("p1", "SLPSrvReply", "p2")
        .build()
        .expect("static SLP client automaton is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slp::wire::{self, SlpMessage, SrvRply, SrvRqst};
    use starlink_mdl::{load_mdl, MdlCodec};
    use starlink_message::Value;

    fn codec() -> MdlCodec {
        MdlCodec::generate(load_mdl(mdl_xml()).unwrap()).unwrap()
    }

    #[test]
    fn mdl_parses_native_request_wire() {
        // The generic, model-driven parser must read exactly what the
        // native codec emits — the transparency requirement of §V.
        let native = wire::encode(&SlpMessage::SrvRqst(SrvRqst::new(0xBEEF, "service:printer")));
        let msg = codec().parse(&native).unwrap();
        assert_eq!(msg.name(), "SLPSrvRequest");
        assert_eq!(msg.get(&"XID".into()).unwrap().as_u64().unwrap(), 0xBEEF);
        assert_eq!(msg.get(&"SRVType".into()).unwrap().as_str().unwrap(), "service:printer");
        assert_eq!(msg.get(&"LangTag".into()).unwrap().as_str().unwrap(), "en");
    }

    #[test]
    fn mdl_composes_wire_the_native_codec_reads() {
        let codec = codec();
        let mut reply = codec.schema("SLPSrvReply").unwrap().instantiate();
        reply.set(&"Version".into(), Value::Unsigned(2)).unwrap();
        reply.set(&"XID".into(), Value::Unsigned(7)).unwrap();
        reply.set(&"LangTag".into(), Value::Str("en".into())).unwrap();
        reply.set(&"LifeTime".into(), Value::Unsigned(60)).unwrap();
        reply.set(&"URLEntry".into(), Value::Str("service:printer://10.0.0.9:631".into())).unwrap();
        let wire_bytes = codec.compose(&reply).unwrap();
        let decoded = wire::decode(&wire_bytes).unwrap();
        assert_eq!(decoded, SlpMessage::SrvRply(SrvRply::new(7, "service:printer://10.0.0.9:631")));
    }

    #[test]
    fn mdl_roundtrip_both_messages() {
        let codec = codec();
        for native in [
            wire::encode(&SlpMessage::SrvRqst(SrvRqst::new(1, "service:printer"))),
            wire::encode(&SlpMessage::SrvRply(SrvRply::new(1, "service:printer://x"))),
        ] {
            let msg = codec.parse(&native).unwrap();
            let recomposed = codec.compose(&msg).unwrap();
            assert_eq!(native, recomposed);
        }
    }

    #[test]
    fn automata_are_valid_and_colored() {
        let service = service_automaton();
        assert_eq!(service.colors().len(), 1);
        assert_eq!(service.color_of(service.initial()).unwrap().port(), 427);
        let client = client_automaton();
        assert_eq!(client.messages(), vec!["SLPSrvReply", "SLPSrvRequest"]);
    }

    #[test]
    fn mandatory_fields_marked_by_spec() {
        let native = wire::encode(&SlpMessage::SrvRqst(SrvRqst::new(1, "x")));
        let msg = codec().parse(&native).unwrap();
        assert!(msg.is_mandatory("SRVType"));
    }
}
