//! Property tests: XML write→parse round-trips for arbitrary trees, and
//! escaping totality.

use proptest::prelude::*;
use starlink_xml::{escape, to_string, to_string_pretty, unescape, Element};

/// Generates XML-name-safe identifiers.
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.-]{0,12}"
}

/// Generates attribute/text content including XML-special characters.
fn content_strategy() -> impl Strategy<Value = String> {
    // Printable ASCII incl. <, >, &, quotes.
    "[ -~]{0,24}"
}

/// Generates an element tree of bounded depth/width.
fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf =
        (name_strategy(), prop::collection::vec((name_strategy(), content_strategy()), 0..3))
            .prop_map(|(name, attrs)| {
                let mut el = Element::new(name);
                for (k, v) in attrs {
                    el.set_attr(k, v);
                }
                el
            });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), content_strategy()), 0..3),
            prop::collection::vec(inner, 0..4),
            content_strategy(),
        )
            .prop_map(|(name, attrs, children, text)| {
                let mut el = Element::new(name);
                for (k, v) in attrs {
                    el.set_attr(k, v);
                }
                // Text first (trimmed non-empty only, so the writer's
                // whitespace normalisation cannot change it).
                let trimmed = text.trim();
                if !trimmed.is_empty() && children.is_empty() {
                    el.push_text(trimmed.to_owned());
                }
                for child in children {
                    el.push_element(child);
                }
                el
            })
    })
}

proptest! {
    #[test]
    fn escape_unescape_roundtrip(s in "[ -~]{0,64}") {
        prop_assert_eq!(unescape(&escape(&s)).unwrap(), s);
    }

    #[test]
    fn compact_write_parse_roundtrip(el in element_strategy()) {
        let text = to_string(&el);
        let parsed = Element::parse(&text).unwrap();
        prop_assert_eq!(parsed, el);
    }

    #[test]
    fn pretty_write_parse_is_stable(el in element_strategy()) {
        // Pretty printing may normalise whitespace, but a second
        // round-trip must be a fixed point.
        let once = Element::parse(&to_string_pretty(&el)).unwrap();
        let twice = Element::parse(&to_string_pretty(&once)).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parse_never_panics_on_ascii(s in "[ -~]{0,64}") {
        let _ = Element::parse(&s);
    }
}
