//! Error type for XML parsing.

use std::fmt;

/// Position of an error inside the source text (1-based line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub column: u32,
}

impl Position {
    /// Creates a new position.
    pub fn new(line: u32, column: u32) -> Self {
        Position { line, column }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Error raised while lexing or parsing an XML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    position: Position,
}

/// The category of an [`XmlError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XmlErrorKind {
    /// Reached end of input while more content was required.
    UnexpectedEof,
    /// An unexpected character was found.
    UnexpectedChar(char),
    /// A closing tag did not match the currently open element.
    MismatchedTag {
        /// The element that was open.
        expected: String,
        /// The closing tag that was found.
        found: String,
    },
    /// An element or attribute name was empty or malformed.
    InvalidName(String),
    /// An entity reference could not be decoded.
    InvalidEntity(String),
    /// Markup found after the document element closed.
    TrailingContent,
    /// The document contained no root element.
    NoRootElement,
    /// A structural expectation of a consumer was violated (missing
    /// child/attribute, wrong text content).
    Structure(String),
}

impl XmlError {
    /// Creates an error at the given position.
    pub fn new(kind: XmlErrorKind, position: Position) -> Self {
        XmlError { kind, position }
    }

    /// Creates a structural error without a meaningful source position.
    pub fn structure(message: impl Into<String>) -> Self {
        XmlError { kind: XmlErrorKind::Structure(message.into()), position: Position::default() }
    }

    /// The category of the failure.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// Where the failure occurred in the source text.
    pub fn position(&self) -> Position {
        self.position
    }

    /// The failure message *without* the position suffix — for callers
    /// that carry the position structurally.
    pub fn kind_message(&self) -> String {
        match &self.kind {
            XmlErrorKind::UnexpectedEof => "unexpected end of input".to_owned(),
            XmlErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            XmlErrorKind::MismatchedTag { expected, found } => {
                format!("mismatched closing tag: expected </{expected}>, found </{found}>")
            }
            XmlErrorKind::InvalidName(name) => format!("invalid XML name {name:?}"),
            XmlErrorKind::InvalidEntity(ent) => format!("invalid entity reference &{ent};"),
            XmlErrorKind::TrailingContent => "content after document element".to_owned(),
            XmlErrorKind::NoRootElement => "document has no root element".to_owned(),
            XmlErrorKind::Structure(msg) => msg.clone(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind_message())?;
        if self.position != Position::default() {
            write!(f, " at {}", self.position)?;
        }
        Ok(())
    }
}

impl std::error::Error for XmlError {}

/// Convenient result alias for XML operations.
pub type Result<T> = std::result::Result<T, XmlError>;
