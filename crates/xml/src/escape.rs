//! Entity escaping and unescaping for XML text and attribute values.

use crate::error::{Position, Result, XmlError, XmlErrorKind};

/// Escapes the five predefined XML entities in `input`.
///
/// ```
/// assert_eq!(starlink_xml::escape("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Decodes entity references (`&amp;`, `&#nn;`, `&#xnn;`, ...) in `input`.
///
/// # Errors
///
/// Returns [`XmlErrorKind::InvalidEntity`] for unterminated or unknown
/// references.
///
/// ```
/// assert_eq!(starlink_xml::unescape("a &lt; b").unwrap(), "a < b");
/// ```
pub fn unescape(input: &str) -> Result<String> {
    let mut out = String::with_capacity(input.len());
    let mut chars = input.char_indices();
    while let Some((start, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &input[start + 1..];
        let end = rest.find(';').ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::InvalidEntity(rest.chars().take(8).collect()),
                Position::default(),
            )
        })?;
        let name = &rest[..end];
        out.push(decode_entity(name)?);
        // Skip the entity body and the terminating ';'.
        for _ in 0..end + 1 {
            chars.next();
        }
    }
    Ok(out)
}

fn decode_entity(name: &str) -> Result<char> {
    let invalid =
        || XmlError::new(XmlErrorKind::InvalidEntity(name.to_owned()), Position::default());
    match name {
        "amp" => Ok('&'),
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "quot" => Ok('"'),
        "apos" => Ok('\''),
        _ => {
            let digits = name.strip_prefix('#').ok_or_else(invalid)?;
            let code = if let Some(hex) = digits.strip_prefix('x').or(digits.strip_prefix('X')) {
                u32::from_str_radix(hex, 16).map_err(|_| invalid())?
            } else {
                digits.parse::<u32>().map_err(|_| invalid())?
            };
            char::from_u32(code).ok_or_else(invalid)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrips_specials() {
        let raw = "<a href=\"x\">&'q'</a>";
        let escaped = escape(raw);
        assert!(!escaped.contains('<'));
        assert_eq!(unescape(&escaped).unwrap(), raw);
    }

    #[test]
    fn unescape_decodes_numeric_references() {
        assert_eq!(unescape("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        assert!(unescape("&bogus;").is_err());
    }

    #[test]
    fn unescape_rejects_unterminated_entity() {
        assert!(unescape("&amp").is_err());
    }

    #[test]
    fn unescape_passes_plain_text() {
        assert_eq!(unescape("plain text").unwrap(), "plain text");
    }
}
