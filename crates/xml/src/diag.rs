//! Model diagnostics shared by every analysis layer.
//!
//! `starlink-check` runs static analyses over MDL specifications,
//! coloured automata, merged bridges and ontologies. Each finding is a
//! [`Diagnostic`]: a stable lint code (`MDL001`, `AUT003`, …), a
//! [`Severity`], a human message and — when the model came from an XML
//! document — the [`Position`] of the offending element. The type lives
//! in this crate because every model layer already depends on it and
//! spans are XML source positions.

use crate::error::Position;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note (never fails a check run).
    Info,
    /// Suspicious but deployable; fails only under `--deny-warnings`.
    Warning,
    /// The model is unsound; deployment refuses it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single finding from a static model analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    code: &'static str,
    severity: Severity,
    message: String,
    position: Position,
    subject: String,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            position: Position::default(),
            subject: String::new(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, ..Self::error(code, message) }
    }

    /// Creates an info-severity diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Info, ..Self::error(code, message) }
    }

    /// Attaches an XML source position (builder style).
    pub fn at(mut self, position: Position) -> Self {
        self.position = position;
        self
    }

    /// Names the model the finding belongs to, e.g. `mdl:SLP` or
    /// `bridge:slp-to-bonjour` (builder style).
    pub fn on(mut self, subject: impl Into<String>) -> Self {
        self.subject = subject.into();
        self
    }

    /// The stable lint code, e.g. `MDL004`.
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The severity class.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The XML span, when the model was loaded from a document
    /// (`0:0` means "no position").
    pub fn position(&self) -> Position {
        self.position
    }

    /// The model this finding is about (may be empty).
    pub fn subject(&self) -> &str {
        &self.subject
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if !self.subject.is_empty() {
            write!(f, " {}", self.subject)?;
        }
        if self.position != Position::default() {
            write!(f, " at {}", self.position)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// True when any diagnostic reaches the given severity.
pub fn any_at_least(diags: &[Diagnostic], severity: Severity) -> bool {
    diags.iter().any(|d| d.severity() >= severity)
}

/// Renders diagnostics one per line, errors first.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| b.severity().cmp(&a.severity()).then_with(|| a.code().cmp(b.code())));
    let lines: Vec<String> = sorted.iter().map(|d| d.to_string()).collect();
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_subject_and_span() {
        let d = Diagnostic::error("MDL001", "length field `L` names no field")
            .on("mdl:SLP")
            .at(Position::new(12, 5));
        assert_eq!(d.to_string(), "error[MDL001] mdl:SLP at 12:5: length field `L` names no field");
    }

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn render_puts_errors_first() {
        let diags = vec![
            Diagnostic::info("MDL006", "flattenable"),
            Diagnostic::error("MDL003", "zero-width field"),
            Diagnostic::warning("ONT003", "unused concept"),
        ];
        let out = render(&diags);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("error["));
        assert!(lines[1].starts_with("warning["));
        assert!(lines[2].starts_with("info["));
        assert!(any_at_least(&diags, Severity::Error));
        assert!(!any_at_least(&[diags[0].clone()], Severity::Warning));
    }
}
