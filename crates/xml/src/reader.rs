//! A minimal pull (streaming) XML parser.
//!
//! Supports the XML subset used by the Starlink model DSLs: elements,
//! attributes (single- or double-quoted), text with entity references,
//! CDATA sections, comments, XML declarations and DOCTYPE (both skipped).
//! Namespaces are treated literally (prefixes stay part of the name).

use crate::error::{Position, Result, XmlError, XmlErrorKind};
use crate::escape::unescape;

/// A single parsing event produced by [`Reader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An opening tag, e.g. `<Message type="SLP">`; `self_closing` is set
    /// for `<empty/>` (no matching [`Event::End`] follows).
    Start {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<(String, String)>,
        /// Whether the tag was `<name .../>`.
        self_closing: bool,
    },
    /// A closing tag, e.g. `</Message>`.
    End {
        /// Element name.
        name: String,
    },
    /// Character data with entities decoded. Whitespace-only runs between
    /// tags are still reported; consumers decide whether to keep them.
    Text(String),
    /// A comment (`<!-- ... -->`) body.
    Comment(String),
}

/// A pull parser over a complete XML source string.
///
/// ```
/// use starlink_xml::{Reader, Event};
///
/// let mut reader = Reader::new("<a x='1'>hi</a>");
/// assert!(matches!(reader.next_event().unwrap(), Some(Event::Start { .. })));
/// assert_eq!(reader.next_event().unwrap(), Some(Event::Text("hi".into())));
/// assert!(matches!(reader.next_event().unwrap(), Some(Event::End { .. })));
/// assert_eq!(reader.next_event().unwrap(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `source`.
    pub fn new(source: &'a str) -> Self {
        Reader { src: source.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    /// Current position for error reporting.
    pub fn position(&self) -> Position {
        Position::new(self.line, self.col)
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.position())
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        match self.bump() {
            Some(b) if b == expected => Ok(()),
            Some(b) => Err(self.err(XmlErrorKind::UnexpectedChar(b as char))),
            None => Err(self.err(XmlErrorKind::UnexpectedEof)),
        }
    }

    fn starts_with(&self, prefix: &[u8]) -> bool {
        self.src[self.pos..].starts_with(prefix)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Advances past `prefix`, which the caller has already matched.
    fn skip_known(&mut self, prefix: &[u8]) {
        for _ in 0..prefix.len() {
            self.bump();
        }
    }

    /// Skips until (and including) the byte sequence `terminator`,
    /// returning the skipped body.
    fn take_until(&mut self, terminator: &[u8]) -> Result<String> {
        let start = self.pos;
        while self.pos < self.src.len() {
            if self.starts_with(terminator) {
                let body = &self.src[start..self.pos];
                self.skip_known(terminator);
                return Ok(String::from_utf8_lossy(body).into_owned());
            }
            self.bump();
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            let found = self.peek().map(|b| (b as char).to_string()).unwrap_or_default();
            return Err(self.err(XmlErrorKind::InvalidName(found)));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn read_attribute_value(&mut self) -> Result<String> {
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            Some(other) => return Err(self.err(XmlErrorKind::UnexpectedChar(other as char))),
            None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
        };
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                self.bump();
                return unescape(&raw);
            }
            self.bump();
        }
        Err(self.err(XmlErrorKind::UnexpectedEof))
    }

    fn read_start_tag(&mut self) -> Result<Event> {
        // Caller consumed '<'.
        let name = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.bump();
                    return Ok(Event::Start { name, attributes, self_closing: false });
                }
                Some(b'/') => {
                    self.bump();
                    self.eat(b'>')?;
                    return Ok(Event::Start { name, attributes, self_closing: true });
                }
                Some(_) => {
                    let attr_name = self.read_name()?;
                    self.skip_whitespace();
                    // Bare attributes (`<x checked>`) are not part of XML;
                    // require '='.
                    self.eat(b'=')?;
                    self.skip_whitespace();
                    let value = self.read_attribute_value()?;
                    attributes.push((attr_name, value));
                }
                None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn read_end_tag(&mut self) -> Result<Event> {
        // Caller consumed "</".
        let name = self.read_name()?;
        self.skip_whitespace();
        self.eat(b'>')?;
        Ok(Event::End { name })
    }

    /// Returns the next event, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns an [`XmlError`] on malformed markup.
    pub fn next_event(&mut self) -> Result<Option<Event>> {
        loop {
            if self.pos >= self.src.len() {
                return Ok(None);
            }
            if self.peek() == Some(b'<') {
                match self.peek_at(1) {
                    Some(b'/') => {
                        self.skip_known(b"</");
                        return self.read_end_tag().map(Some);
                    }
                    Some(b'?') => {
                        // XML declaration / processing instruction: skip.
                        self.skip_known(b"<?");
                        self.take_until(b"?>")?;
                        continue;
                    }
                    Some(b'!') => {
                        if self.starts_with(b"<!--") {
                            self.skip_known(b"<!--");
                            let body = self.take_until(b"-->")?;
                            return Ok(Some(Event::Comment(body)));
                        }
                        if self.starts_with(b"<![CDATA[") {
                            self.skip_known(b"<![CDATA[");
                            let body = self.take_until(b"]]>")?;
                            return Ok(Some(Event::Text(body)));
                        }
                        // DOCTYPE or similar: skip to the matching '>'.
                        self.skip_known(b"<!");
                        self.take_until(b">")?;
                        continue;
                    }
                    Some(_) => {
                        self.bump(); // consume '<'
                        return self.read_start_tag().map(Some);
                    }
                    None => return Err(self.err(XmlErrorKind::UnexpectedEof)),
                }
            }
            // Text run up to the next '<' or EOF.
            let start = self.pos;
            while self.peek().is_some() && self.peek() != Some(b'<') {
                self.bump();
            }
            let raw = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            let text = unescape(&raw)?;
            return Ok(Some(Event::Text(text)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event> {
        let mut reader = Reader::new(src);
        let mut out = Vec::new();
        while let Some(event) = reader.next_event().unwrap() {
            out.push(event);
        }
        out
    }

    #[test]
    fn parses_nested_elements() {
        let evs = events("<a><b>1</b><b>2</b></a>");
        assert_eq!(evs.len(), 8);
        assert!(matches!(&evs[0], Event::Start { name, .. } if name == "a"));
        assert!(matches!(&evs[7], Event::End { name } if name == "a"));
    }

    #[test]
    fn parses_attributes_in_both_quote_styles() {
        let evs = events(r#"<m type="SLP" mode='fast'/>"#);
        match &evs[0] {
            Event::Start { attributes, self_closing, .. } => {
                assert!(*self_closing);
                assert_eq!(attributes[0], ("type".into(), "SLP".into()));
                assert_eq!(attributes[1], ("mode".into(), "fast".into()));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn decodes_entities_in_text_and_attributes() {
        let evs = events(r#"<a v="&lt;x&gt;">1 &amp; 2</a>"#);
        match &evs[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0].1, "<x>"),
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(evs[1], Event::Text("1 & 2".into()));
    }

    #[test]
    fn skips_declaration_and_doctype() {
        let evs = events("<?xml version=\"1.0\"?><!DOCTYPE a><a/>");
        assert!(matches!(&evs[0], Event::Start { name, .. } if name == "a"));
    }

    #[test]
    fn reports_comments() {
        let evs = events("<a><!-- note --></a>");
        assert_eq!(evs[1], Event::Comment(" note ".into()));
    }

    #[test]
    fn parses_cdata_verbatim() {
        let evs = events("<a><![CDATA[1 < 2 & 3]]></a>");
        assert_eq!(evs[1], Event::Text("1 < 2 & 3".into()));
    }

    #[test]
    fn errors_on_unterminated_tag() {
        let mut reader = Reader::new("<a");
        assert!(reader.next_event().is_err());
    }

    #[test]
    fn errors_on_unterminated_comment() {
        let mut reader = Reader::new("<!-- oops");
        assert!(reader.next_event().is_err());
    }

    #[test]
    fn tracks_line_numbers() {
        let mut reader = Reader::new("<a>\n\n<");
        reader.next_event().unwrap(); // <a>
        reader.next_event().unwrap(); // text
        let err = reader.next_event().unwrap_err();
        assert_eq!(err.position().line, 3);
    }
}
