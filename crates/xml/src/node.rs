//! A small owned DOM built on top of the pull [`Reader`].

use crate::error::{Position, Result, XmlError, XmlErrorKind};
use crate::reader::{Event, Reader};

/// A node in the document tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A child element.
    Element(Element),
    /// A text run (entities already decoded).
    Text(String),
    /// A comment body.
    Comment(String),
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(el) => Some(el),
            _ => None,
        }
    }

    /// Returns the contained text, if this node is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: name, attributes and ordered children.
///
/// ```
/// use starlink_xml::Element;
///
/// let doc = Element::parse("<Header type='SLP'><XID>16</XID></Header>").unwrap();
/// assert_eq!(doc.name(), "Header");
/// assert_eq!(doc.attr("type"), Some("SLP"));
/// assert_eq!(doc.child("XID").unwrap().text(), "16");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Element {
    name: String,
    attributes: Vec<(String, String)>,
    children: Vec<Node>,
    position: Position,
}

// Positions are parse provenance, not content: two elements are equal when
// their markup is, so round-tripped documents compare equal to built ones.
impl PartialEq for Element {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.attributes == other.attributes
            && self.children == other.children
    }
}

impl Eq for Element {}

impl Element {
    /// Creates an empty element with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
            position: Position::default(),
        }
    }

    /// Parses a complete document and returns its root element.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed XML, a missing root element, or
    /// non-whitespace content outside the root.
    pub fn parse(source: &str) -> Result<Element> {
        let mut reader = Reader::new(source);
        let mut root: Option<Element> = None;
        loop {
            let tag_start = reader.position();
            let Some(event) = reader.next_event()? else { break };
            match event {
                Event::Start { name, attributes, self_closing } => {
                    if root.is_some() {
                        return Err(XmlError::new(
                            XmlErrorKind::TrailingContent,
                            reader.position(),
                        ));
                    }
                    let mut element =
                        Element { name, attributes, children: Vec::new(), position: tag_start };
                    if !self_closing {
                        Self::parse_children(&mut reader, &mut element)?;
                    }
                    root = Some(element);
                }
                Event::Text(text) if text.trim().is_empty() => {}
                Event::Comment(_) => {}
                Event::Text(_) => {
                    return Err(XmlError::new(XmlErrorKind::TrailingContent, reader.position()))
                }
                Event::End { .. } => {
                    return Err(XmlError::new(
                        XmlErrorKind::MismatchedTag {
                            expected: "(none)".into(),
                            found: "?".into(),
                        },
                        reader.position(),
                    ))
                }
            }
        }
        root.ok_or_else(|| XmlError::new(XmlErrorKind::NoRootElement, Default::default()))
    }

    fn parse_children(reader: &mut Reader<'_>, parent: &mut Element) -> Result<()> {
        loop {
            let tag_start = reader.position();
            let event = reader
                .next_event()?
                .ok_or_else(|| XmlError::new(XmlErrorKind::UnexpectedEof, reader.position()))?;
            match event {
                Event::Start { name, attributes, self_closing } => {
                    let mut element =
                        Element { name, attributes, children: Vec::new(), position: tag_start };
                    if !self_closing {
                        Self::parse_children(reader, &mut element)?;
                    }
                    parent.children.push(Node::Element(element));
                }
                Event::End { name } => {
                    if name != parent.name {
                        return Err(XmlError::new(
                            XmlErrorKind::MismatchedTag {
                                expected: parent.name.clone(),
                                found: name,
                            },
                            reader.position(),
                        ));
                    }
                    return Ok(());
                }
                Event::Text(text) => parent.children.push(Node::Text(text)),
                Event::Comment(body) => parent.children.push(Node::Comment(body)),
            }
        }
    }

    /// The element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where this element's start tag sits in the source it was parsed
    /// from (1-based line/column). Elements built programmatically report
    /// the default `0:0` "no position".
    pub fn position(&self) -> Position {
        self.position
    }

    /// All attributes in document order.
    pub fn attributes(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Looks up an attribute, failing with a structural error naming the
    /// element when absent.
    ///
    /// # Errors
    ///
    /// Returns [`XmlErrorKind::Structure`] when the attribute is missing.
    pub fn required_attr(&self, name: &str) -> Result<&str> {
        self.attr(name).ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::Structure(format!(
                    "element <{}> is missing attribute {name:?}",
                    self.name
                )),
                self.position,
            )
        })
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) -> &mut Self {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
        self
    }

    /// All child nodes in document order.
    pub fn nodes(&self) -> &[Node] {
        &self.children
    }

    /// Iterates over child *elements* only.
    pub fn children(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Iterates over child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children().filter(move |el| el.name == name)
    }

    /// The first child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children().find(|el| el.name == name)
    }

    /// The first child element with the given name, failing with a
    /// structural error when absent.
    ///
    /// # Errors
    ///
    /// Returns [`XmlErrorKind::Structure`] when no such child exists.
    pub fn required_child(&self, name: &str) -> Result<&Element> {
        self.child(name).ok_or_else(|| {
            XmlError::new(
                XmlErrorKind::Structure(format!(
                    "element <{}> is missing child <{name}>",
                    self.name
                )),
                self.position,
            )
        })
    }

    /// Concatenated, trimmed text content of this element (direct text
    /// children only).
    pub fn text(&self) -> String {
        self.raw_text().trim().to_owned()
    }

    /// Concatenated text content *without* trimming — for elements whose
    /// whitespace is significant (e.g. abstract-message string values).
    pub fn raw_text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out
    }

    /// Text content of the named child, if present.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(Element::text)
    }

    /// Appends a child element, returning `self` for chaining.
    pub fn push_element(&mut self, element: Element) -> &mut Self {
        self.children.push(Node::Element(element));
        self
    }

    /// Appends a text node, returning `self` for chaining.
    pub fn push_text(&mut self, text: impl Into<String>) -> &mut Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Builder-style helper: creates `<name>text</name>` and appends it.
    pub fn push_child_with_text(&mut self, name: &str, text: impl Into<String>) -> &mut Self {
        let mut child = Element::new(name);
        child.push_text(text);
        self.push_element(child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
        <Types>
            <Version>Integer</Version>
            <URLEntry>String</URLEntry>
            <URLLength>Integer[f-length(URLEntry)]</URLLength>
        </Types>"#;

    #[test]
    fn parse_builds_tree() {
        let root = Element::parse(DOC).unwrap();
        assert_eq!(root.name(), "Types");
        assert_eq!(root.children().count(), 3);
        assert_eq!(root.child_text("Version").unwrap(), "Integer");
        assert_eq!(root.child_text("URLLength").unwrap(), "Integer[f-length(URLEntry)]");
    }

    #[test]
    fn children_named_filters() {
        let root = Element::parse("<a><b>1</b><c/><b>2</b></a>").unwrap();
        let bs: Vec<String> = root.children_named("b").map(Element::text).collect();
        assert_eq!(bs, vec!["1", "2"]);
    }

    #[test]
    fn required_child_errors_with_context() {
        let root = Element::parse("<a/>").unwrap();
        let err = root.required_child("missing").unwrap_err();
        assert!(err.to_string().contains("<a>"));
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn mismatched_close_is_an_error() {
        assert!(Element::parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn trailing_root_is_an_error() {
        assert!(Element::parse("<a/><b/>").is_err());
    }

    #[test]
    fn set_attr_replaces() {
        let mut el = Element::new("x");
        el.set_attr("k", "1");
        el.set_attr("k", "2");
        assert_eq!(el.attr("k"), Some("2"));
        assert_eq!(el.attributes().len(), 1);
    }

    #[test]
    fn elements_carry_source_positions() {
        let root = Element::parse("<a>\n  <b/>\n  <c x='1'/>\n</a>").unwrap();
        assert_eq!(root.position(), Position::new(1, 1));
        assert_eq!(root.child("b").unwrap().position(), Position::new(2, 3));
        assert_eq!(root.child("c").unwrap().position(), Position::new(3, 3));
    }

    #[test]
    fn positions_do_not_affect_equality() {
        let parsed = Element::parse("<a>\n  <b/>\n</a>").unwrap();
        let mut built = Element::new("a");
        built.push_text("\n  ");
        built.push_element(Element::new("b"));
        built.push_text("\n");
        assert_eq!(parsed, built);
    }

    #[test]
    fn required_errors_carry_the_element_position() {
        let root = Element::parse("<a>\n  <b/>\n</a>").unwrap();
        let err = root.child("b").unwrap().required_attr("x").unwrap_err();
        assert_eq!(err.position(), Position::new(2, 3));
        let err = root.required_child("missing").unwrap_err();
        assert_eq!(err.position(), Position::new(1, 1));
    }

    #[test]
    fn comments_are_preserved_as_nodes() {
        let root = Element::parse("<a><!-- hi --><b/></a>").unwrap();
        assert_eq!(root.nodes().len(), 2);
        assert_eq!(root.children().count(), 1);
    }
}
