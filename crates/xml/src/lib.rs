//! # starlink-xml
//!
//! A deliberately small XML library backing the Starlink model DSLs
//! (Message Description Language specifications, coloured-automaton
//! definitions, and merged-automaton/translation-logic documents — the
//! artefacts of Figs. 5, 7, 8 and 11 of the paper).
//!
//! The Starlink framework loads all of its interoperability logic at
//! runtime from XML documents, so the only hard requirements here are:
//!
//! * a forgiving **pull parser** ([`Reader`]) producing [`Event`]s,
//! * an owned **DOM** ([`Element`], [`Node`]) with ergonomic child /
//!   attribute accessors used by the spec loaders, and
//! * a **writer** able to re-emit documents ([`to_string`],
//!   [`to_string_pretty`]) so that models can be round-tripped, diffed and
//!   regenerated for the paper's figure listings.
//!
//! Namespaces, DTD validation and encodings other than UTF-8 are out of
//! scope: no Starlink model uses them.
//!
//! ## Example
//!
//! ```
//! use starlink_xml::Element;
//!
//! let mdl = Element::parse(
//!     "<Message type=\"SLPSrvRequest\"><Rule>FunctionID=1</Rule></Message>",
//! )?;
//! assert_eq!(mdl.required_attr("type")?, "SLPSrvRequest");
//! assert_eq!(mdl.required_child("Rule")?.text(), "FunctionID=1");
//! # Ok::<(), starlink_xml::XmlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
mod error;
mod escape;
mod node;
mod reader;
mod writer;

pub use diag::{Diagnostic, Severity};
pub use error::{Position, Result, XmlError, XmlErrorKind};
pub use escape::{escape, unescape};
pub use node::{Element, Node};
pub use reader::{Event, Reader};
pub use writer::{to_string, to_string_pretty, write_element, WriteOptions};
