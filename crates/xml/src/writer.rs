//! Serialising a DOM [`Element`] back to XML text.

use crate::escape::escape;
use crate::node::{Element, Node};
use std::fmt::Write as _;

/// Formatting options for [`write_element`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOptions {
    /// Indentation width in spaces (pretty printing); `None` writes compact
    /// single-line output.
    pub indent: Option<usize>,
    /// Whether to emit an `<?xml version="1.0"?>` declaration first.
    pub declaration: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions { indent: Some(2), declaration: false }
    }
}

/// Serialises `element` with the given options.
///
/// ```
/// use starlink_xml::{Element, to_string};
///
/// let el = Element::parse("<a x='1'><b>t</b></a>").unwrap();
/// assert_eq!(to_string(&el), "<a x=\"1\"><b>t</b></a>");
/// ```
pub fn write_element(element: &Element, options: WriteOptions) -> String {
    let mut out = String::new();
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    write_node(&mut out, element, options.indent, 0);
    out
}

/// Serialises `element` compactly (no indentation, no declaration).
pub fn to_string(element: &Element) -> String {
    write_element(element, WriteOptions { indent: None, declaration: false })
}

/// Serialises `element` with 2-space indentation.
pub fn to_string_pretty(element: &Element) -> String {
    write_element(element, WriteOptions::default())
}

fn write_node(out: &mut String, element: &Element, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(width) = indent {
            for _ in 0..width * depth {
                out.push(' ');
            }
        }
    };
    pad(out, depth);
    let _ = write!(out, "<{}", element.name());
    for (name, value) in element.attributes() {
        let _ = write!(out, " {}=\"{}\"", name, escape(value));
    }
    if element.nodes().is_empty() {
        out.push_str("/>");
        if indent.is_some() {
            out.push('\n');
        }
        return;
    }
    out.push('>');

    // Elements whose children are text-only stay on one line even when
    // pretty-printing, matching the style of the paper's MDL listings.
    let text_only = element.nodes().iter().all(|n| matches!(n, Node::Text(_)));
    if text_only {
        for node in element.nodes() {
            if let Node::Text(t) = node {
                out.push_str(&escape(t));
            }
        }
    } else {
        if indent.is_some() {
            out.push('\n');
        }
        for node in element.nodes() {
            match node {
                Node::Element(child) => write_node(out, child, indent, depth + 1),
                Node::Text(t) => {
                    if !t.trim().is_empty() {
                        pad(out, depth + 1);
                        out.push_str(&escape(t.trim()));
                        if indent.is_some() {
                            out.push('\n');
                        }
                    }
                }
                Node::Comment(body) => {
                    pad(out, depth + 1);
                    let _ = write!(out, "<!--{body}-->");
                    if indent.is_some() {
                        out.push('\n');
                    }
                }
            }
        }
        pad(out, depth);
    }
    let _ = write!(out, "</{}>", element.name());
    if indent.is_some() {
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Element;

    #[test]
    fn compact_roundtrip() {
        let src = r#"<Header type="SLP"><XID>16</XID><LangTag>LangTagLen</LangTag></Header>"#;
        let parsed = Element::parse(src).unwrap();
        assert_eq!(to_string(&parsed), src);
    }

    #[test]
    fn escapes_attribute_values() {
        let mut el = Element::new("a");
        el.set_attr("v", "1 < 2 & \"x\"");
        let text = to_string(&el);
        assert_eq!(text, r#"<a v="1 &lt; 2 &amp; &quot;x&quot;"/>"#);
        // And it parses back to the same value.
        let back = Element::parse(&text).unwrap();
        assert_eq!(back.attr("v"), Some("1 < 2 & \"x\""));
    }

    #[test]
    fn pretty_print_indents_nested_elements() {
        let parsed = Element::parse("<a><b><c>1</c></b></a>").unwrap();
        let pretty = to_string_pretty(&parsed);
        assert!(pretty.contains("\n  <b>"));
        assert!(pretty.contains("\n    <c>1</c>"));
    }

    #[test]
    fn declaration_is_emitted_when_requested() {
        let el = Element::new("root");
        let text = write_element(&el, WriteOptions { indent: None, declaration: true });
        assert!(text.starts_with("<?xml"));
    }

    #[test]
    fn parse_write_parse_is_stable() {
        let src = "<m><!-- c --><f a=\"1\">t&amp;u</f><g/></m>";
        let once = Element::parse(src).unwrap();
        let twice = Element::parse(&to_string(&once)).unwrap();
        assert_eq!(once, twice);
    }
}
