//! The gateway soak: the entire 12-case bridge matrix served
//! concurrently by [`ShardedGateway`]s over **real loopback sockets**,
//! holding ≥100k live sessions open at once.
//!
//! Two phases:
//!
//! 1. **Hold** — every case's target-side service delay is pinned to
//!    one long fixed value (`SoakConfig::hold`), so every session
//!    started inside the hold window stays open until the window
//!    closes. The driver ramps all planned sessions through the
//!    gateways' real sockets, then the whole fleet sits at peak
//!    concurrency: the monitor samples fleet-wide `active` (exact,
//!    from the engines' shared gauges) and resident-set size from
//!    `/proc/self/status`, whose post-warmup flatness is the leak
//!    check. When the window closes the replies flood back and every
//!    session must complete — **zero wedged** is the liveness
//!    contract: driver-side `completed == started` and engine-side
//!    `active == 0`.
//! 2. **Sustained** — per case, a fresh instant-calibration deployment
//!    is driven with a bounded in-flight window to measure sustained
//!    msgs/s and p50/p99 wall-clock session latency *through the
//!    readiness gateway* (real sockets, epoll wakeups — not the
//!    in-process dispatch path of [`crate::sharded`]).
//!
//! Session multiplexing: the fd budget (typically 20k on CI) cannot
//! give 100k sessions a socket each, so sessions share client sockets,
//! disambiguated by protocol transaction id (SLP XID, DNS ID, WSD
//! `RelatesTo` uuid) exactly as the correlated engine keys them. SSDP
//! carries no id, so UPnP-source sessions get a socket each (the
//! engine peer-keys them by `127.0.0.1:<client port>`); UPnP-target
//! replies are matched by the engines' waiting-receiver scan, so those
//! cases get a smaller share of the plan. The allocation lives in
//! [`plan_sessions`].

use crate::sharded::{bridge_udp_port, parse_location, request_wire, WSD_TYPE};
use starlink_automata::FunctionRegistry;
use starlink_core::{
    EngineConfig, GatewayConfig, ShardInput, ShardOutput, ShardedBridge, ShardedGateway,
    ShardedStats, Starlink,
};
use starlink_message::Value;
use starlink_net::{Bytes, LatencyModel, LoopbackUdp, SimAddr, SimDuration, MAX_DATAGRAM};
use starlink_protocols::{
    bridges::{self, BridgeCase, Family},
    http, mdns, slp, ssdp, wsd, Calibration, DelayRange,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Parameters of a soak run.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Total sessions held concurrently across the whole matrix
    /// (split over the cases by [`plan_sessions`]).
    pub sessions: usize,
    /// The hold window: every target-side service delay is fixed to
    /// this, so sessions started inside one window are all open
    /// together. Must comfortably exceed the ramp time or peak
    /// concurrency falls short of `sessions`.
    pub hold: Duration,
    /// Engine shards per case deployment.
    pub shards_per_case: usize,
    /// Gateway threads per case deployment.
    pub gateway_threads: usize,
    /// Sessions multiplexed onto one client socket (id-carrying
    /// protocols only; SSDP sources always get one session per
    /// socket).
    pub inflight_per_socket: usize,
    /// Sessions per case in the sustained (phase 2) measurement.
    pub sustained_per_case: usize,
    /// Extra wall-clock budget after the hold window closes for the
    /// reply flood to drain.
    pub drain_grace: Duration,
    /// Force the portable polling gateway front even where epoll
    /// works.
    pub force_polling: bool,
}

impl SoakConfig {
    /// The full acceptance-run shape: ≥100k concurrent sessions.
    pub fn full() -> Self {
        SoakConfig {
            sessions: 102_000,
            hold: Duration::from_secs(25),
            shards_per_case: 2,
            gateway_threads: 1,
            inflight_per_socket: 10,
            sustained_per_case: 2_000,
            drain_grace: Duration::from_secs(90),
            force_polling: false,
        }
    }

    /// A small shape for `cargo test` smoke runs.
    pub fn smoke() -> Self {
        SoakConfig {
            sessions: 900,
            hold: Duration::from_secs(3),
            sustained_per_case: 160,
            drain_grace: Duration::from_secs(30),
            ..SoakConfig::full()
        }
    }

    /// Applies the environment knobs `SOAK_SESSIONS`, `SOAK_SECS`
    /// (hold window), `SOAK_SUSTAINED` and `SOAK_FORCE_POLLING`.
    pub fn with_env(mut self) -> Self {
        if let Some(v) = env_usize("SOAK_SESSIONS") {
            self.sessions = v;
        }
        if let Some(v) = env_usize("SOAK_SECS") {
            self.hold = Duration::from_secs(v as u64);
        }
        if let Some(v) = env_usize("SOAK_SUSTAINED") {
            self.sustained_per_case = v;
        }
        if std::env::var("SOAK_FORCE_POLLING").is_ok_and(|v| v == "1") {
            self.force_polling = true;
        }
        self
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// What one case contributed to the hold phase.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Matrix case number (1–12).
    pub case: usize,
    /// Matrix row label.
    pub name: &'static str,
    /// Sessions planned (= started unless a send failed).
    pub sessions: usize,
    /// Sessions whose own reply came back on their own socket.
    pub completed: usize,
    /// Client sockets the sessions were multiplexed over.
    pub sockets: usize,
    /// Replies that failed to decode.
    pub garbled: u64,
    /// Replies that arrived on a socket other than the session's own —
    /// gateway affinity violations.
    pub misrouted: u64,
    /// Replies for already-completed sessions.
    pub duplicates: u64,
    /// Completions whose discovered URL was not the expected one.
    pub wrong_url: u64,
    /// UPnP description fetches that failed at the TCP layer.
    pub tcp_failed: u64,
}

/// One case's sustained (phase 2) measurement through the gateway.
#[derive(Debug, Clone)]
pub struct SustainedReport {
    /// Matrix case number (1–12).
    pub case: usize,
    /// Matrix row label.
    pub name: &'static str,
    /// Sessions driven (bounded in-flight window).
    pub sessions: usize,
    /// Sessions that completed.
    pub completed: usize,
    /// Real datagrams through the gateway sockets per second.
    pub msgs_per_sec: f64,
    /// Median wall-clock session latency in µs.
    pub p50_us: u64,
    /// 99th-percentile wall-clock session latency in µs.
    pub p99_us: u64,
}

/// The outcome of [`run_soak`].
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// `"readiness"` or `"polling"` (from [`ShardedGateway::mode`]).
    pub mode: &'static str,
    /// Sessions planned across the matrix.
    pub sessions: usize,
    /// Sessions actually started (requests sent).
    pub started: usize,
    /// Sessions completed with their own reply.
    pub completed: usize,
    /// `started - completed` after the drain deadline — the liveness
    /// contract demands zero.
    pub wedged: usize,
    /// Engine-side sessions still `active` after the fleet settled —
    /// must be zero.
    pub engine_leaked: u64,
    /// Peak fleet-wide concurrent sessions (exact engine gauges,
    /// sampled).
    pub peak_concurrent: u64,
    /// Client sockets bound across all cases.
    pub sockets: usize,
    /// How long the ramp took to start every session.
    pub ramp: Duration,
    /// The configured hold window.
    pub hold: Duration,
    /// First reply to last reply.
    pub drain: Duration,
    /// Resident set right after the ramp (everything allocated, fleet
    /// at peak).
    pub rss_warmup_kb: u64,
    /// Peak resident set while the fleet held at peak concurrency —
    /// flat against `rss_warmup_kb` means no per-tick leak.
    pub rss_hold_peak_kb: u64,
    /// Resident set after the drain.
    pub rss_final_kb: u64,
    /// Real datagrams (in + out) across all gateway sockets during
    /// phase 1.
    pub gateway_datagrams: u64,
    /// Gateway-socket datagram rate over the reply-flood drain.
    pub drain_msgs_per_sec: f64,
    /// Errors from gateways, engines and the driver (bounded).
    pub errors: Vec<String>,
    /// Per-case hold-phase accounting.
    pub cases: Vec<CaseReport>,
    /// Per-case sustained measurements (phase 2).
    pub sustained: Vec<SustainedReport>,
}

impl SoakReport {
    /// Asserts the soak's acceptance contract: every session
    /// completed (zero wedged, zero engine-side leaks), replies were
    /// isolated (no misroutes, duplicates, garbles or wrong URLs), no
    /// errors anywhere, peak concurrency reached `min_peak`, and RSS
    /// stayed flat over the hold (≤10% + 16 MiB above warmup).
    ///
    /// # Panics
    ///
    /// Panics with the failing metric when any of the above is
    /// violated.
    pub fn assert_healthy(&self, min_peak: u64) {
        assert!(self.errors.is_empty(), "soak errors: {:?}", self.errors);
        assert_eq!(self.started, self.sessions, "not every planned session started");
        assert_eq!(self.wedged, 0, "{} wedged sessions (of {})", self.wedged, self.started);
        assert_eq!(self.completed, self.started);
        assert_eq!(self.engine_leaked, 0, "engine sessions still active after settle");
        for case in &self.cases {
            assert_eq!(
                case.garbled + case.misrouted + case.duplicates + case.wrong_url + case.tcp_failed,
                0,
                "case {} ({}) reply-isolation violations: {case:?}",
                case.case,
                case.name
            );
        }
        assert!(
            self.peak_concurrent >= min_peak,
            "peak concurrency {} < {min_peak} (ramp {:?} vs hold {:?})",
            self.peak_concurrent,
            self.ramp,
            self.hold
        );
        let slack = (self.rss_warmup_kb / 10).max(16 * 1024);
        assert!(
            self.rss_hold_peak_kb <= self.rss_warmup_kb + slack,
            "RSS grew during hold: warmup {} kB, hold peak {} kB",
            self.rss_warmup_kb,
            self.rss_hold_peak_kb
        );
        for row in &self.sustained {
            assert_eq!(
                row.completed, row.sessions,
                "sustained case {} ({}) incomplete",
                row.case, row.name
            );
            assert!(row.p99_us >= row.p50_us);
        }
    }
}

/// Current resident set in kB from `/proc/self/status` (`None` where
/// procfs is unavailable — RSS checks degrade to no-ops there).
pub fn rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.trim_start_matches("VmRSS:").trim().trim_end_matches("kB").trim().parse().ok()
}

/// Splits `total` sessions over the matrix: UPnP-source cases (one
/// socket per session, peer-keyed) get ~1% each, UPnP-target cases
/// (waiting-receiver matched) ~1.5% each, and the six id-correlated
/// UDP cases share the rest evenly.
pub fn plan_sessions(total: usize) -> Vec<(BridgeCase, usize)> {
    let all = BridgeCase::all();
    let per_source = (total / 100).clamp(4, 20_000);
    let per_target = (total * 3 / 200).clamp(4, 20_000);
    let specials: usize = all
        .iter()
        .map(|case| match (case.source(), case.target()) {
            (Family::Upnp, _) => per_source,
            (_, Family::Upnp) => per_target,
            _ => 0,
        })
        .sum();
    let pure_count = all
        .iter()
        .filter(|c| c.source() != Family::Upnp && c.target() != Family::Upnp)
        .count()
        .max(1);
    let per_pure = (total.saturating_sub(specials) / pure_count).clamp(4, 60_000);
    all.iter()
        .map(|&case| {
            let sessions = match (case.source(), case.target()) {
                (Family::Upnp, _) => per_source,
                (_, Family::Upnp) => per_target,
                _ => per_pure,
            };
            (case, sessions)
        })
        .collect()
}

/// A hold-phase calibration: every target-side service delay fixed to
/// the hold window, everything else instant (so the post-hold tail —
/// description fetches, client overhead models — drains fast).
fn hold_calibration(hold: Duration) -> Calibration {
    let ms = hold.as_millis() as u64;
    let held = DelayRange::new(ms, ms);
    Calibration {
        slp_service_delay: held,
        mdns_service_delay: held,
        wsd_service_delay: held,
        ssdp_device_delay: held,
        ..Calibration::instant()
    }
}

/// Probe-uuid seeds whose `uuid-to-id` digests are pairwise distinct,
/// computed through the same translation registry the WSD-source
/// ontologies apply.
///
/// SLP's `XID` and DNS's `ID` are 16 bits on the wire, so a
/// WSD-source bridge compresses each session's 128-bit `MessageID`
/// into that space: at thousands of concurrent sessions, birthday
/// collisions on the composed target-side id would wedge the younger
/// session — exactly as two native SLP clients drawing the same
/// random XID would (see the id-width caveat on
/// [`bridges::default_correlator`]). Real WSD clients draw fresh
/// uuids per probe; the soak plays that role by skipping any seed
/// whose digest is already taken within the rig.
fn collision_free_wsd_seeds(count: usize) -> Vec<u64> {
    assert!(count < u16::MAX as usize, "more sessions than 16-bit ids");
    let registry = FunctionRegistry::with_builtins();
    let mut taken = vec![false; 1 << 16];
    let mut seeds = Vec::with_capacity(count);
    let mut n = 1u64;
    while seeds.len() < count {
        let id = registry
            .apply("uuid-to-id", &[Value::Str(wsd::probe_uuid(n))])
            .expect("uuid-to-id is a builtin")
            .as_u64()
            .expect("uuid-to-id returns an unsigned") as usize;
        if !taken[id & 0xFFFF] {
            taken[id & 0xFFFF] = true;
            seeds.push(n);
        }
        n += 1;
    }
    seeds
}

/// Client-side protocol phase of one soak session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitUdpReply,
    AwaitSsdp,
    AwaitHttp,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct Session {
    socket: usize,
    phase: Phase,
    started: Option<Instant>,
    latency: Option<Duration>,
}

/// One case's live deployment: a [`ShardedGateway`] over real
/// sockets, the client sockets driving it, and per-session
/// bookkeeping.
struct CaseRig {
    case: BridgeCase,
    target: usize,
    gateway: ShardedGateway,
    stats: ShardedStats,
    sockets: Vec<LoopbackUdp>,
    /// Real gateway ingress port each client socket sends to.
    ingress: Vec<u16>,
    /// Shard each client socket's traffic lands on (by construction).
    socket_shard: Vec<usize>,
    sessions: Vec<Session>,
    /// WSD `MessageID` uuid → session index.
    wsd_by_uuid: HashMap<String, usize>,
    /// UPnP-source only: the session of each socket. Sockets are
    /// never recycled: the engine pairs an accepted description-fetch
    /// connection with the *oldest* same-host session still awaiting
    /// one, so under a shared client host a reused source port could
    /// reach a predecessor's engine session that is still waiting for
    /// its (crossed) TCP leg. One address per session — how distinct
    /// real clients look — keeps peer keys unambiguous for the rig's
    /// whole life.
    current: Vec<Option<usize>>,
    started: usize,
    completed: usize,
    garbled: u64,
    misrouted: u64,
    duplicates: u64,
    wrong_url: u64,
    tcp_failed: u64,
    /// WSD sources only: the probe-uuid seed of each planned session,
    /// chosen so the translated 16-bit target-side ids never collide
    /// within the rig (see [`collision_free_wsd_seeds`]).
    wsd_seeds: Vec<u64>,
    driver_errors: Vec<String>,
    buf: Vec<u8>,
    tcp_scratch: Vec<(usize, ShardOutput)>,
}

impl CaseRig {
    fn launch(
        case: BridgeCase,
        target: usize,
        config: &SoakConfig,
        calibration: Calibration,
        idle_timeout: SimDuration,
    ) -> Result<CaseRig, String> {
        let mut framework = Starlink::new();
        bridges::load_all_mdls(&mut framework).map_err(|e| format!("models: {e}"))?;
        // Id-carrying sources need the correlator so many sessions can
        // share one client socket. SSDP sources must NOT use it: an
        // M-SEARCH has no id, so every translated target-side request
        // of such a session carries the same constant id and the
        // correlator would collapse distinct sessions' replies onto
        // one automaton. They stay peer-keyed — which is exactly why
        // they get one session per socket.
        let correlator = (case.source() != Family::Upnp)
            .then(|| std::sync::Arc::new(bridges::default_correlator()) as _);
        let engine_config = EngineConfig { idle_timeout, correlator, ..EngineConfig::default() };
        let shards = config.shards_per_case.max(1);
        let (engines, stats) = framework
            .deploy_sharded(case.build(crate::BRIDGE), engine_config, shards)
            .map_err(|e| format!("deploy: {e}"))?;
        let seed = 7 + case.number() as u64 * 0x1000;
        let bridge = ShardedBridge::launch(seed, crate::BRIDGE, engines, |_, sim| {
            sim.set_latency(LatencyModel::Fixed(SimDuration::ZERO));
            crate::add_target_service(sim, case, calibration);
        });
        let gateway_config = GatewayConfig {
            udp_ports: vec![bridge_udp_port(case)],
            threads: config.gateway_threads.max(1),
            force_polling: config.force_polling,
            ..GatewayConfig::default()
        };
        let gateway =
            ShardedGateway::launch(bridge, gateway_config).map_err(|e| format!("gateway: {e}"))?;

        let upnp_source = case.source() == Family::Upnp;
        let inflight = if upnp_source { 1 } else { config.inflight_per_socket.max(1) };
        let socket_count = target.div_ceil(inflight).max(1);
        let mut sockets = Vec::with_capacity(socket_count);
        let mut ingress = Vec::with_capacity(socket_count);
        let mut socket_shard = Vec::with_capacity(socket_count);
        let sim_port = bridge_udp_port(case);
        for i in 0..socket_count {
            let socket =
                LoopbackUdp::bind_nonblocking().map_err(|e| format!("client socket bind: {e}"))?;
            let shard = i % gateway.shard_count();
            let real = gateway
                .ingress_real_port(shard, sim_port)
                .ok_or_else(|| format!("no ingress port for shard {shard}"))?;
            sockets.push(socket);
            ingress.push(real);
            socket_shard.push(shard);
        }

        Ok(CaseRig {
            case,
            target,
            gateway,
            stats,
            ingress,
            socket_shard,
            sessions: Vec::with_capacity(target),
            wsd_by_uuid: if case.source() == Family::Wsd {
                HashMap::with_capacity(target)
            } else {
                HashMap::new()
            },
            wsd_seeds: if case.source() == Family::Wsd {
                collision_free_wsd_seeds(target)
            } else {
                Vec::new()
            },
            current: if upnp_source { vec![None; socket_count] } else { Vec::new() },
            sockets,
            started: 0,
            completed: 0,
            garbled: 0,
            misrouted: 0,
            duplicates: 0,
            wrong_url: 0,
            tcp_failed: 0,
            driver_errors: Vec::new(),
            buf: vec![0u8; MAX_DATAGRAM],
            tcp_scratch: Vec::new(),
        })
    }

    fn upnp_source(&self) -> bool {
        self.case.source() == Family::Upnp
    }

    fn all_started(&self) -> bool {
        self.started >= self.target
    }

    fn all_done(&self) -> bool {
        self.completed >= self.target
    }

    fn in_flight(&self) -> usize {
        self.started - self.completed
    }

    fn active(&self) -> u64 {
        self.stats.concurrency().active
    }

    /// Sessions the engines have fully opened (still live or already
    /// complete) — what the driver's ramp lag is measured against.
    fn materialized(&self) -> u64 {
        let c = self.stats.concurrency();
        c.active + c.completed
    }

    /// Starts the next planned session: sends its native request out
    /// of its client socket. Returns `false` when the plan is
    /// exhausted.
    fn start_next(&mut self) -> bool {
        let k = self.started;
        if k >= self.target {
            return false;
        }
        let (socket, phase) = if self.upnp_source() {
            // One never-recycled socket per session (see `current`).
            self.current[k] = Some(k);
            (k, Phase::AwaitSsdp)
        } else {
            (k % self.sockets.len(), Phase::AwaitUdpReply)
        };
        let wire = if self.case.source() == Family::Wsd {
            // Not `request_wire`: WSD probes draw from the rig's
            // collision-free seed set so no two concurrent sessions
            // compose the same 16-bit target-side id.
            let seed = self.wsd_seeds[k];
            self.wsd_by_uuid.insert(wsd::probe_uuid(seed), k);
            wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(seed, WSD_TYPE)))
        } else {
            request_wire(self.case, k)
        };
        if let Err(err) = self.sockets[socket].send_to(&wire, self.ingress[socket]) {
            self.record(format!("case {}: request send failed: {err}", self.case.number()));
        }
        self.sessions.push(Session { socket, phase, started: Some(Instant::now()), latency: None });
        self.started += 1;
        true
    }

    /// Drains every client socket and the gateway's TCP outputs,
    /// advancing session phases. Returns how many replies landed.
    fn sweep(&mut self) -> usize {
        let mut handled = 0usize;
        let mut buf = std::mem::take(&mut self.buf);
        for socket in 0..self.sockets.len() {
            loop {
                match self.sockets[socket].try_recv_into(&mut buf) {
                    Ok(Some((len, _from))) => {
                        self.on_reply(socket, &buf[..len]);
                        handled += 1;
                    }
                    Ok(None) => break,
                    Err(err) => {
                        self.record(format!(
                            "case {}: client recv failed: {err}",
                            self.case.number()
                        ));
                        break;
                    }
                }
            }
        }
        self.buf = buf;

        let mut scratch = std::mem::take(&mut self.tcp_scratch);
        scratch.clear();
        self.gateway.drain_tcp(&mut scratch);
        for (_, output) in scratch.drain(..) {
            handled += 1;
            match output {
                ShardOutput::TcpData { token, payload } => {
                    self.on_tcp_data(token as usize, &payload)
                }
                ShardOutput::TcpConnectFailed { token, error } => {
                    self.tcp_failed += 1;
                    self.record(format!(
                        "case {}: description fetch #{token} failed: {error}",
                        self.case.number()
                    ));
                }
                ShardOutput::TcpClosed { .. } | ShardOutput::Datagram(_) => {}
            }
        }
        self.tcp_scratch = scratch;
        handled
    }

    /// One datagram back on client socket `socket`.
    fn on_reply(&mut self, socket: usize, payload: &[u8]) {
        if self.upnp_source() {
            let Some(k) = self.current[socket] else {
                self.duplicates += 1;
                return;
            };
            let Ok(ssdp::SsdpMessage::Response(response)) = ssdp::decode(payload) else {
                self.garbled += 1;
                return;
            };
            if self.sessions[k].phase != Phase::AwaitSsdp {
                self.duplicates += 1;
                return;
            }
            let (host, port) = parse_location(&response.location);
            let get = http::HttpGet::new("/desc.xml", format!("{host}:{port}"));
            let token = k as u64;
            let shard = self.socket_shard[socket];
            self.gateway.inject(
                shard,
                ShardInput::TcpConnect {
                    token,
                    from: SimAddr::new("127.0.0.1", 49_152),
                    to: SimAddr::new(host, port),
                },
            );
            self.gateway.inject(
                shard,
                ShardInput::TcpData {
                    token,
                    payload: Bytes::copy_from_slice(&http::encode(&http::HttpMessage::Get(get))),
                },
            );
            self.sessions[k].phase = Phase::AwaitHttp;
            return;
        }

        // Id-correlated sources: the reply's own transaction id *is*
        // the session index.
        let matched: Option<(usize, String)> = match self.case.source() {
            Family::Slp => match slp::decode(payload) {
                Ok(slp::SlpMessage::SrvRply(rply)) => Some((rply.xid as usize, rply.url)),
                _ => None,
            },
            Family::Bonjour => match mdns::decode(payload) {
                Ok(mdns::DnsMessage::Response(response)) => {
                    Some((response.id as usize, response.rdata))
                }
                _ => None,
            },
            Family::Wsd => match wsd::decode(payload) {
                Ok(wsd::WsdMessage::ProbeMatch(matched)) => {
                    self.wsd_by_uuid.get(&matched.relates_to).map(|&k| (k, matched.xaddrs))
                }
                _ => None,
            },
            Family::Upnp => None,
        };
        let Some((k, url)) = matched else {
            self.garbled += 1;
            return;
        };
        if k >= self.sessions.len() {
            self.garbled += 1;
            return;
        }
        if self.sessions[k].phase == Phase::Done {
            self.duplicates += 1;
            return;
        }
        // The affinity check: a session's reply must come back on the
        // socket its request left from.
        if self.sessions[k].socket != socket {
            self.misrouted += 1;
            return;
        }
        self.complete(k, &url);
    }

    /// HTTP description data for UPnP-source session `k`.
    fn on_tcp_data(&mut self, k: usize, payload: &[u8]) {
        if k >= self.sessions.len() || self.sessions[k].phase != Phase::AwaitHttp {
            self.duplicates += 1;
            return;
        }
        let Ok(http::HttpMessage::Ok(ok)) = http::decode(payload) else {
            self.garbled += 1;
            return;
        };
        let url = ok
            .body
            .split_once("<URLBase>")
            .and_then(|(_, rest)| rest.split_once("</URLBase>"))
            .map(|(base, _)| base.trim().to_owned())
            .unwrap_or_default();
        let shard = self.socket_shard[self.sessions[k].socket];
        self.gateway.inject(shard, ShardInput::TcpClose { token: k as u64 });
        self.complete(k, &url);
    }

    fn complete(&mut self, k: usize, url: &str) {
        if url != crate::expected_discovery_url(self.case) {
            self.wrong_url += 1;
        }
        let upnp_source = self.upnp_source();
        let session = &mut self.sessions[k];
        session.phase = Phase::Done;
        session.latency = session.started.map(|s| s.elapsed());
        let socket = session.socket;
        self.completed += 1;
        if upnp_source {
            self.current[socket] = None;
        }
    }

    fn record(&mut self, error: String) {
        if self.driver_errors.len() < 64 {
            self.driver_errors.push(error);
        }
    }

    fn into_case_report(self, errors: &mut Vec<String>) -> CaseReport {
        errors.extend(self.driver_errors.iter().take(16).cloned());
        for e in self.gateway.errors().into_iter().take(16) {
            errors.push(format!("case {} gateway: {e}", self.case.number()));
        }
        for e in self.stats.errors().into_iter().take(16) {
            errors.push(format!("case {} engine: {e}", self.case.number()));
        }
        CaseReport {
            case: self.case.number(),
            name: self.case.name(),
            sessions: self.target,
            completed: self.completed,
            sockets: self.sockets.len(),
            garbled: self.garbled,
            misrouted: self.misrouted,
            duplicates: self.duplicates,
            wrong_url: self.wrong_url,
            tcp_failed: self.tcp_failed,
        }
    }
}

/// Runs the full soak (hold phase over the whole matrix, then the
/// per-case sustained phase) and returns the report. Returns `Err`
/// with a reason when the environment cannot host it (no loopback
/// sockets) — callers should skip loudly, not fail.
///
/// # Panics
///
/// Panics on harness bugs (models failing to load or deploy).
pub fn run_soak(config: &SoakConfig) -> Result<SoakReport, String> {
    let plan = plan_sessions(config.sessions);
    let planned: usize = plan.iter().map(|(_, n)| n).sum();
    let calibration = hold_calibration(config.hold);
    let idle_timeout = SimDuration::from_millis(config.hold.as_millis() as u64 * 4 + 60_000);

    let mut rigs = Vec::with_capacity(plan.len());
    for &(case, sessions) in &plan {
        rigs.push(CaseRig::launch(case, sessions, config, calibration, idle_timeout)?);
    }
    let mode = rigs[0].gateway.mode();
    let sockets: usize = rigs.iter().map(|r| r.sockets.len()).sum();

    // ---- Phase 1: ramp ----
    const BURST: usize = 64;
    const LAG_CAP: u64 = 2_048;
    let ramp_start = Instant::now();
    let ramp_deadline = ramp_start + config.hold + Duration::from_secs(120);
    let mut peak_concurrent = 0u64;
    let mut iteration = 0u64;
    loop {
        let mut exhausted = true;
        for rig in &mut rigs {
            for _ in 0..BURST {
                if !rig.start_next() {
                    break;
                }
            }
            exhausted &= rig.all_started();
        }
        let started: u64 = rigs.iter().map(|r| r.started as u64).sum();
        peak_concurrent = peak_concurrent.max(rigs.iter().map(CaseRig::active).sum());
        if exhausted || Instant::now() > ramp_deadline {
            break;
        }
        // Hard backpressure: never run further ahead of the engines
        // than LAG_CAP sessions. The gap between requests sent and
        // sessions the engines have opened is exactly what is still
        // queued in socket and batch buffers — left unbounded, the
        // driver finishes sending long before the fleet is
        // materialized and the post-ramp RSS baseline undershoots.
        while started - rigs.iter().map(CaseRig::materialized).sum::<u64>() > LAG_CAP
            && Instant::now() <= ramp_deadline
        {
            std::thread::sleep(Duration::from_micros(200));
        }
        iteration += 1;
        if iteration.is_multiple_of(32) {
            for rig in &mut rigs {
                rig.sweep();
            }
        }
    }
    let started: usize = rigs.iter().map(|r| r.started).sum();
    // The warmup baseline means "the whole fleet is resident": wait out
    // the tail of engine-side session materialization before sampling.
    while (rigs.iter().map(CaseRig::materialized).sum::<u64>() as usize) < started
        && Instant::now() <= ramp_deadline
    {
        std::thread::sleep(Duration::from_micros(200));
        peak_concurrent = peak_concurrent.max(rigs.iter().map(CaseRig::active).sum());
    }
    let ramp = ramp_start.elapsed();
    let rss_warmup_kb = rss_kb().unwrap_or(0);
    let mut rss_hold_peak_kb = rss_warmup_kb;

    // ---- Phase 1: hold + drain ----
    let deadline = ramp_start + config.hold + ramp + config.drain_grace;
    let mut first_reply: Option<Instant> = None;
    let mut last_reply: Option<Instant> = None;
    let mut last_sample = Instant::now();
    loop {
        let mut handled = 0usize;
        for rig in &mut rigs {
            handled += rig.sweep();
        }
        if handled > 0 {
            let now = Instant::now();
            first_reply.get_or_insert(now);
            last_reply = Some(now);
        }
        if last_sample.elapsed() >= Duration::from_millis(200) {
            last_sample = Instant::now();
            let active: u64 = rigs.iter().map(CaseRig::active).sum();
            peak_concurrent = peak_concurrent.max(active);
            // The quiet window is bounded by the calibrated service
            // delay (= the hold), measured from request arrival: no
            // engine serves before `ramp_start + hold`. Past that
            // point the reply flood is already allocating inside the
            // engines even though the driver has yet to recv its
            // first reply, so those samples belong to the drain.
            if first_reply.is_none() && ramp_start.elapsed() < config.hold {
                // Still inside the hold window: RSS must stay flat.
                let rss = rss_kb().unwrap_or(0);
                if std::env::var_os("SOAK_DEBUG_RSS").is_some() {
                    eprintln!("hold {:?}: rss {} kB", ramp_start.elapsed(), rss);
                }
                rss_hold_peak_kb = rss_hold_peak_kb.max(rss);
            }
        }
        if rigs.iter().all(CaseRig::all_done) || Instant::now() > deadline {
            break;
        }
        if handled == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let drain = match (first_reply, last_reply) {
        (Some(first), Some(last)) => last.duration_since(first),
        _ => Duration::ZERO,
    };

    // ---- Settle: engines must hold zero active sessions ----
    for rig in &rigs {
        rig.gateway.flush();
    }
    let settle_deadline = Instant::now() + Duration::from_secs(10);
    let engine_leaked = loop {
        let active: u64 = rigs.iter().map(CaseRig::active).sum();
        if active == 0 || Instant::now() > settle_deadline {
            break active;
        }
        std::thread::sleep(Duration::from_millis(10));
    };

    let completed: usize = rigs.iter().map(|r| r.completed).sum();
    let gateway_datagrams: u64 = rigs
        .iter()
        .map(|r| {
            let s = r.gateway.stats();
            s.datagrams_in + s.datagrams_out
        })
        .sum();
    // All request+reply datagrams over the reply flood's wall window
    // (floored so a near-instant smoke drain doesn't inflate the rate).
    let drain_msgs_per_sec =
        gateway_datagrams as f64 / drain.max(Duration::from_millis(100)).as_secs_f64();
    let rss_final_kb = rss_kb().unwrap_or(0);

    let mut errors = Vec::new();
    let cases: Vec<CaseReport> =
        rigs.into_iter().map(|rig| rig.into_case_report(&mut errors)).collect();

    // ---- Phase 2: sustained per case ----
    let mut sustained = Vec::new();
    for &(case, _) in &plan {
        sustained.push(run_sustained(case, config, &mut errors)?);
    }

    Ok(SoakReport {
        mode,
        sessions: planned,
        started,
        completed,
        wedged: started - completed,
        engine_leaked,
        peak_concurrent,
        sockets,
        ramp,
        hold: config.hold,
        drain,
        rss_warmup_kb,
        rss_hold_peak_kb,
        rss_final_kb,
        gateway_datagrams,
        drain_msgs_per_sec,
        errors,
        cases,
        sustained,
    })
}

/// Phase 2 for one case: a fresh instant-calibration gateway
/// deployment driven with a bounded in-flight window.
fn run_sustained(
    case: BridgeCase,
    config: &SoakConfig,
    errors: &mut Vec<String>,
) -> Result<SustainedReport, String> {
    let sessions = config.sustained_per_case.clamp(16, 60_000);
    let mut rig = CaseRig::launch(
        case,
        sessions,
        config,
        Calibration::instant(),
        SimDuration::from_secs(60),
    )?;
    let window = if rig.upnp_source() { rig.sockets.len().min(128) } else { 128 };
    let start = Instant::now();
    let deadline = start + Duration::from_secs(120);
    loop {
        while rig.in_flight() < window && rig.start_next() {}
        let handled = rig.sweep();
        if rig.all_done() || Instant::now() > deadline {
            break;
        }
        if handled == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let elapsed = start.elapsed();
    for e in rig.driver_errors.iter().take(8) {
        errors.push(format!("sustained case {}: {e}", case.number()));
    }
    for e in rig.gateway.errors().into_iter().take(8) {
        errors.push(format!("sustained case {} gateway: {e}", case.number()));
    }
    for e in rig.stats.errors().into_iter().take(8) {
        errors.push(format!("sustained case {} engine: {e}", case.number()));
    }
    let gateway = rig.gateway.stats();
    let mut latencies: Vec<u64> =
        rig.sessions.iter().filter_map(|s| s.latency.map(|l| l.as_micros() as u64)).collect();
    latencies.sort_unstable();
    Ok(SustainedReport {
        case: case.number(),
        name: case.name(),
        sessions,
        completed: rig.completed,
        msgs_per_sec: (gateway.datagrams_in + gateway.datagrams_out) as f64
            / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
    })
}

/// The `p`-th percentile of an already-sorted sample set, in the
/// sample's own unit (0 when empty).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_case_and_respects_the_total() {
        let plan = plan_sessions(102_000);
        assert_eq!(plan.len(), BridgeCase::all().len());
        let total: usize = plan.iter().map(|(_, n)| n).sum();
        assert!((100_000..=104_000).contains(&total), "planned {total} sessions for a 102k target");
        for &(case, sessions) in &plan {
            assert!(sessions >= 4, "case {} got {sessions}", case.number());
            // UPnP-source sessions cost a socket each; they must stay
            // a small share or the fd budget blows.
            if case.source() == Family::Upnp {
                assert!(sessions <= total / 50);
            }
        }
    }

    #[test]
    fn wsd_seeds_translate_to_distinct_ids_where_the_naive_draw_collides() {
        let digest = |n: u64| {
            FunctionRegistry::with_builtins()
                .apply("uuid-to-id", &[Value::Str(wsd::probe_uuid(n))])
                .unwrap()
                .as_u64()
                .unwrap()
        };
        let seeds = collision_free_wsd_seeds(2_000);
        assert_eq!(seeds.len(), 2_000);
        let ids: std::collections::HashSet<u64> = seeds.iter().map(|&n| digest(n)).collect();
        assert_eq!(ids.len(), seeds.len(), "seed set produced colliding 16-bit ids");
        // The naive 1..=n draw the throughput harness uses birthday-
        // collides well before 2k concurrent sessions — the reason
        // this selection exists.
        let naive: std::collections::HashSet<u64> = (1..=2_000).map(digest).collect();
        assert!(naive.len() < 2_000, "expected 16-bit birthday collisions in 1..=2000");
    }

    #[test]
    fn percentile_picks_the_right_ranks() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 51);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
