//! # starlink-bench
//!
//! The evaluation harness: everything needed to regenerate the tables and
//! figures of the paper's §V/§VI from the implementation in this
//! repository.
//!
//! * [`run_native`] — one native discovery (Fig. 12(a) row sample);
//! * [`run_bridge_case`] — one bridged discovery, returning the bridge's
//!   translation time (Fig. 12(b) row sample);
//! * [`sweep`]/[`Stats`] — the paper's min/median/max over repeated runs;
//! * [`fig12a_table`]/[`fig12b_table`] — the full tables with the paper's
//!   published values alongside for shape comparison.
//!
//! The `benches/` directory contains the runnable harnesses:
//! `fig12a`/`fig12b` print the tables, `figures` regenerates the model
//! figures (DOT + XML), and `codec`/`fieldpath`/`engine`/`xml` are
//! Criterion microbenches of the framework's real computational costs.
//!
//! The [`chaos`] module is the network-chaos conformance harness: named
//! impairment profiles, the quiescence-driven cell runner and the
//! liveness contract `tests/chaos_matrix.rs` enforces over every bridge
//! case × profile × shard count.
//!
//! # Performance
//!
//! The parse → translate → compose pipeline is the repository's hot
//! path — the analogue of the per-message translation latency §VI
//! measures. Two benches guard it against regressions:
//!
//! * **`codec`** — wall-clock time per message for the model-driven
//!   codecs next to the hand-written native codecs (the price of
//!   genericity);
//! * **`alloc`** — exact allocator calls per parse / compose /
//!   round-trip, counted by a wrapping global allocator (wall-clock
//!   benches can hide allocator pressure behind a warm cache);
//! * **`concurrent`** — wall-clock per run of N staggered clients
//!   through one engine (the multi-session runtime scenario), next to
//!   the single-session `engine` bench;
//! * **`throughput`** — the sharded saturation suite: sustained
//!   msgs/sec and p50/p99 session latency for all twelve cases at
//!   1/2/4/8 shards, driven by the wire-level client harness in
//!   [`sharded`] with every reply verified.
//!
//! `BENCH_codec.json` at the repository root snapshots the first three.
//! To regenerate it after touching the codec or runtime path:
//!
//! ```sh
//! CRITERION_SHIM_JSON=/tmp/codec.json cargo bench -p starlink-bench --bench codec
//! ALLOC_BENCH_JSON=/tmp/alloc.json   cargo bench -p starlink-bench --bench alloc
//! CRITERION_SHIM_JSON=/tmp/conc.json cargo bench -p starlink-bench --bench concurrent
//! ```
//!
//! `BENCH_throughput.json` snapshots the sharded suite; regenerate with
//!
//! ```sh
//! THROUGHPUT_BENCH_JSON=BENCH_throughput.json \
//!   cargo bench -p starlink-bench --bench throughput
//! ```
//!
//! (knobs: `THROUGHPUT_CLIENTS`, `THROUGHPUT_REPS`, `THROUGHPUT_SHARDS`,
//! `THROUGHPUT_WAVE`). Shard workers are OS threads, so aggregate
//! msgs/sec grows with the shard count only up to the machine's core
//! count — the JSON records `cores_available` for that reason, and
//! numbers regenerated on a single-core container show a flat curve.
//!
//! then merge the two JSON files into `BENCH_codec.json`, keeping the
//! previous numbers as the `before` entries so the trajectory stays
//! visible. The current snapshot records the zero-allocation codec pass:
//! interned `Label`s end the per-field `String` clones, codecs compile
//! their specs into flat field plans at generation time, composers write
//! into a reusable scratch buffer (`compose_into`), and the bit I/O
//! layer moves whole bytes instead of single bits wherever alignment
//! allows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod sharded;
pub mod soak;

pub use chaos::{run_chaos_cell, ChaosCell, ChaosProfile};
pub use sharded::{
    run_sharded_case, run_sharded_mixed, run_sharded_scripted, ClientOutcome, ScriptedCommand,
    ScriptedRun, ShardedRun, ShardedWorkload,
};

use starlink_core::{ConcurrencyStats, EngineConfig, Starlink};
use starlink_net::{Actor, DelayedActor, Impairments, SimDuration, SimNet};
use starlink_protocols::{
    bridges::{self, BridgeCase, Family},
    mdns, slp, upnp, wsd, Calibration, DiscoveryProbe,
};

/// Host layout used by every experiment (client / bridge / service on one
/// simulated machine-pair, as in §VI).
pub const CLIENT: &str = "10.0.0.1";
/// The bridge host.
pub const BRIDGE: &str = "10.0.0.2";
/// The legacy service host.
pub const SERVICE: &str = "10.0.0.3";

const SLP_TYPE: &str = "service:printer";
const UPNP_TYPE: &str = "urn:schemas-upnp-org:service:printer:1";
const DNS_TYPE: &str = "_printer._tcp.local";
const WSD_TYPE: &str = "dn:printer";
const SERVICE_URL: &str = "service:printer://10.0.0.3:631";
const WSD_SERVICE_URL: &str = "http://10.0.0.3:5357/device";

/// Adds the target-side legacy service of `case` to a simulation, by
/// family — the single place a new protocol family's service actor is
/// wired into every harness.
pub fn add_target_service(sim: &mut SimNet, case: BridgeCase, calibration: Calibration) {
    match case.target() {
        Family::Upnp => {
            sim.add_actor(SERVICE, upnp::UpnpDevice::new(UPNP_TYPE, SERVICE, calibration));
        }
        Family::Bonjour => {
            sim.add_actor(SERVICE, mdns::BonjourService::new(DNS_TYPE, SERVICE_URL, calibration));
        }
        Family::Slp => {
            sim.add_actor(SERVICE, slp::SlpService::new(SLP_TYPE, SERVICE_URL, calibration));
        }
        Family::Wsd => {
            sim.add_actor(SERVICE, wsd::WsdTarget::new(WSD_TYPE, WSD_SERVICE_URL, calibration));
        }
    }
}

/// The source-side legacy client actor of `case` (client number `index`
/// carries its own transaction id / uuid where the protocol has one).
fn source_client(
    case: BridgeCase,
    index: u64,
    calibration: Calibration,
    probe: DiscoveryProbe,
) -> Box<dyn Actor> {
    match case.source() {
        Family::Slp => Box::new(slp::SlpClient::new(SLP_TYPE, probe)),
        Family::Upnp => Box::new(upnp::UpnpClient::new(UPNP_TYPE, calibration, probe)),
        Family::Bonjour => Box::new(mdns::BonjourClient::new(DNS_TYPE, calibration, probe)),
        Family::Wsd => Box::new(wsd::WsdClient::with_id(WSD_TYPE, 1 + index, calibration, probe)),
    }
}

/// The three legacy protocols of Fig. 12(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeProtocol {
    /// OpenSLP-modelled SLP.
    Slp,
    /// Apple-SDK-modelled Bonjour.
    Bonjour,
    /// CyberLink-modelled UPnP.
    Upnp,
}

impl NativeProtocol {
    /// All three protocols in the paper's row order.
    pub fn all() -> [NativeProtocol; 3] {
        [NativeProtocol::Slp, NativeProtocol::Bonjour, NativeProtocol::Upnp]
    }

    /// The paper's row label.
    pub fn name(&self) -> &'static str {
        match self {
            NativeProtocol::Slp => "SLP",
            NativeProtocol::Bonjour => "Bonjour",
            NativeProtocol::Upnp => "UPnP",
        }
    }

    /// The paper's published (min, median, max) in milliseconds.
    pub fn paper_row(&self) -> (u64, u64, u64) {
        match self {
            NativeProtocol::Slp => (5_982, 6_022, 6_053),
            NativeProtocol::Bonjour => (687, 710, 726),
            NativeProtocol::Upnp => (945, 1_014, 1_079),
        }
    }
}

/// Runs one *native* discovery (no bridge) and returns the client's
/// response time.
///
/// # Panics
///
/// Panics when the discovery does not complete (a harness bug).
pub fn run_native(protocol: NativeProtocol, seed: u64, calibration: Calibration) -> SimDuration {
    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(seed);
    match protocol {
        NativeProtocol::Slp => {
            sim.add_actor(SERVICE, slp::SlpService::new(SLP_TYPE, SERVICE_URL, calibration));
            sim.add_actor(CLIENT, slp::SlpClient::new(SLP_TYPE, probe.clone()));
        }
        NativeProtocol::Bonjour => {
            sim.add_actor(SERVICE, mdns::BonjourService::new(DNS_TYPE, SERVICE_URL, calibration));
            sim.add_actor(CLIENT, mdns::BonjourClient::new(DNS_TYPE, calibration, probe.clone()));
        }
        NativeProtocol::Upnp => {
            sim.add_actor(SERVICE, upnp::UpnpDevice::new(UPNP_TYPE, SERVICE, calibration));
            sim.add_actor(CLIENT, upnp::UpnpClient::new(UPNP_TYPE, calibration, probe.clone()));
        }
    }
    sim.run_until_idle();
    probe.first().expect("native discovery completes").elapsed
}

/// Runs one *bridged* discovery for `case` and returns the bridge's
/// translation time ("from when the message was first received by the
/// framework until the translated output response was sent", §VI).
///
/// # Panics
///
/// Panics when the bridged discovery does not complete.
pub fn run_bridge_case(case: BridgeCase, seed: u64, calibration: Calibration) -> SimDuration {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let (engine, stats) = framework.deploy(case.build(BRIDGE)).expect("bridge deploys");

    let probe = DiscoveryProbe::new();
    let mut sim = SimNet::new(seed);
    sim.add_actor(BRIDGE, engine);
    add_target_service(&mut sim, case, calibration);
    sim.add_actor(CLIENT, source_client(case, 0, calibration, probe.clone()));
    sim.run_until_idle();
    assert_eq!(
        probe.len(),
        1,
        "case {}: discovery incomplete; errors: {:?}",
        case.number(),
        stats.errors()
    );
    stats.translation_times()[0]
}

/// The service URL a client of `case` is expected to discover.
pub fn expected_discovery_url(case: BridgeCase) -> &'static str {
    match case.target() {
        Family::Upnp => "http://10.0.0.3:5000",
        Family::Wsd => WSD_SERVICE_URL,
        Family::Slp | Family::Bonjour => SERVICE_URL,
    }
}

/// Runs one concurrent legacy client of `case`'s source protocol per
/// `stagger_us` entry through one bridge + one target service (the
/// multi-session runtime scenario): client `i` starts after
/// `stagger_us[i]` µs so datagrams of different sessions interleave
/// mid-exchange. Returns one probe per client plus the bridge stats —
/// nothing is asserted, so tests can probe failure modes too.
pub fn run_concurrent_clients_with(
    case: BridgeCase,
    seed: u64,
    calibration: Calibration,
    stagger_us: &[u64],
) -> (Vec<DiscoveryProbe>, starlink_core::BridgeStats) {
    // No trace rendering: this is the Criterion concurrent-bench hot
    // loop, which must not pay for formatting a discarded string.
    let (probes, stats, _) = run_clients(
        case,
        seed,
        calibration,
        stagger_us,
        Impairments::none(),
        false,
        EngineConfig::default(),
        |_| {},
    );
    (probes, stats)
}

/// The chaos variant of [`run_concurrent_clients_with`]: the same
/// interleaved legacy clients, but the single shared simulation runs
/// under `impairments`, and the full [`SimNet`] trace text is returned —
/// the byte-comparable evidence for `(seed, profile)` reproduction and
/// determinism proofs. Nothing is asserted.
pub fn run_concurrent_clients_chaos(
    case: BridgeCase,
    seed: u64,
    calibration: Calibration,
    stagger_us: &[u64],
    impairments: Impairments,
) -> (Vec<DiscoveryProbe>, starlink_core::BridgeStats, String) {
    let (probes, stats, trace) = run_clients(
        case,
        seed,
        calibration,
        stagger_us,
        impairments,
        true,
        EngineConfig::default(),
        |_| {},
    );
    (probes, stats, trace.unwrap_or_default())
}

/// The knob-install variant of [`run_concurrent_clients_chaos`]: the
/// same interleaved clients, but the engine deploys with an explicit
/// [`EngineConfig`] and `configure` runs against the simulation before
/// any actor is added — the hook for installing link bandwidth, pass
/// schedules or store-and-forward and comparing the resulting trace
/// byte-for-byte against an untouched baseline.
pub fn run_concurrent_clients_chaos_configured(
    case: BridgeCase,
    seed: u64,
    calibration: Calibration,
    stagger_us: &[u64],
    impairments: Impairments,
    config: EngineConfig,
    configure: impl FnOnce(&mut SimNet),
) -> (Vec<DiscoveryProbe>, starlink_core::BridgeStats, String) {
    let (probes, stats, trace) =
        run_clients(case, seed, calibration, stagger_us, impairments, true, config, configure);
    (probes, stats, trace.unwrap_or_default())
}

/// Shared body of the public concurrent-client harnesses.
#[allow(clippy::too_many_arguments)]
fn run_clients(
    case: BridgeCase,
    seed: u64,
    calibration: Calibration,
    stagger_us: &[u64],
    impairments: Impairments,
    want_trace: bool,
    config: EngineConfig,
    configure: impl FnOnce(&mut SimNet),
) -> (Vec<DiscoveryProbe>, starlink_core::BridgeStats, Option<String>) {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let (engine, stats) =
        framework.deploy_with(case.build(BRIDGE), config).expect("bridge deploys");

    let mut sim = SimNet::new(seed);
    sim.set_impairments(impairments);
    configure(&mut sim);
    sim.add_actor(BRIDGE, engine);
    add_target_service(&mut sim, case, calibration);
    let mut probes = Vec::with_capacity(stagger_us.len());
    for (i, &offset) in stagger_us.iter().enumerate() {
        let probe = DiscoveryProbe::new();
        probes.push(probe.clone());
        let host = format!("10.0.{}.{}", 1 + i / 200, 1 + i % 200);
        let delay = SimDuration::from_micros(offset);
        sim.add_actor(
            host,
            DelayedActor::new(delay, source_client(case, i as u64, calibration, probe)),
        );
    }
    sim.run_until_idle();
    let trace = want_trace.then(|| sim.trace_text());
    (probes, stats, trace)
}

/// Runs `clients` concurrent legacy clients of `case`'s source protocol
/// through one bridge (client `i` staggered by `i * 250 µs`), asserting
/// every client completes its own discovery, and returns the bridge's
/// session-lifecycle counters.
///
/// # Panics
///
/// Panics when any client fails to complete its own discovery — the
/// multi-session invariant this scenario exists to exercise.
pub fn run_concurrent_clients(
    case: BridgeCase,
    clients: usize,
    seed: u64,
    calibration: Calibration,
) -> ConcurrencyStats {
    let stagger: Vec<u64> = (0..clients as u64).map(|i| i * 250).collect();
    let (probes, stats) = run_concurrent_clients_with(case, seed, calibration, &stagger);
    for (i, probe) in probes.iter().enumerate() {
        assert_eq!(
            probe.results().len(),
            1,
            "case {} client {i}/{clients}: discovery incomplete; errors: {:?}",
            case.number(),
            stats.errors()
        );
    }
    stats.concurrency()
}

/// min/median/max summary over a sweep, in milliseconds — the statistic
/// the paper reports ("we repeated the experiment 100 times and took the
/// min, max, median of these results").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Minimum observed.
    pub min_ms: u64,
    /// Median observed.
    pub median_ms: u64,
    /// Maximum observed.
    pub max_ms: u64,
}

/// Runs `f` for `runs` seeds (0-based offsets on `base_seed`) and
/// summarises.
pub fn sweep(runs: u64, base_seed: u64, mut f: impl FnMut(u64) -> SimDuration) -> Stats {
    let mut samples: Vec<u64> = (0..runs).map(|i| f(base_seed + i).as_millis()).collect();
    samples.sort_unstable();
    Stats {
        min_ms: samples[0],
        median_ms: samples[samples.len() / 2],
        max_ms: samples[samples.len() - 1],
    }
}

/// One row of a regenerated table: measured vs paper.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (protocol or case name).
    pub label: String,
    /// Measured statistics.
    pub measured: Stats,
    /// The paper's published (min, median, max).
    pub paper: (u64, u64, u64),
}

/// Regenerates Fig. 12(a): native response times over `runs` seeded runs.
pub fn fig12a_table(runs: u64) -> Vec<Row> {
    NativeProtocol::all()
        .iter()
        .map(|protocol| Row {
            label: protocol.name().to_owned(),
            measured: sweep(runs, 0xA000, |seed| run_native(*protocol, seed, Calibration::paper())),
            paper: protocol.paper_row(),
        })
        .collect()
}

/// The paper's published Fig. 12(b) rows (min, median, max).
///
/// # Panics
///
/// Panics for the WSD cases, which have no published row — iterate
/// [`BridgeCase::paper_cases`] when regenerating the figure.
pub fn paper_fig12b_row(case: BridgeCase) -> (u64, u64, u64) {
    match case {
        BridgeCase::SlpToUpnp => (319, 337, 343),
        BridgeCase::SlpToBonjour => (255, 271, 287),
        BridgeCase::UpnpToSlp => (6_208, 6_311, 6_450),
        BridgeCase::UpnpToBonjour => (253, 289, 311),
        BridgeCase::BonjourToUpnp => (334, 359, 379),
        BridgeCase::BonjourToSlp => (6_168, 6_190, 6_244),
        _ => panic!("case {} ({}) has no Fig. 12(b) row", case.number(), case.name()),
    }
}

/// Regenerates Fig. 12(b): bridge translation times over `runs` seeded
/// runs per case (the paper's six cases — the WSD rows have nothing
/// published to compare against).
pub fn fig12b_table(runs: u64) -> Vec<Row> {
    BridgeCase::paper_cases()
        .iter()
        .map(|case| Row {
            label: format!("{}. {}", case.number(), case.name()),
            measured: sweep(runs, 0xB000 + case.number() as u64 * 0x100, |seed| {
                run_bridge_case(*case, seed, Calibration::paper())
            }),
            paper: paper_fig12b_row(*case),
        })
        .collect()
}

/// Prints a table in the paper's layout, with the published values for
/// comparison.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len()));
    println!(
        "{:<22} {:>9} {:>11} {:>9}   {:>24}",
        "", "Min (ms)", "Median (ms)", "Max (ms)", "paper (min/med/max)"
    );
    for row in rows {
        println!(
            "{:<22} {:>9} {:>11} {:>9}   {:>24}",
            row.label,
            row.measured.min_ms,
            row.measured.median_ms,
            row.measured.max_ms,
            format!("{}/{}/{}", row.paper.0, row.paper.1, row.paper.2),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_summarises_sorted() {
        let stats = sweep(5, 0, |seed| SimDuration::from_millis(10 * (5 - seed)));
        assert_eq!(stats.min_ms, 10);
        assert_eq!(stats.median_ms, 30);
        assert_eq!(stats.max_ms, 50);
    }

    #[test]
    fn native_runs_complete_for_all_protocols() {
        for protocol in NativeProtocol::all() {
            let elapsed = run_native(protocol, 1, Calibration::fast());
            assert!(elapsed.as_micros() > 0, "{}", protocol.name());
        }
    }

    #[test]
    fn bridge_runs_complete_for_all_cases() {
        for &case in BridgeCase::all() {
            let elapsed = run_bridge_case(case, 2, Calibration::fast());
            assert!(elapsed.as_micros() > 0, "case {}", case.number());
        }
    }

    #[test]
    fn concurrent_runs_complete_for_all_cases() {
        for &case in BridgeCase::all() {
            let c = run_concurrent_clients(case, 10, 3, Calibration::fast());
            assert_eq!(c.completed, 10, "case {}", case.number());
            assert_eq!(c.active, 0, "case {}", case.number());
            assert!(
                c.peak_active >= 2,
                "case {}: no overlap (peak {})",
                case.number(),
                c.peak_active
            );
        }
    }
}
