//! The chaos conformance harness: named impairment profiles, the
//! quiescence-driven cell runner and the **liveness contract** the
//! matrix in `tests/chaos_matrix.rs` enforces over every
//! [`BridgeCase`] × profile × shard-count cell.
//!
//! The contract is Starlink's runtime-interoperability claim under a
//! misbehaving network: whatever the link does — drop, duplicate,
//! reorder, jitter, corrupt, partition — every session the engine opens
//! ends in exactly one of `completed` / `failed` / `expired`, the engine
//! never wedges (`active == 0` once the run's virtual horizon passes),
//! no reply is cross-delivered, and [`starlink_core::BridgeStats`] stays
//! internally consistent on every shard. Everything is a deterministic
//! function of `(seed, profile)`: a failing cell prints the exact
//! environment-variable repro command along with the tail of its
//! dispatch-boundary log.

use crate::{expected_discovery_url, run_sharded_case, ShardedRun, ShardedWorkload};
use starlink_core::{CacheStats, DeployState, ShardedStats, StoreForward, StoreForwardStats};
use starlink_net::{Impairments, SimDuration, SimTime};
use starlink_protocols::bridges::BridgeCase;

/// A named impairment profile of the conformance matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Profile name (stable: used in repro commands and CI filters).
    pub name: &'static str,
    /// The knobs installed in every shard's simulation.
    pub impairments: Impairments,
    /// Whether every client must complete (profiles without loss,
    /// corruption or partitions cannot legitimately lose a session —
    /// duplication and reordering merely add noise).
    pub expect_client_completion: bool,
    /// Whether the engines must additionally stay clean: zero recorded
    /// errors and exactly one session per client (only the control row —
    /// duplicates are legitimately recorded-and-dropped).
    pub expect_clean_engines: bool,
    /// Shared per-link capacity in bytes/sec installed in every shard's
    /// simulation (`0` — the default — keeps the bandwidth model off).
    pub link_bandwidth: u64,
    /// Connectivity-window length of the pass schedule
    /// ([`SimDuration::ZERO`] — the default — installs no schedule).
    pub pass_window: SimDuration,
    /// Slots taking turns on the pass schedule (`<= 1` installs none).
    pub pass_slots: u32,
    /// Store-and-forward policy handed to every engine shard (`None` —
    /// the default — keeps the fail-fast engines).
    pub store_forward: Option<StoreForward>,
    /// Driver-level client retransmission period in virtual
    /// milliseconds: an unresolved client re-sends its request every
    /// this-many driver iterations, modelling a legacy stack's own
    /// retry loop (`0` — the default — sends once). Pass-schedule
    /// profiles need it: a request launched into a closed window is
    /// dropped on the floor, exactly like a real satellite uplink.
    pub client_retry_ms: u64,
    /// Drain-then-swap the bridge to a second registry-gated version
    /// once half the clients have started (`false` — the default —
    /// serves one version for the whole run). The contract then also
    /// enforces the swap clauses: v1 retired, ledgers frozen not reset,
    /// zero unrouted traffic.
    pub swap_mid_run: bool,
}

impl ChaosProfile {
    /// A profile with every knob inert: no impairments, no bandwidth
    /// cap, no pass schedule, no store-and-forward, no client retries.
    /// Constructors override what they exercise, so adding a knob never
    /// silently changes an existing profile.
    fn inert(name: &'static str) -> Self {
        ChaosProfile {
            name,
            impairments: Impairments::none(),
            expect_client_completion: true,
            expect_clean_engines: false,
            link_bandwidth: 0,
            pass_window: SimDuration::ZERO,
            pass_slots: 1,
            store_forward: None,
            client_retry_ms: 0,
            swap_mid_run: false,
        }
    }

    /// No impairment at all — the control row: must behave exactly like
    /// the pre-chaos harness (full completion, clean engines).
    pub fn lossless() -> Self {
        ChaosProfile { expect_clean_engines: true, ..Self::inert("lossless") }
    }

    /// 10% independent loss on every link traversal.
    pub fn lossy10() -> Self {
        ChaosProfile {
            impairments: Impairments { drop_permille: 100, ..Impairments::none() },
            expect_client_completion: false,
            ..Self::inert("lossy10")
        }
    }

    /// Duplication plus bounded reordering and jitter — no loss, so
    /// every session must still complete (duplicates may only add
    /// recorded-and-dropped errors).
    pub fn dup_reorder() -> Self {
        ChaosProfile {
            impairments: Impairments {
                duplicate_permille: 200,
                reorder_permille: 300,
                reorder_window: SimDuration::from_millis(2),
                jitter: SimDuration::from_micros(500),
                ..Impairments::none()
            },
            // No loss anywhere: every client still completes, but
            // rejected duplicates legitimately land in the error log.
            ..Self::inert("dup_reorder")
        }
    }

    /// Byte corruption plus spontaneous host-pair partitions that heal
    /// after a window.
    pub fn corrupt_partition_heal() -> Self {
        ChaosProfile {
            impairments: Impairments {
                corrupt_permille: 80,
                partition_permille: 15,
                partition_window: SimDuration::from_millis(8),
                ..Impairments::none()
            },
            expect_client_completion: false,
            ..Self::inert("corrupt_partition_heal")
        }
    }

    /// Satellite-style connectivity windows: two slots take turns on
    /// the uplink — clients reach the bridge only in even windows, the
    /// legacy service only in odd ones — so **no single window fits a
    /// whole session**. Delivery takes three passes: ingress, query +
    /// legacy response, reply. Store-and-forward parks the blocked legs
    /// and the clients' own retransmission loop covers requests
    /// launched into a closed window; every client must still complete.
    pub fn pass_schedule() -> Self {
        ChaosProfile {
            pass_window: SimDuration::from_millis(25),
            pass_slots: 2,
            store_forward: Some(StoreForward {
                queue_bound: 8,
                retry_interval: SimDuration::from_millis(4),
                max_retries: 32,
                saturation_bytes: 0,
            }),
            client_retry_ms: 10,
            ..Self::inert("pass_schedule")
        }
    }

    /// Shared-bandwidth contention: every link carries 1 MB/s split
    /// fairly across its concurrent transfers, so the bridge↔service
    /// uplink — which funnels every forward query and legacy response —
    /// saturates under load: waves land 16 deep, so each burst piles
    /// kilobytes onto a link that moves one byte per microsecond, while
    /// a full 50-client cell of the fattest payloads (the ~500-byte WSD
    /// SOAP responses) still drains well inside the idle timeout. Once
    /// the egress backlog passes 384 bytes, store-and-forward holds
    /// further legs back instead of piling onto the fluid and replays
    /// them as the backlog drains. Nothing is lost, only delayed: every
    /// client must complete.
    pub fn contended_links() -> Self {
        ChaosProfile {
            link_bandwidth: 1_000_000,
            store_forward: Some(StoreForward {
                queue_bound: 8,
                retry_interval: SimDuration::from_millis(2),
                max_retries: 64,
                saturation_bytes: 384,
            }),
            ..Self::inert("contended_links")
        }
    }

    /// Live redeployment under loss: 10% drop on every link *and* a
    /// drain-then-swap of the serving bridge once half the clients have
    /// started. Sessions opened before the swap finish (or idle-expire)
    /// on the draining v1; later clients route to v2; v1 must retire on
    /// every shard with its ledger frozen, and no fresh traffic may
    /// fall into an active-version gap.
    pub fn live_redeploy() -> Self {
        ChaosProfile {
            impairments: Impairments { drop_permille: 100, ..Impairments::none() },
            expect_client_completion: false,
            swap_mid_run: true,
            ..Self::inert("live_redeploy")
        }
    }

    /// The seven rows of the conformance matrix.
    pub fn matrix() -> [ChaosProfile; 7] {
        [
            ChaosProfile::lossless(),
            ChaosProfile::lossy10(),
            ChaosProfile::dup_reorder(),
            ChaosProfile::corrupt_partition_heal(),
            ChaosProfile::pass_schedule(),
            ChaosProfile::contended_links(),
            ChaosProfile::live_redeploy(),
        ]
    }

    /// Looks a profile up by its stable name (repro commands).
    pub fn by_name(name: &str) -> Option<ChaosProfile> {
        ChaosProfile::matrix().into_iter().find(|p| p.name == name)
    }

    /// Whether the profile corrupts payloads: a garbled reply is then
    /// indistinguishable from a cross-delivered one at the client, so
    /// per-reply id checks are only enforced on non-corrupting profiles.
    pub fn corrupting(&self) -> bool {
        self.impairments.corrupt_permille > 0
    }
}

/// One cell of the conformance matrix.
#[derive(Debug, Clone, Copy)]
pub struct ChaosCell {
    /// The bridge case driven.
    pub case: BridgeCase,
    /// Engine shard count.
    pub shards: usize,
    /// Interleaved wire-level clients.
    pub clients: usize,
    /// The seed (together with the profile, it determines the run
    /// byte-for-byte).
    pub seed: u64,
}

/// The engine idle timeout chaos cells run with: long enough for every
/// fast-calibration legacy exchange, short enough that stalled sessions
/// are reaped well inside the virtual horizon.
pub const CHAOS_IDLE_TIMEOUT: SimDuration = SimDuration::from_millis(50);

/// The virtual quiescence bound of a cell: time to start every wave
/// (one per virtual millisecond), two idle windows (expiry timers re-arm
/// once when activity raced the first timer), and a settle margin for
/// in-flight deferrals.
pub fn chaos_horizon(clients: usize, wave: usize) -> SimTime {
    let start_ms = (clients as u64).div_ceil(wave.max(1) as u64) + 1;
    SimTime::from_millis(start_ms + 2 * CHAOS_IDLE_TIMEOUT.as_millis() + 60)
}

/// Runs one matrix cell: `cell.clients` wire-level clients through a
/// [`crate::sharded`] deployment whose every shard simulation runs under
/// `profile`, driving until every client completed or the virtual
/// horizon passed. Nothing is asserted — pair with
/// [`assert_liveness_contract`].
pub fn run_chaos_cell(cell: ChaosCell, profile: &ChaosProfile) -> ShardedRun {
    // Swap cells spread the client starts over several waves so part of
    // the population starts before the mid-run swap (and drains on v1)
    // and the rest starts after it (and lands on v2).
    let wave = if profile.swap_mid_run { (cell.clients / 4).max(1) } else { 16 };
    let mut workload = ShardedWorkload::new(cell.shards, cell.clients);
    workload.seed = cell.seed;
    workload.wave = wave;
    workload.impairments = profile.impairments;
    workload.idle_timeout = CHAOS_IDLE_TIMEOUT;
    let mut horizon = chaos_horizon(cell.clients, wave);
    if profile.pass_window > SimDuration::ZERO && profile.pass_slots > 1 {
        // Pass-schedule cells wait on connectivity windows, not just
        // latency: a session needs up to one full rotation to land its
        // request plus one window per store-and-forward leg, and the
        // stragglers' idle expiries follow. Budget two rotations plus
        // the leg windows on top of the plain horizon.
        let rotation = profile.pass_window.saturating_mul(u64::from(profile.pass_slots));
        horizon = horizon + rotation.saturating_mul(2) + profile.pass_window.saturating_mul(4);
    }
    workload.virtual_horizon = Some(horizon);
    workload.log_boundary = true;
    workload.link_bandwidth = profile.link_bandwidth;
    workload.pass_window = profile.pass_window;
    workload.pass_slots = profile.pass_slots;
    workload.store_forward = profile.store_forward;
    workload.client_retry_ms = profile.client_retry_ms;
    // On fusable cases the answer cache runs in every cell, under
    // every impairment profile: all clients of a cell ask for the same
    // service, so once one exchange completes the rest are duplicate
    // queries — exactly the traffic whose cached replies must still
    // obey drops, corruption and partitions. Correlated routing is
    // what lets the cache key normalize transaction ids out; the
    // UPnP-chain cases have no transaction id to correlate on and stay
    // on address routing with the cache off (the contract checks their
    // counters stay zero).
    if cell.case.fusable() {
        workload.correlated = true;
        workload.answer_ttl = Some(cell.case.answer_ttl(&workload.calibration));
    }
    if profile.swap_mid_run {
        workload.swap_at_client = (cell.clients / 2).max(1);
    }
    run_sharded_case(cell.case, workload)
}

/// A deterministic digest of a chaos run: everything observable that
/// must be a pure function of `(seed, profile)` — per-client outcomes
/// (wall-clock latency excluded), fleet and per-shard counters, error
/// logs and the full dispatch-boundary log. Two runs of the same cell
/// and profile must produce byte-identical digests.
pub fn deterministic_digest(run: &ShardedRun) -> String {
    let mut out = String::new();
    out.push_str(&format!("case {} shards {}\n", run.case.number(), run.shards));
    for outcome in &run.outcomes {
        out.push_str(&format!(
            "client {} shard {} url {:?} id_ok {} garbled {}\n",
            outcome.host, outcome.shard, outcome.url, outcome.id_ok, outcome.garbled
        ));
    }
    let c = run.stats.concurrency();
    out.push_str(&format!(
        "gauge started {} completed {} failed {} expired {} active {}\n",
        c.started, c.completed, c.failed, c.expired, c.active
    ));
    let cache = run.stats.cache();
    out.push_str(&format!(
        "cache hits {} misses {} insertions {} expirations {}\n",
        cache.hits, cache.misses, cache.insertions, cache.expirations
    ));
    let sf = run.stats.store_forward();
    out.push_str(&format!(
        "store-forward parked {} replayed {} overflow {} abandoned {}\n",
        sf.parked, sf.replayed, sf.overflow, sf.abandoned
    ));
    out.push_str(&format!("unrouted {}\n", run.unrouted));
    if let Some(swap) = &run.swap {
        let old = swap.old.stats().concurrency();
        let new = swap.new.stats().concurrency();
        out.push_str(&format!(
            "swap at {} v{} -> v{} old {}/{}/{}/{} new {}/{}/{}/{} old_state {}\n",
            swap.at_iteration,
            swap.old.version(),
            swap.new.version(),
            old.started,
            old.completed,
            old.failed,
            old.expired,
            new.started,
            new.completed,
            new.failed,
            new.expired,
            swap.old.state()
        ));
    }
    for shard in 0..run.stats.shard_count() {
        let s = run.stats.shard(shard).concurrency();
        let sc = run.stats.shard(shard).cache();
        out.push_str(&format!(
            "shard {shard} started {} completed {} failed {} expired {} active {} \
             cache {}/{}/{}/{}\n",
            s.started,
            s.completed,
            s.failed,
            s.expired,
            s.active,
            sc.hits,
            sc.misses,
            sc.insertions,
            sc.expirations
        ));
    }
    for error in run.stats.errors() {
        out.push_str(&format!("error {error}\n"));
    }
    for line in &run.boundary_log {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The last `n` lines of a failure-dump source (boundary log, trace
/// lines) joined back into one block — shared by every chaos failure
/// path so dumps stay uniform.
pub fn tail<S: AsRef<str>>(lines: &[S], n: usize) -> String {
    let start = lines.len().saturating_sub(n);
    lines[start..].iter().map(AsRef::as_ref).collect::<Vec<_>>().join("\n")
}

/// Checks the liveness contract, returning every violation instead of
/// stopping at the first.
pub fn check_liveness_contract(run: &ShardedRun, profile: &ChaosProfile) -> Vec<String> {
    let mut violations = Vec::new();
    let clients = run.outcomes.len();
    let completed_clients = run.completed();
    // Every version's ledger is checked; the fleet view for the
    // client-facing clauses is their sum (a swap run serves sessions
    // from both versions).
    let versions: Vec<(&'static str, &ShardedStats)> = match &run.swap {
        Some(swap) => vec![("v1 ", &run.stats), ("v2 ", swap.new.stats())],
        None => vec![("", &run.stats)],
    };
    let mut gauge = run.stats.concurrency();
    if let Some(swap) = &run.swap {
        gauge.merge(&swap.new.stats().concurrency());
    }

    // 1. No wedged sessions, anywhere: once the horizon passed, every
    //    session the engine ever opened is in a terminal bucket — on
    //    every version of every shard.
    if gauge.active != 0 {
        violations
            .push(format!("{} sessions still active (wedged) after the horizon", gauge.active));
    }
    if !gauge.is_balanced() {
        violations.push(format!(
            "fleet gauge unbalanced: started {} != completed {} + failed {} + expired {} + active {}",
            gauge.started, gauge.completed, gauge.failed, gauge.expired, gauge.active
        ));
    }
    if run.unrouted != 0 {
        violations.push(format!(
            "{} fresh inputs dropped unrouted (an active-version gap)",
            run.unrouted
        ));
    }

    for (label, stats) in &versions {
        // 2. Per-shard stats internally consistent, answer-cache counters
        //    included: hits and insertions never exceed completed sessions,
        //    only inserted entries expire, and a non-fusable case records
        //    no cache traffic at all.
        let mut cache_sum = CacheStats::default();
        for shard in 0..stats.shard_count() {
            let stats = stats.shard(shard);
            let c = stats.concurrency();
            if !c.is_balanced() {
                violations.push(format!("{label}shard {shard} counters unbalanced: {c:?}"));
            }
            if c.active != 0 {
                violations.push(format!("{label}shard {shard}: {} sessions wedged", c.active));
            }
            if stats.session_count() as u64 != c.completed {
                violations.push(format!(
                    "{label}shard {shard}: {} session records vs completed counter {}",
                    stats.session_count(),
                    c.completed
                ));
            }
            let cache = stats.cache();
            cache_sum.merge(&cache);
            // Fail-fast engines only touch the cache on sessions that then
            // complete. A store-and-forward engine can insert the translated
            // answer (or serve a hit) and still *fail* the session when the
            // parked reply leg exhausts its retries — the knowledge is real
            // even though the delivery wasn't — so there the bound is the
            // sessions ever started, not the completed ones.
            let cache_bound = if profile.store_forward.is_some() { c.started } else { c.completed };
            if cache.hits > cache_bound {
                violations.push(format!(
                    "{label}shard {shard}: {} cache hits exceed {} bounding sessions",
                    cache.hits, cache_bound
                ));
            }
            if cache.insertions > cache_bound {
                violations.push(format!(
                    "{label}shard {shard}: {} cache insertions exceed {} bounding sessions",
                    cache.insertions, cache_bound
                ));
            }
            if cache.expirations > cache.insertions {
                violations.push(format!(
                    "{label}shard {shard}: {} cache expirations exceed {} insertions",
                    cache.expirations, cache.insertions
                ));
            }
            if !run.case.fusable() && cache != CacheStats::default() {
                violations.push(format!(
                    "{label}shard {shard}: cache counters {cache:?} on non-fusable case {}",
                    run.case.number()
                ));
            }
        }
        let merged = stats.merged().concurrency();
        if !merged.is_balanced() {
            violations.push(format!("{label}merged shard counters unbalanced: {merged:?}"));
        }
        let fleet_cache = stats.cache();
        if fleet_cache != cache_sum {
            violations.push(format!(
                "{label}fleet cache counters {fleet_cache:?} disagree with per-shard sum {cache_sum:?}"
            ));
        }

        // 2b. Store-and-forward balance at quiescence: with no session left
        //     active, every leg ever parked was either replayed or
        //     abandoned, on every shard and fleet-wide; an engine without
        //     the policy must record zero store-and-forward traffic.
        let mut sf_sum = StoreForwardStats::default();
        for shard in 0..stats.shard_count() {
            let sf = stats.shard(shard).store_forward();
            sf_sum.merge(&sf);
            if !sf.is_settled() {
                violations.push(format!(
                    "{label}shard {shard}: store-and-forward unsettled at quiescence: \
                     parked {} != replayed {} + abandoned {}",
                    sf.parked, sf.replayed, sf.abandoned
                ));
            }
            if profile.store_forward.is_none() && sf != StoreForwardStats::default() {
                violations.push(format!(
                    "{label}shard {shard}: store-and-forward counters {sf:?} without a policy"
                ));
            }
        }
        let fleet_sf = stats.store_forward();
        if fleet_sf != sf_sum {
            violations.push(format!(
                "{label}fleet store-and-forward counters {fleet_sf:?} disagree with per-shard sum {sf_sum:?}"
            ));
        }
    }

    // 3. Every client that observed a decoded reply maps onto a
    //    completed engine session (replies are only emitted by sessions
    //    that then complete).
    if (completed_clients as u64) > gauge.completed {
        violations.push(format!(
            "{completed_clients} clients saw replies but only {} sessions completed",
            gauge.completed
        ));
    }

    // 4. No cross-delivered replies: on non-corrupting profiles a
    //    decoded reply must carry the receiving client's own transaction
    //    id and the expected URL (corruption can garble either without
    //    any engine fault, so those profiles only check liveness).
    if !profile.corrupting() {
        for (index, outcome) in run.outcomes.iter().enumerate() {
            if let Some(url) = &outcome.url {
                if url != expected_discovery_url(run.case) {
                    violations
                        .push(format!("client {index} ({}) got wrong URL {url:?}", outcome.host));
                }
                if !outcome.id_ok {
                    violations.push(format!(
                        "client {index} ({}) got a reply carrying another session's id",
                        outcome.host
                    ));
                }
            }
            if outcome.garbled > 0 {
                violations.push(format!(
                    "client {index} ({}) saw {} undecodable replies without corruption",
                    outcome.host, outcome.garbled
                ));
            }
        }
    }

    // 5. Profiles without loss must complete every client; the control
    //    row additionally requires clean engines.
    if profile.expect_client_completion && completed_clients != clients {
        violations.push(format!(
            "{completed_clients}/{clients} clients completed under {}",
            profile.name
        ));
    }
    if profile.expect_clean_engines {
        if !run.stats.errors().is_empty() {
            violations.push(format!(
                "engine errors under {}: {:?}",
                profile.name,
                run.stats.errors()
            ));
        }
        if gauge.started != clients as u64 {
            violations.push(format!(
                "{} sessions started for {clients} clients under {}",
                gauge.started, profile.name
            ));
        }
    }

    // 6. Counter monotonicity: the final numbers never fall below the
    //    mid-run snapshot (errors only ever append, lifecycle counters
    //    only ever increment).
    if let Some((mid, mid_errors)) = &run.mid_snapshot {
        let final_errors = run.stats.errors().len();
        for (name, before, after) in [
            ("started", mid.started, gauge.started),
            ("completed", mid.completed, gauge.completed),
            ("failed", mid.failed, gauge.failed),
            ("expired", mid.expired, gauge.expired),
            ("errors", *mid_errors as u64, final_errors as u64),
        ] {
            if after < before {
                violations.push(format!("counter {name} went backwards: {before} -> {after}"));
            }
        }
    }

    // 7. Swap clauses: the drained version retired on every shard, both
    //    versions actually served, and v1's ledger only moved forward
    //    from the swap point — frozen at retirement, never reset.
    if let Some(swap) = &run.swap {
        if swap.old.state() != DeployState::Retired {
            violations.push(format!(
                "v1 not retired after the horizon: state {}, {} shards draining, {} retired",
                swap.old.state(),
                swap.old.stats().draining_shards(),
                swap.old.stats().retired_shards()
            ));
        }
        let old = swap.old.stats().concurrency();
        let new = swap.new.stats().concurrency();
        if old.started == 0 {
            violations.push("v1 never started a session before the swap".into());
        }
        if new.started == 0 {
            violations.push("v2 never started a session after the swap".into());
        }
        let pre = &swap.pre_swap;
        for (name, before, after) in [
            ("started", pre.started, old.started),
            ("completed", pre.completed, old.completed),
            ("failed", pre.failed, old.failed),
            ("expired", pre.expired, old.expired),
        ] {
            if after < before {
                violations.push(format!(
                    "v1 counter {name} fell across the swap: {before} -> {after} (ledger reset)"
                ));
            }
        }
    } else if profile.swap_mid_run {
        violations.push("profile demands a mid-run swap but none was recorded".into());
    }

    violations
}

/// Asserts [`check_liveness_contract`]; a violation panics with the full
/// reproduction recipe — `(seed, profile)`, the one-command env-var
/// repro line and the tail of the dispatch-boundary log.
///
/// # Panics
///
/// Panics when the contract is violated.
pub fn assert_liveness_contract(run: &ShardedRun, profile: &ChaosProfile, seed: u64) {
    let violations = check_liveness_contract(run, profile);
    if violations.is_empty() {
        return;
    }
    let tail_len = 60.min(run.boundary_log.len());
    let tail = tail(&run.boundary_log, 60);
    let gauge = run.stats.concurrency();
    panic!(
        "chaos liveness contract violated\n\
         cell: case {} ({}), {} shards, {} clients, seed {seed}, profile {} ({:?})\n\
         violations:\n  - {}\n\
         counters: {gauge:?}\n\
         errors ({}): {:?}\n\
         reproduce with:\n  CHAOS_CASE={} CHAOS_PROFILE={} CHAOS_SEED={seed} CHAOS_SHARDS={} \
         CHAOS_CLIENTS={} cargo test -q --test chaos_matrix repro_cell -- --nocapture\n\
         boundary log tail ({tail_len} of {} lines):\n{tail}",
        run.case.number(),
        run.case.name(),
        run.shards,
        run.outcomes.len(),
        profile.name,
        profile.impairments,
        violations.join("\n  - "),
        run.stats.errors().len(),
        run.stats.errors(),
        run.case.number(),
        profile.name,
        run.shards,
        run.outcomes.len(),
        run.boundary_log.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_stable_names_and_lookup() {
        for profile in ChaosProfile::matrix() {
            assert_eq!(ChaosProfile::by_name(profile.name), Some(profile));
        }
        assert!(ChaosProfile::by_name("nope").is_none());
        assert!(ChaosProfile::lossless().impairments.is_inert());
        assert!(!ChaosProfile::lossy10().impairments.is_inert());
        assert!(ChaosProfile::corrupt_partition_heal().corrupting());
        assert!(!ChaosProfile::dup_reorder().corrupting());
    }

    #[test]
    fn lossless_cell_satisfies_the_contract_and_the_strict_checks() {
        let cell =
            ChaosCell { case: BridgeCase::SlpToBonjour, shards: 2, clients: 8, seed: 0xC4A0 };
        let profile = ChaosProfile::lossless();
        let run = run_chaos_cell(cell, &profile);
        assert_liveness_contract(&run, &profile, cell.seed);
        run.assert_isolated();
    }

    #[test]
    fn lossy_cell_never_wedges() {
        let cell = ChaosCell { case: BridgeCase::SlpToBonjour, shards: 2, clients: 8, seed: 1 };
        let profile = ChaosProfile::lossy10();
        let run = run_chaos_cell(cell, &profile);
        assert_liveness_contract(&run, &profile, cell.seed);
    }

    #[test]
    fn pass_schedule_cell_delivers_across_passes() {
        let cell = ChaosCell { case: BridgeCase::SlpToBonjour, shards: 2, clients: 6, seed: 2 };
        let profile = ChaosProfile::pass_schedule();
        let run = run_chaos_cell(cell, &profile);
        assert_liveness_contract(&run, &profile, cell.seed);
        // The schedule must have actually forced store-and-forward: no
        // single window fits a whole session, so legs parked and were
        // replayed on a later pass.
        let sf = run.stats.store_forward();
        assert!(sf.parked > 0, "no leg ever parked under the pass schedule: {sf:?}");
        assert!(sf.replayed > 0, "no parked leg was ever replayed: {sf:?}");
    }

    #[test]
    fn live_redeploy_cell_swaps_without_wedging_or_unrouted_traffic() {
        let cell = ChaosCell { case: BridgeCase::SlpToBonjour, shards: 2, clients: 12, seed: 4 };
        let profile = ChaosProfile::live_redeploy();
        let run = run_chaos_cell(cell, &profile);
        assert_liveness_contract(&run, &profile, cell.seed);
        let swap = run.swap.as_ref().expect("the profile swaps mid-run");
        assert_eq!(swap.old.state(), DeployState::Retired);
        assert_eq!(run.unrouted, 0);
        // Both versions served: the ledger split is part of the digest,
        // so determinism tests pin it per (seed, profile).
        assert!(swap.old.stats().concurrency().started > 0);
        assert!(swap.new.stats().concurrency().started > 0);
    }

    #[test]
    fn contended_links_cell_completes_under_saturation() {
        let cell = ChaosCell { case: BridgeCase::SlpToBonjour, shards: 1, clients: 12, seed: 3 };
        let profile = ChaosProfile::contended_links();
        let run = run_chaos_cell(cell, &profile);
        assert_liveness_contract(&run, &profile, cell.seed);
    }
}
