//! Wire-level multi-client driver for the sharded bridge runtime.
//!
//! The simulator-based harnesses ([`crate::run_concurrent_clients`])
//! host legacy *actors* next to the engine inside one `SimNet` — which
//! is single-threaded by construction, so it can never show shard
//! scaling. This driver instead plays the legacy clients **at the wire
//! level** from outside: it encodes native request bytes (the same
//! bytes real stacks emit), pushes them through
//! [`ShardedBridge::dispatch`]'s hash-pinned ingress exactly like a
//! socket gateway would, and decodes the replies each client gets back.
//! Each shard's private simulation hosts the engine shard plus one
//! target-side service instance.
//!
//! All twelve [`BridgeCase`]s are covered, including the UPnP-source
//! cases whose clients follow their SSDP 200 OK with a TCP `GET` of the
//! description document (carried over the shard's external-TCP
//! boundary), and the WS-Discovery cases whose clients match replies by
//! uuid (`RelatesTo` must echo the probe's own `MessageID`).

use crate::{BRIDGE, SERVICE};
use fxhash::FxHashMap;
use starlink_core::{
    deploy_commands, swap_commands, undeploy_commands, BridgeRegistry, ConcurrencyStats,
    DeployedBridge, EngineConfig, ShardInput, ShardOutput, ShardedBridge, ShardedStats, Starlink,
    StoreForward,
};
use starlink_net::{
    Bytes, Datagram, Impairments, LatencyModel, PassSchedule, SimAddr, SimDuration, SimTime,
};
use starlink_protocols::{
    bridges::{self, BridgeCase, Family},
    http, mdns, slp, ssdp, wsd, Calibration,
};
use std::time::{Duration, Instant};

const SLP_TYPE: &str = "service:printer";
const UPNP_TYPE: &str = "urn:schemas-upnp-org:service:printer:1";
const DNS_TYPE: &str = "_printer._tcp.local";
pub(crate) const WSD_TYPE: &str = "dn:printer";

/// Parameters of one sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ShardedWorkload {
    /// Number of engine shards (worker threads).
    pub shards: usize,
    /// Number of wire-level clients, each driving one session.
    pub clients: usize,
    /// Seed for the per-shard simulations (`seed + shard`).
    pub seed: u64,
    /// Legacy-stack delay model for the in-shard service actors.
    pub calibration: Calibration,
    /// Replace each shard's link latency with zero — saturation mode:
    /// sustained throughput then measures engine compute, not modelled
    /// waits.
    pub instant_network: bool,
    /// Sessions started per driver iteration (pipelining depth control).
    pub wave: usize,
    /// Wall-clock safety cap on the whole run.
    pub timeout: Duration,
    /// Impairment profile installed in every shard's simulation (default
    /// inert — throughput/correctness runs are untouched).
    pub impairments: Impairments,
    /// Engine idle-expiry timeout. Chaos runs shorten it so stalled
    /// sessions (dropped datagrams, partitioned peers) are reaped within
    /// the run's virtual horizon.
    pub idle_timeout: SimDuration,
    /// Virtual-time cap: the drive loop stops once the shard clocks pass
    /// this point even with sessions unresolved — the quiescence bound
    /// chaos runs use. `None` (default) keeps the original behaviour:
    /// run until every client completes (or the wall-clock timeout).
    pub virtual_horizon: Option<SimTime>,
    /// Record a deterministic log of every input/output crossing the
    /// dispatch boundary (virtual timestamps only): the evidence chaos
    /// failure dumps and determinism tests compare.
    pub log_boundary: bool,
    /// Install the case-study [`bridges::default_correlator`] so
    /// sessions key on protocol transaction ids (required for the
    /// answer cache to normalize ids out of its keys).
    pub correlated: bool,
    /// Enable the shard-local answer cache with this TTL: duplicate
    /// queries (same fields modulo transaction id) are served from the
    /// shard's cache without re-translating.
    pub answer_ttl: Option<SimDuration>,
    /// Pin the engines to the interpreted path even when the case
    /// would fuse — the baseline side of fused-vs-interpreted runs.
    pub force_interpreted: bool,
    /// Shared per-link capacity in bytes/sec installed in every shard's
    /// simulation (`0` — the default — keeps the bandwidth model off).
    pub link_bandwidth: u64,
    /// Connectivity-window length of the per-shard [`PassSchedule`]:
    /// the bridge is the always-reachable hub, the service sits in slot
    /// 1, clients (external hosts included) in slot 0.
    /// [`SimDuration::ZERO`] — the default — installs no schedule.
    pub pass_window: SimDuration,
    /// Slots taking turns on the pass schedule (`<= 1` installs none).
    pub pass_slots: u32,
    /// Store-and-forward policy handed to every engine shard (`None` —
    /// the default — keeps the fail-fast engines).
    pub store_forward: Option<StoreForward>,
    /// Driver-level retransmission period in virtual milliseconds: an
    /// unresolved client re-sends its request every this-many driver
    /// iterations (`0` — the default — sends once).
    pub client_retry_ms: u64,
    /// Live redeployment trigger: once the serving version has *started*
    /// this many sessions, deploy a second bridge version through the
    /// registry and drain-then-swap every shard onto it mid-traffic.
    /// Earlier clients finish on v1, later ones route to v2. `0` — the
    /// default — never swaps.
    pub swap_at_client: usize,
}

impl ShardedWorkload {
    /// A workload with test-friendly defaults (fast calibration,
    /// modelled link latency, waves of 64).
    pub fn new(shards: usize, clients: usize) -> Self {
        ShardedWorkload {
            shards,
            clients,
            seed: 7,
            calibration: Calibration::fast(),
            instant_network: false,
            wave: 64,
            timeout: Duration::from_secs(60),
            impairments: Impairments::none(),
            idle_timeout: SimDuration::from_secs(30),
            virtual_horizon: None,
            log_boundary: false,
            correlated: false,
            answer_ttl: None,
            force_interpreted: false,
            link_bandwidth: 0,
            pass_window: SimDuration::ZERO,
            pass_slots: 1,
            store_forward: None,
            client_retry_ms: 0,
            swap_at_client: 0,
        }
    }

    /// Saturation mode: zero link latency and zero legacy-stack delays.
    pub fn saturating(mut self) -> Self {
        self.instant_network = true;
        self.calibration = Calibration::instant();
        self
    }
}

/// What one wire-level client observed.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// The client's unique source host.
    pub host: String,
    /// The shard its traffic was pinned to.
    pub shard: usize,
    /// The service URL it discovered, when its session completed.
    pub url: Option<String>,
    /// Whether the reply echoed this client's own transaction id (SLP
    /// XID / DNS ID; vacuously true for UPnP, whose SSDP has no id).
    pub id_ok: bool,
    /// Wall-clock latency from request dispatch to final reply.
    pub latency: Option<Duration>,
    /// Replies addressed to this client that failed to decode (chaos
    /// corruption) — they never count as completion.
    pub garbled: u32,
}

/// What a mid-run drain-then-swap recorded: the two versioned
/// deployment handles (their stats stay live) and the counter state at
/// the instant the swap was dispatched.
#[derive(Debug, Clone)]
pub struct SwapReport {
    /// The v1 handle — draining from the swap on, retired once every
    /// shard reaped it.
    pub old: DeployedBridge,
    /// The v2 handle — active from the swap on.
    pub new: DeployedBridge,
    /// Driver iteration (= virtual millisecond) the swap was dispatched
    /// at.
    pub at_iteration: u64,
    /// v1's fleet counters at dispatch, read behind the flush barrier —
    /// the baseline the stale-counter checks compare against (a swap
    /// must never reset or double-count a ledger).
    pub pre_swap: ConcurrencyStats,
}

/// One control-plane action of a scripted command stream (see
/// [`run_sharded_scripted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptedCommand {
    /// Gate a fresh version through the registry and deploy it alongside
    /// the serving ones (it becomes the active target; nothing drains).
    Deploy,
    /// Gate a fresh version and drain-then-swap every serving version
    /// onto it.
    Swap,
    /// Drain the newest still-serving version without a replacement.
    /// Skipped (and logged as skipped) when it is the only serving
    /// version, so a random stream never opens an unrouted-traffic gap.
    Undeploy,
}

/// The result of a scripted run: the plain run plus every versioned
/// deployment handle the script minted (their stats stay live) and the
/// effective command log for failure dumps.
#[derive(Debug)]
pub struct ScriptedRun {
    /// The underlying run; [`ShardedRun::stats`] stays the v1 ledger.
    pub run: ShardedRun,
    /// Every version deployed, in deploy order (v1 first).
    pub deployments: Vec<DeployedBridge>,
    /// One line per script entry as executed (`"<iteration> deploy v3"`,
    /// `"<iteration> undeploy skipped (last serving version)"`, …).
    pub command_log: Vec<String>,
}

/// The result of one sharded run.
#[derive(Debug)]
pub struct ShardedRun {
    /// The case driven.
    pub case: BridgeCase,
    /// Shard count of the run.
    pub shards: usize,
    /// Per-client observations.
    pub outcomes: Vec<ClientOutcome>,
    /// Messages through the dispatch boundary (ingress + egress items).
    pub messages: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-shard and fleet-wide engine statistics.
    pub stats: ShardedStats,
    /// The dispatch-boundary log (when
    /// [`ShardedWorkload::log_boundary`]): one line per input/output
    /// crossing the shard boundary, virtual timestamps only — byte-equal
    /// across runs of the same `(seed, profile)`.
    pub boundary_log: Vec<String>,
    /// Lifecycle counters + error count sampled mid-run (right after the
    /// last wave started), for monotonicity checks against the final
    /// numbers.
    pub mid_snapshot: Option<(ConcurrencyStats, usize)>,
    /// The drain-then-swap record when
    /// [`ShardedWorkload::swap_at_client`] fired. [`ShardedRun::stats`]
    /// stays the v1 ledger; v2's lives in the report.
    pub swap: Option<SwapReport>,
    /// Fresh traffic dropped fleet-wide because no bridge version was
    /// active to take it (must be zero in every swap run — a swap leaves
    /// no active-version gap).
    pub unrouted: u64,
}

impl ShardedRun {
    /// Clients whose session completed with a discovered URL.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.url.is_some()).count()
    }

    /// Sustained message rate over the run.
    pub fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Completed sessions per second over the run.
    pub fn sessions_per_sec(&self) -> f64 {
        self.completed() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// The `p`-th percentile (0–100) of session latency, in µs.
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        let mut samples: Vec<u64> =
            self.outcomes.iter().filter_map(|o| o.latency.map(|l| l.as_micros() as u64)).collect();
        if samples.is_empty() {
            return 0;
        }
        samples.sort_unstable();
        let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
        samples[rank.min(samples.len() - 1)]
    }

    /// Panics unless every client completed with the expected URL and
    /// its own transaction id, with no engine errors on any shard — the
    /// sharded-correctness invariant.
    pub fn assert_isolated(&self) {
        for (i, outcome) in self.outcomes.iter().enumerate() {
            assert_eq!(
                outcome.url.as_deref(),
                Some(crate::expected_discovery_url(self.case)),
                "case {} client {i} ({} on shard {}): wrong/missing reply; errors: {:?}",
                self.case.number(),
                outcome.host,
                outcome.shard,
                self.stats.errors()
            );
            assert!(
                outcome.id_ok,
                "case {} client {i} ({}): reply carried another session's id",
                self.case.number(),
                outcome.host
            );
        }
        assert_eq!(self.stats.session_count(), self.outcomes.len());
        assert!(self.stats.errors().is_empty(), "engine errors: {:?}", self.stats.errors());
        let c = self.stats.concurrency();
        assert_eq!(c.completed, self.outcomes.len() as u64);
        assert_eq!(c.active, 0);
        self.stats.assert_consistent(&format!("case {}", self.case.number()));
    }
}

/// Client-side protocol phase.
enum Phase {
    /// UDP request sent; awaiting the unicast reply datagram.
    AwaitUdpReply,
    /// (UPnP) M-SEARCH sent; awaiting the SSDP 200 OK.
    AwaitSsdp,
    /// (UPnP) description GET sent; awaiting the HTTP response.
    AwaitHttp,
    Done,
}

struct Client {
    host: String,
    shard: usize,
    phase: Phase,
    started: Option<Instant>,
    outcome: ClientOutcome,
}

/// The source port a case's client sends its UDP request from.
pub(crate) fn client_udp_port(case: BridgeCase) -> u16 {
    match case.source() {
        Family::Slp => 41_000,
        Family::Upnp => ssdp::SSDP_PORT,
        Family::Bonjour => 42_000,
        Family::Wsd => wsd::WSD_CLIENT_PORT,
    }
}

/// The bridge port a case's client addresses its UDP request to.
pub(crate) fn bridge_udp_port(case: BridgeCase) -> u16 {
    match case.source() {
        Family::Slp => slp::SLP_PORT,
        Family::Upnp => ssdp::SSDP_PORT,
        Family::Bonjour => mdns::MDNS_PORT,
        Family::Wsd => wsd::WSD_PORT,
    }
}

/// The native request bytes client `index` sends (unique id per client
/// where the protocol carries one).
pub(crate) fn request_wire(case: BridgeCase, index: usize) -> Vec<u8> {
    let id = index as u16;
    match case.source() {
        Family::Slp => slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(id, SLP_TYPE))),
        Family::Upnp => ssdp::encode(&ssdp::SsdpMessage::MSearch(ssdp::MSearch::new(UPNP_TYPE))),
        Family::Bonjour => {
            mdns::encode(&mdns::DnsMessage::Question(mdns::DnsQuestion::new(id, DNS_TYPE)))
                .expect("question encodes")
        }
        Family::Wsd => {
            wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(1 + index as u64, WSD_TYPE)))
        }
    }
}

/// Splits `http://host:port/path` into (host, port).
pub(crate) fn parse_location(location: &str) -> (String, u16) {
    let rest = location.strip_prefix("http://").unwrap_or(location);
    let authority = rest.split('/').next().unwrap_or(rest);
    match authority.rsplit_once(':') {
        Some((host, port)) => (host.to_owned(), port.parse().unwrap_or(80)),
        None => (authority.to_owned(), 80),
    }
}

/// Runs `workload.clients` wire-level clients of `case`'s source
/// protocol through a [`ShardedBridge`] with `workload.shards` engine
/// shards (each shard's simulation also hosts one target-side service).
/// Nothing is asserted — use [`ShardedRun::assert_isolated`] or inspect
/// the outcomes.
///
/// # Panics
///
/// Panics on harness bugs (models fail to load / deploy).
pub fn run_sharded_case(case: BridgeCase, workload: ShardedWorkload) -> ShardedRun {
    run_sharded_inner(case, workload, &[]).run
}

/// [`run_sharded_case`] with a control-plane command stream: each
/// `(iteration, command)` entry fires once the driver reaches that
/// iteration (= virtual millisecond), before that iteration's traffic —
/// modelling an operator redeploying a live fleet mid-run. Entries are
/// executed in iteration order regardless of input order.
///
/// # Panics
///
/// Panics on harness bugs (models fail to load / deploy).
pub fn run_sharded_scripted(
    case: BridgeCase,
    workload: ShardedWorkload,
    script: &[(u64, ScriptedCommand)],
) -> ScriptedRun {
    let mut sorted = script.to_vec();
    sorted.sort_by_key(|&(iteration, _)| iteration);
    run_sharded_inner(case, workload, &sorted)
}

fn run_sharded_inner(
    case: BridgeCase,
    workload: ShardedWorkload,
    script: &[(u64, ScriptedCommand)],
) -> ScriptedRun {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let config = EngineConfig {
        idle_timeout: workload.idle_timeout,
        correlator: workload
            .correlated
            .then(|| std::sync::Arc::new(bridges::default_correlator()) as _),
        answer_ttl: workload.answer_ttl,
        force_interpreted: workload.force_interpreted,
        store_forward: workload.store_forward,
    };
    let mut registry = BridgeRegistry::with_framework(framework);
    let (engines, v1) = registry
        .deploy_sharded(case.build(BRIDGE), config.clone(), workload.shards)
        .expect("sharded bridge deploys");
    let stats = v1.stats().clone();
    // Scripted control-plane state: every version minted (in deploy
    // order) and the ones not yet drained — newest serving is the
    // active target, so `Undeploy` pops from the back.
    let mut deployments = vec![v1.clone()];
    let mut serving = vec![v1.clone()];
    let mut command_log: Vec<String> = Vec::new();
    let mut script_index = 0usize;
    let calibration = workload.calibration;
    let instant_network = workload.instant_network;
    let impairments = workload.impairments;
    let link_bandwidth = workload.link_bandwidth;
    let pass = (workload.pass_window > SimDuration::ZERO && workload.pass_slots > 1).then(|| {
        // Satellite-style layout: the bridge is the hub every window
        // can reach; the in-shard service takes slot 1 and everything
        // else (the external wire-level clients) slot 0 — so clients
        // and the legacy service are never reachable in the same
        // window and a session must span passes.
        PassSchedule {
            window: workload.pass_window,
            slots: workload.pass_slots,
            hub: Some(BRIDGE.into()),
            assignments: [(SERVICE.into(), 1)].into_iter().collect(),
            default_slot: 0,
        }
    });
    let mut bridge = ShardedBridge::launch(workload.seed, BRIDGE, engines, |_, sim| {
        if instant_network {
            sim.set_latency(LatencyModel::Fixed(SimDuration::ZERO));
        }
        sim.set_impairments(impairments);
        if link_bandwidth > 0 {
            sim.set_link_bandwidth(link_bandwidth);
        }
        if let Some(pass) = pass.clone() {
            sim.set_pass_schedule(pass);
        }
        crate::add_target_service(sim, case, calibration);
    });

    let mut clients: Vec<Client> = (0..workload.clients)
        .map(|i| {
            let host = format!("10.20.{}.{}", 1 + i / 200, 1 + i % 200);
            let shard = bridge.shard_of(&host);
            Client {
                host: host.clone(),
                shard,
                phase: Phase::AwaitUdpReply,
                started: None,
                outcome: ClientOutcome {
                    host,
                    shard,
                    url: None,
                    id_ok: true,
                    latency: None,
                    garbled: 0,
                },
            }
        })
        .collect();
    let by_host: FxHashMap<String, usize> =
        clients.iter().enumerate().map(|(i, c)| (c.host.clone(), i)).collect();

    let udp_port = client_udp_port(case);
    let to = SimAddr::new(BRIDGE, bridge_udp_port(case));
    let upnp_source = case.source() == Family::Upnp;

    let run_start = Instant::now();
    let deadline = run_start + workload.timeout;
    let mut messages = 0u64;
    let mut completed = 0usize;
    // Clients whose run is over either way — completed, or terminally
    // failed at the driver (refused TCP connect). Once every client is
    // resolved the loop ends without burning the remaining horizon (or,
    // with no horizon, the wall-clock deadline).
    let mut resolved = 0usize;
    let mut next_start = 0usize;
    let mut iteration = 0u64;
    let mut inputs: Vec<ShardInput> = Vec::new();
    let mut outputs: Vec<(usize, ShardOutput)> = Vec::new();
    let mut boundary_log: Vec<String> = Vec::new();
    let mut mid_snapshot: Option<(ConcurrencyStats, usize)> = None;
    let mut swap: Option<SwapReport> = None;

    // Unresolved clients keep the loop alive, and so does an unfinished
    // command script: a late redeploy must still execute (against an
    // idle fleet) so its drain/retire bookkeeping is observable.
    while (resolved < clients.len() || script_index < script.len()) && Instant::now() < deadline {
        // A chaos run stops at its virtual quiescence bound even with
        // clients unresolved (dropped requests, partitioned peers): by
        // then every stalled session must have been reaped.
        if let Some(horizon) = workload.virtual_horizon {
            if SimTime::from_micros((iteration + 1) * 1_000) > horizon {
                break;
            }
        }
        // Client-side retransmission: under a pass schedule the first
        // request of a session may launch into a closed window and be
        // dropped on the wire, so real clients re-send on a timer. Every
        // `client_retry_ms` virtual milliseconds, re-issue the discovery
        // request for every started client still waiting on its first
        // reply. Deterministic: keyed off the iteration counter only.
        if workload.client_retry_ms > 0
            && iteration > 0
            && iteration.is_multiple_of(workload.client_retry_ms)
        {
            for (index, client) in clients.iter().enumerate().take(next_start) {
                if matches!(client.phase, Phase::AwaitUdpReply | Phase::AwaitSsdp) {
                    inputs.push(ShardInput::Datagram(Datagram {
                        from: SimAddr::new(client.host.as_str(), udp_port),
                        to: to.clone(),
                        payload: Bytes::copy_from_slice(&request_wire(case, index)),
                    }));
                }
            }
        }
        // Start the next wave of sessions.
        let wave_end = (next_start + workload.wave.max(1)).min(clients.len());
        for (index, client) in clients.iter_mut().enumerate().take(wave_end).skip(next_start) {
            if upnp_source {
                client.phase = Phase::AwaitSsdp;
            }
            client.started = Some(Instant::now());
            inputs.push(ShardInput::Datagram(Datagram {
                from: SimAddr::new(client.host.as_str(), udp_port),
                to: to.clone(),
                payload: Bytes::copy_from_slice(&request_wire(case, index)),
            }));
        }
        let last_wave_started = next_start < clients.len() && wave_end >= clients.len();
        next_start = wave_end;

        iteration += 1;
        messages += inputs.len() as u64;
        // One virtual millisecond per driver iteration: in-shard timers
        // (service delays, idle expiry) advance deterministically with
        // the drive loop, not with wall time.
        let now = SimTime::from_micros(iteration * 1_000);
        // Live drain-then-swap: once enough clients have started, gate a
        // second version of the same bridge through the registry and
        // swap every shard onto it — before this iteration's traffic, so
        // the wave just started lands on v2 while earlier exchanges
        // finish on the draining v1.
        if workload.swap_at_client > 0
            && swap.is_none()
            && stats.concurrency().started >= workload.swap_at_client as u64
        {
            let (v2_engines, v2) = registry
                .deploy_sharded(case.build(BRIDGE), config.clone(), workload.shards)
                .expect("v2 deploys through the same gate");
            if workload.log_boundary {
                boundary_log.push(format!(
                    "{} in  swap v{} -> v{}",
                    now.as_micros(),
                    v1.version(),
                    v2.version()
                ));
            }
            bridge.dispatch_control(now, swap_commands(&v2, v2_engines));
            bridge.flush();
            swap = Some(SwapReport {
                old: v1.clone(),
                new: v2,
                at_iteration: iteration,
                pre_swap: stats.concurrency(),
            });
        }
        // Scripted command stream: everything due at this iteration
        // fires before the iteration's traffic, like the single-swap
        // trigger above.
        while script_index < script.len() && script[script_index].0 <= iteration {
            let (_, command) = script[script_index];
            script_index += 1;
            match command {
                ScriptedCommand::Deploy | ScriptedCommand::Swap => {
                    let (engines, version) = registry
                        .deploy_sharded(case.build(BRIDGE), config.clone(), workload.shards)
                        .expect("scripted version deploys through the gate");
                    let verb = if command == ScriptedCommand::Deploy { "deploy" } else { "swap" };
                    command_log.push(format!("{} {verb} v{}", iteration, version.version()));
                    let commands = if command == ScriptedCommand::Deploy {
                        deploy_commands(&version, engines)
                    } else {
                        serving.clear();
                        swap_commands(&version, engines)
                    };
                    bridge.dispatch_control(now, commands);
                    serving.push(version.clone());
                    deployments.push(version);
                }
                ScriptedCommand::Undeploy => {
                    if serving.len() > 1 {
                        let version = serving.pop().expect("serving is non-empty");
                        command_log.push(format!("{} undeploy v{}", iteration, version.version()));
                        bridge.dispatch_control(now, undeploy_commands(&version));
                    } else {
                        command_log
                            .push(format!("{iteration} undeploy skipped (last serving version)"));
                    }
                }
            }
            bridge.flush();
        }
        if workload.log_boundary {
            for input in &inputs {
                boundary_log.push(describe_input(now, input));
            }
        }
        bridge.dispatch(now, inputs.drain(..));
        bridge.flush();
        if last_wave_started {
            // Stable read: the flush barrier guarantees every worker is
            // idle, so these counters are a deterministic function of
            // (seed, profile, workload).
            mid_snapshot = Some((stats.concurrency(), stats.errors().len()));
        }
        bridge.drain_into(&mut outputs);
        messages += outputs.len() as u64;

        for (shard, output) in outputs.drain(..) {
            if workload.log_boundary {
                boundary_log.push(describe_output(now, shard, &output));
            }
            match output {
                ShardOutput::Datagram(datagram) => {
                    let Some(&index) = by_host.get(datagram.to.host.as_ref()) else { continue };
                    let client = &mut clients[index];
                    debug_assert_eq!(shard, client.shard, "reply left the pinned shard");
                    match client.phase {
                        Phase::AwaitUdpReply => {
                            let Some((url, id_ok)) =
                                decode_udp_reply(case, index, &datagram.payload)
                            else {
                                client.outcome.garbled += 1;
                                continue;
                            };
                            client.outcome.id_ok &= id_ok;
                            finish(client, url, &mut completed, &mut resolved);
                        }
                        Phase::AwaitSsdp => {
                            let Ok(ssdp::SsdpMessage::Response(response)) =
                                ssdp::decode(&datagram.payload)
                            else {
                                client.outcome.garbled += 1;
                                continue;
                            };
                            let (host, port) = parse_location(&response.location);
                            let get = http::HttpGet::new("/desc.xml", format!("{host}:{port}"));
                            let token = index as u64;
                            inputs.push(ShardInput::TcpConnect {
                                token,
                                from: SimAddr::new(client.host.as_str(), 49_152),
                                to: SimAddr::new(host, port),
                            });
                            inputs.push(ShardInput::TcpData {
                                token,
                                payload: Bytes::copy_from_slice(&http::encode(
                                    &http::HttpMessage::Get(get),
                                )),
                            });
                            client.phase = Phase::AwaitHttp;
                        }
                        Phase::AwaitHttp | Phase::Done => {}
                    }
                }
                ShardOutput::TcpData { token, payload } => {
                    let index = token as usize;
                    let Some(client) = clients.get_mut(index) else { continue };
                    if !matches!(client.phase, Phase::AwaitHttp) {
                        continue;
                    }
                    let Ok(http::HttpMessage::Ok(ok)) = http::decode(&payload) else {
                        client.outcome.garbled += 1;
                        continue;
                    };
                    let url = ok
                        .body
                        .split_once("<URLBase>")
                        .and_then(|(_, rest)| rest.split_once("</URLBase>"))
                        .map(|(base, _)| base.trim().to_owned())
                        .unwrap_or_default();
                    inputs.push(ShardInput::TcpClose { token });
                    finish(client, url, &mut completed, &mut resolved);
                }
                ShardOutput::TcpConnectFailed { token, .. } => {
                    // A partitioned description fetch: the client's run
                    // is over without a result (the engine-side session
                    // is reaped by idle expiry).
                    if let Some(client) = clients.get_mut(token as usize) {
                        if matches!(client.phase, Phase::AwaitHttp) {
                            client.phase = Phase::Done;
                            resolved += 1;
                        }
                    }
                }
                ShardOutput::TcpClosed { .. } => {}
            }
        }
    }

    // An early exit (every client resolved) must still bring the shard
    // clocks to the quiescence bound so idle-expiry timers of any
    // engine-side sessions left behind (refused connects) fire before
    // the caller reads the stats.
    if let Some(horizon) = workload.virtual_horizon {
        if SimTime::from_micros(iteration * 1_000) < horizon {
            bridge.advance(horizon);
            bridge.flush();
            bridge.drain_into(&mut outputs);
            messages += outputs.len() as u64;
            for (shard, output) in outputs.drain(..) {
                if workload.log_boundary {
                    boundary_log.push(describe_output(horizon, shard, &output));
                }
            }
        }
    }

    let elapsed = run_start.elapsed();
    let unrouted = bridge.unrouted();
    ScriptedRun {
        run: ShardedRun {
            case,
            shards: workload.shards,
            outcomes: clients.into_iter().map(|c| c.outcome).collect(),
            messages,
            elapsed,
            stats,
            boundary_log,
            mid_snapshot,
            swap,
            unrouted,
        },
        deployments,
        command_log,
    }
}

/// One deterministic boundary-log line for a dispatched input.
fn describe_input(now: SimTime, input: &ShardInput) -> String {
    match input {
        ShardInput::Datagram(d) => {
            format!("{} in  dgram {} -> {} {}B", now.as_micros(), d.from, d.to, d.payload.len())
        }
        ShardInput::TcpConnect { token, from, to } => {
            format!("{} in  tcp-connect #{token} {from} -> {to}", now.as_micros())
        }
        ShardInput::TcpData { token, payload } => {
            format!("{} in  tcp-data #{token} {}B", now.as_micros(), payload.len())
        }
        ShardInput::TcpClose { token } => format!("{} in  tcp-close #{token}", now.as_micros()),
        ShardInput::Control(_) => format!("{} in  control", now.as_micros()),
    }
}

/// One deterministic boundary-log line for a drained output.
fn describe_output(now: SimTime, shard: usize, output: &ShardOutput) -> String {
    match output {
        ShardOutput::Datagram(d) => format!(
            "{} out[{shard}] dgram {} -> {} {}B",
            now.as_micros(),
            d.from,
            d.to,
            d.payload.len()
        ),
        ShardOutput::TcpData { token, payload } => {
            format!("{} out[{shard}] tcp-data #{token} {}B", now.as_micros(), payload.len())
        }
        ShardOutput::TcpClosed { token } => {
            format!("{} out[{shard}] tcp-closed #{token}", now.as_micros())
        }
        ShardOutput::TcpConnectFailed { token, error } => {
            format!("{} out[{shard}] tcp-connect-failed #{token}: {error}", now.as_micros())
        }
    }
}

/// Decodes the final unicast reply of a UDP-source case, returning the
/// discovered URL and whether the reply echoed the client's own id
/// (SLP XID / DNS ID / WSD `RelatesTo` uuid).
fn decode_udp_reply(case: BridgeCase, index: usize, payload: &[u8]) -> Option<(String, bool)> {
    let id = index as u16;
    match case.source() {
        Family::Slp => match slp::decode(payload) {
            Ok(slp::SlpMessage::SrvRply(rply)) => Some((rply.url, rply.xid == id)),
            _ => None,
        },
        Family::Bonjour => match mdns::decode(payload) {
            Ok(mdns::DnsMessage::Response(response)) => Some((response.rdata, response.id == id)),
            _ => None,
        },
        Family::Wsd => match wsd::decode(payload) {
            Ok(wsd::WsdMessage::ProbeMatch(matched)) => {
                let own = matched.relates_to == wsd::probe_uuid(1 + index as u64);
                Some((matched.xaddrs, own))
            }
            _ => None,
        },
        Family::Upnp => None,
    }
}

fn finish(client: &mut Client, url: String, completed: &mut usize, resolved: &mut usize) {
    client.phase = Phase::Done;
    client.outcome.url = Some(url);
    client.outcome.latency = client.started.map(|s| s.elapsed());
    *completed += 1;
    *resolved += 1;
}

/// Runs every [`BridgeCase`] at `shards` shards and returns the twelve
/// runs — the mixed workload the throughput acceptance criterion is
/// measured on (aggregate msgs/sec = Σ messages / Σ elapsed).
pub fn run_sharded_mixed(workload: ShardedWorkload) -> Vec<ShardedRun> {
    BridgeCase::all()
        .iter()
        .map(|case| {
            let mut w = workload;
            w.seed = workload.seed + case.number() as u64 * 0x1000;
            run_sharded_case(*case, w)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_smoke_every_case_completes_on_two_shards() {
        // The short-mode throughput smoke wired into `cargo test`: every
        // case, a handful of clients, two shards, full isolation checks.
        for &case in BridgeCase::all() {
            let run = run_sharded_case(case, ShardedWorkload::new(2, 8));
            run.assert_isolated();
            assert!(run.messages >= 16, "case {}: {} messages", case.number(), run.messages);
        }
    }

    #[test]
    fn sharded_smoke_saturation_mode_completes() {
        let run =
            run_sharded_case(BridgeCase::SlpToBonjour, ShardedWorkload::new(4, 32).saturating());
        run.assert_isolated();
        assert!(run.msgs_per_sec() > 0.0);
        assert!(run.latency_percentile_us(99.0) >= run.latency_percentile_us(50.0));
    }
}
