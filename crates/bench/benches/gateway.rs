//! The gateway soak bench: live-socket soak of the whole bridge
//! matrix through readiness-driven [`ShardedGateway`]s — peak
//! concurrent sessions, flat-RSS hold, zero-wedged drain, then
//! per-case sustained msgs/s and p50/p99 latency.
//!
//! Prints a table; set `GATEWAY_SOAK_JSON=/path/BENCH_throughput.json`
//! to splice a `gateway_soak` section into the throughput snapshot
//! (the section is replaced if present). Knobs: `SOAK_SESSIONS`
//! (default 102000), `SOAK_SECS` (hold window, default 25),
//! `SOAK_SUSTAINED` (phase-2 sessions per case, default 2000),
//! `SOAK_FORCE_POLLING=1` (portable fallback front).
//!
//! [`ShardedGateway`]: starlink_core::ShardedGateway

use starlink_bench::soak::{run_soak, SoakConfig, SoakReport};

fn main() {
    let config = SoakConfig::full().with_env();
    eprintln!(
        "gateway soak: {} sessions, hold {:?}, {} shards x {} gateway thread(s) per case",
        config.sessions, config.hold, config.shards_per_case, config.gateway_threads
    );
    let report = match run_soak(&config) {
        Ok(report) => report,
        Err(reason) => {
            eprintln!("SKIP gateway soak: {reason}");
            return;
        }
    };
    print_report(&report);
    report.assert_healthy((report.sessions as u64 * 95) / 100);

    if let Ok(path) = std::env::var("GATEWAY_SOAK_JSON") {
        splice_json(&path, &report);
        eprintln!("gateway_soak section written to {path}");
    }
}

fn print_report(report: &SoakReport) {
    println!("== gateway soak ({} front) ==", report.mode);
    println!(
        "hold: {} sessions over {} sockets | peak concurrent {} | ramp {:.1}s | drain {:.1}s @ {:.0} msgs/s",
        report.started,
        report.sockets,
        report.peak_concurrent,
        report.ramp.as_secs_f64(),
        report.drain.as_secs_f64(),
        report.drain_msgs_per_sec
    );
    println!(
        "RSS: warmup {} kB, hold peak {} kB, final {} kB | wedged {} | engine leaked {}",
        report.rss_warmup_kb,
        report.rss_hold_peak_kb,
        report.rss_final_kb,
        report.wedged,
        report.engine_leaked
    );
    println!(
        "{:<4} {:<18} {:>9} {:>9} {:>12} {:>9} {:>9}",
        "case", "name", "held", "sockets", "msgs/s", "p50 us", "p99 us"
    );
    for (case, sustained) in report.cases.iter().zip(&report.sustained) {
        println!(
            "{:<4} {:<18} {:>9} {:>9} {:>12.0} {:>9} {:>9}",
            case.case,
            case.name,
            case.sessions,
            case.sockets,
            sustained.msgs_per_sec,
            sustained.p50_us,
            sustained.p99_us
        );
    }
}

/// Splices a `"gateway_soak"` section into the throughput JSON
/// snapshot, replacing any existing one (the section is always kept
/// last in the document).
fn splice_json(path: &str, report: &SoakReport) {
    let mut text = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_owned());
    if let Some(at) = text.find(",\n  \"gateway_soak\"") {
        text.truncate(at);
        text.push_str("\n}\n");
    }
    let trimmed = text.trim_end().trim_end_matches('}').trim_end();
    let mut out = String::from(trimmed);
    out.push_str(",\n  \"gateway_soak\": {");
    out.push_str(&format!(
        "\"mode\": \"{}\", \"sessions\": {}, \"peak_concurrent\": {}, \"sockets\": {}, \
         \"ramp_secs\": {:.2}, \"hold_secs\": {:.1}, \"drain_secs\": {:.2}, \
         \"drain_msgs_per_sec\": {:.0}, \"wedged\": {}, \"engine_leaked\": {}, \
         \"rss_warmup_kb\": {}, \"rss_hold_peak_kb\": {}, \"rss_final_kb\": {}, \
         \"note\": \"Whole 12-case matrix held concurrently through per-case ShardedGateways over real loopback sockets; sessions multiplexed onto sockets by transaction id. sustained rows are separate instant-calibration runs through the same gateway path.\",\n    \"sustained\": [\n",
        report.mode,
        report.started,
        report.peak_concurrent,
        report.sockets,
        report.ramp.as_secs_f64(),
        report.hold.as_secs_f64(),
        report.drain.as_secs_f64(),
        report.drain_msgs_per_sec,
        report.wedged,
        report.engine_leaked,
        report.rss_warmup_kb,
        report.rss_hold_peak_kb,
        report.rss_final_kb,
    ));
    for (i, row) in report.sustained.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"case\": {}, \"name\": \"{}\", \"sessions\": {}, \"msgs_per_sec\": {:.0}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            row.case,
            row.name,
            row.sessions,
            row.msgs_per_sec,
            row.p50_us,
            row.p99_us,
            if i + 1 < report.sustained.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]}\n}\n");
    std::fs::write(path, out).expect("gateway soak JSON written");
}
