//! Saturation throughput of the sharded bridge runtime: sustained
//! msgs/sec and p50/p99 session latency for every [`BridgeCase`] at
//! 1/2/4/8 shards, driving wire-level clients in saturating mode (zero
//! modelled waits — the numbers measure the engine, not somebody's
//! legacy stack).
//!
//! Every run's replies are fully verified (right URL, own transaction
//! id, zero engine errors) before its throughput counts: a msgs/sec
//! figure over misdelivered replies would be meaningless.
//!
//! Prints a table; set `THROUGHPUT_BENCH_JSON=/path.json` to also write
//! the machine-readable snapshot `BENCH_throughput.json` is built from.
//! Knobs: `THROUGHPUT_CLIENTS` (sessions per case, default 512),
//! `THROUGHPUT_REPS` (repetitions, best kept, default 3),
//! `THROUGHPUT_SHARDS` (comma list, default `1,2,4,8`),
//! `THROUGHPUT_WAVE` (sessions started per driver pass, default 256).
//!
//! Shard scaling is core scaling: on an N-core machine the shards run
//! on distinct cores and aggregate msgs/sec grows with the shard count
//! until cores run out. The JSON records `cores_available` so a
//! single-core CI container's flat curve is not misread as a runtime
//! regression.

use starlink_bench::chaos::{assert_liveness_contract, run_chaos_cell, ChaosCell, ChaosProfile};
use starlink_bench::{run_sharded_case, run_sharded_mixed, ShardedRun, ShardedWorkload};
use starlink_core::{EngineConfig, Starlink};
use starlink_net::SimDuration;
use starlink_protocols::bridges::{self, BridgeCase, Family};
use starlink_protocols::{mdns, slp, wsd};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One fusable case under a duplicate-query flood: cache-on vs
/// cache-off system runs plus the kernel-level hit-vs-full cost ratio.
struct FloodSample {
    case: BridgeCase,
    hits: u64,
    misses: u64,
    insertions: u64,
    hit_rate: f64,
    on_sessions_per_sec: f64,
    off_sessions_per_sec: f64,
    hit_ns: u64,
    full_ns: u64,
}

impl FloodSample {
    /// Cache-hit kernel cost as a fraction of a full fused translation.
    fn hit_cost_ratio(&self) -> f64 {
        self.hit_ns as f64 / (self.full_ns as f64).max(1.0)
    }
}

fn flood_request(family: Family) -> Vec<u8> {
    match family {
        Family::Slp => {
            slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(7, "service:printer")))
        }
        Family::Bonjour => mdns::encode(&mdns::DnsMessage::Question(mdns::DnsQuestion::new(
            7,
            "_printer._tcp.local",
        )))
        .expect("question encodes"),
        Family::Wsd => wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(7, "dn:printer"))),
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    }
}

fn flood_response(family: Family) -> Vec<u8> {
    let url = "service:printer://10.0.0.3:631";
    match family {
        Family::Slp => slp::encode(&slp::SlpMessage::SrvRply(slp::SrvRply::new(9, url))),
        Family::Bonjour => mdns::encode(&mdns::DnsMessage::Response(mdns::DnsResponse::new(
            9,
            "_printer._tcp.local",
            url,
        )))
        .expect("response encodes"),
        Family::Wsd => wsd::encode(&wsd::WsdMessage::ProbeMatch(wsd::WsdProbeMatch::new(
            wsd::probe_uuid(9),
            wsd::probe_uuid(7),
            "dn:printer",
            url,
        ))),
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    }
}

/// Median wall-clock nanoseconds of `f` over `reps` timed runs (after
/// a handful of warm-ups).
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    for _ in 0..16 {
        f();
    }
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Kernel-level cost of serving one duplicate query from the answer
/// cache vs one full fused forward+backward translation, via the
/// engine's probe API (same scratch, same cache, no networking).
fn kernel_hit_vs_full(case: BridgeCase) -> (u64, u64) {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let config = EngineConfig {
        correlator: Some(std::sync::Arc::new(bridges::default_correlator())),
        answer_ttl: Some(SimDuration::from_secs(60)),
        ..EngineConfig::default()
    };
    let (mut engine, _) = framework.deploy_with(case.build("10.0.0.2"), config).expect("deploys");
    assert!(engine.is_fused(), "case {} must fuse", case.number());
    let request = flood_request(case.source());
    let response = flood_response(case.target());
    engine.fused_cache_seed_probe(&request, &response).expect("cache seeds");
    let mut reply = Vec::new();
    let hit_ns = median_ns(501, || {
        engine.fused_cache_hit_probe(&request, &mut reply).expect("hit probe");
        std::hint::black_box(&reply);
    });
    let mut query = Vec::new();
    let full_ns = median_ns(501, || {
        engine.fused_forward_probe(&request, &mut query).expect("forward probe");
        engine.fused_backward_probe(&request, &response, &mut reply).expect("backward probe");
        std::hint::black_box((&query, &reply));
    });
    (hit_ns, full_ns)
}

/// Floods one fusable case with duplicate queries (small waves, so
/// later queries arrive after the first legacy answer is cached) with
/// the answer cache on, then repeats the identical workload with the
/// cache off for the sessions/sec contrast.
fn flood(case: BridgeCase, clients: usize, wave: usize, shards: usize) -> FloodSample {
    let run_with = |answer_ttl: Option<SimDuration>| -> ShardedRun {
        let mut workload = ShardedWorkload::new(shards, clients).saturating();
        workload.wave = wave;
        workload.seed = 0xF10D;
        workload.correlated = true;
        workload.answer_ttl = answer_ttl;
        let run = run_sharded_case(case, workload);
        run.assert_isolated();
        run
    };
    let on = run_with(Some(SimDuration::from_secs(60)));
    let off = run_with(None);
    let cache = on.stats.cache();
    let off_cache = off.stats.cache();
    assert_eq!(
        (off_cache.hits, off_cache.misses, off_cache.insertions),
        (0, 0, 0),
        "cache-off run must not touch the cache"
    );
    let (hit_ns, full_ns) = kernel_hit_vs_full(case);
    FloodSample {
        case,
        hits: cache.hits,
        misses: cache.misses,
        insertions: cache.insertions,
        hit_rate: cache.hit_rate(),
        on_sessions_per_sec: on.sessions_per_sec(),
        off_sessions_per_sec: off.sessions_per_sec(),
        hit_ns,
        full_ns,
    }
}

struct MixedSample {
    shards: usize,
    msgs_per_sec: f64,
    sessions_per_sec: f64,
    runs: Vec<ShardedRun>,
}

fn measure(shards: usize, clients: usize, wave: usize, reps: usize) -> MixedSample {
    let mut best: Option<MixedSample> = None;
    for rep in 0..reps {
        let mut workload = ShardedWorkload::new(shards, clients).saturating();
        workload.wave = wave;
        workload.seed = 0xC0DE + rep as u64;
        let runs = run_sharded_mixed(workload);
        for run in &runs {
            run.assert_isolated();
        }
        let messages: u64 = runs.iter().map(|r| r.messages).sum();
        let sessions: usize = runs.iter().map(ShardedRun::completed).sum();
        let elapsed: f64 = runs.iter().map(|r| r.elapsed.as_secs_f64()).sum();
        let sample = MixedSample {
            shards,
            msgs_per_sec: messages as f64 / elapsed.max(1e-9),
            sessions_per_sec: sessions as f64 / elapsed.max(1e-9),
            runs,
        };
        let better = best.as_ref().is_none_or(|b| sample.msgs_per_sec > b.msgs_per_sec);
        if better {
            best = Some(sample);
        }
    }
    best.expect("at least one repetition")
}

fn main() {
    let clients = env_usize("THROUGHPUT_CLIENTS", 512);
    let reps = env_usize("THROUGHPUT_REPS", 3);
    let wave = env_usize("THROUGHPUT_WAVE", 256);
    let shard_counts: Vec<usize> = std::env::var("THROUGHPUT_SHARDS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let cores = std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1);

    println!(
        "sharded throughput: {clients} sessions/case, waves of {wave}, best of {reps} reps, \
         {cores} core(s) available"
    );
    println!(
        "{:<8} {:>14} {:>14} {:>10}   per-case p50/p99 µs",
        "shards", "msgs/sec", "sessions/sec", "vs 1"
    );

    let mut samples: Vec<MixedSample> = Vec::new();
    for &shards in &shard_counts {
        samples.push(measure(shards, clients, wave, reps));
    }
    let base = samples.first().map_or(1.0, |s| s.msgs_per_sec);
    for sample in &samples {
        let per_case: Vec<String> = sample
            .runs
            .iter()
            .map(|r| {
                format!(
                    "c{}:{}/{}",
                    r.case.number(),
                    r.latency_percentile_us(50.0),
                    r.latency_percentile_us(99.0)
                )
            })
            .collect();
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>9.2}x   {}",
            sample.shards,
            sample.msgs_per_sec,
            sample.sessions_per_sec,
            sample.msgs_per_sec / base,
            per_case.join(" ")
        );
    }

    let flood_clients = env_usize("THROUGHPUT_FLOOD_CLIENTS", 64);
    let flood_wave = env_usize("THROUGHPUT_FLOOD_WAVE", 4);
    println!();
    println!(
        "duplicate-query flood (fusable cases, {flood_clients} identical queries in waves of \
         {flood_wave}, answer cache 60s TTL vs off):"
    );
    println!(
        "{:<24} {:>5} {:>6} {:>7} {:>9} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "case",
        "hits",
        "misses",
        "hit%",
        "inserted",
        "on sess/s",
        "off sess/s",
        "hit ns",
        "full ns",
        "hit cost"
    );
    let floods: Vec<FloodSample> = BridgeCase::all()
        .iter()
        .filter(|c| c.fusable())
        .map(|&case| flood(case, flood_clients, flood_wave, 1))
        .collect();
    for sample in &floods {
        println!(
            "case{:<2} {:<17} {:>5} {:>6} {:>6.1}% {:>9} {:>12.0} {:>12.0} {:>9} {:>9} {:>8.1}%",
            sample.case.number(),
            sample.case.name().replace(' ', "_"),
            sample.hits,
            sample.misses,
            sample.hit_rate * 100.0,
            sample.insertions,
            sample.on_sessions_per_sec,
            sample.off_sessions_per_sec,
            sample.hit_ns,
            sample.full_ns,
            sample.hit_cost_ratio() * 100.0,
        );
    }

    // Saturation smoke under shared-bandwidth contention: the
    // contended-links chaos profile (2 MB/s fair-share links,
    // store-and-forward holding legs back above a 4 KiB backlog) at
    // bench scale. The liveness contract gates the numbers — every
    // session must complete, counters balanced, store-and-forward
    // settled — and the parked/replayed counters go into the JSON so
    // the contention machinery provably engaged.
    let contended_clients = env_usize("THROUGHPUT_CONTENDED_CLIENTS", 64);
    let contended_profile = ChaosProfile::contended_links();
    let contended_cell = ChaosCell {
        case: BridgeCase::SlpToBonjour,
        shards: 1,
        clients: contended_clients,
        seed: 0xC047,
    };
    let contended = run_chaos_cell(contended_cell, &contended_profile);
    assert_liveness_contract(&contended, &contended_profile, contended_cell.seed);
    let contended_sf = contended.stats.store_forward();
    println!();
    println!(
        "contended links (case {}, {} clients, {} B/s fair-share, saturation {} B): \
         {:.0} sessions/sec, p50/p99 {}/{} µs, store-forward parked {} replayed {} overflow {}",
        contended_cell.case.number(),
        contended_clients,
        contended_profile.link_bandwidth,
        contended_profile.store_forward.map_or(0, |p| p.saturation_bytes),
        contended.sessions_per_sec(),
        contended.latency_percentile_us(50.0),
        contended.latency_percentile_us(99.0),
        contended_sf.parked,
        contended_sf.replayed,
        contended_sf.overflow,
    );

    if let Ok(path) = std::env::var("THROUGHPUT_BENCH_JSON") {
        let mut out = String::from("{\n");
        out.push_str(
            "  \"note\": \"Shard workers are OS threads; aggregate msgs/sec scales with shards \
             only up to cores_available. On a single-core host the curve is flat by hardware — \
             regenerate on a multi-core machine to see shard scaling. Every counted run passed \
             full reply-isolation verification.\",\n",
        );
        out.push_str(&format!(
            "  \"config\": {{\"clients_per_case\": {clients}, \"wave\": {wave}, \
             \"repetitions\": {reps}, \"mode\": \"saturating\", \"cores_available\": {cores}}},\n"
        ));
        out.push_str("  \"sharding\": [\n");
        for (i, sample) in samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shards\": {}, \"mixed_msgs_per_sec\": {:.0}, \
                 \"mixed_sessions_per_sec\": {:.0}, \"speedup_vs_1_shard\": {:.3}, \"cases\": [\n",
                sample.shards,
                sample.msgs_per_sec,
                sample.sessions_per_sec,
                sample.msgs_per_sec / base
            ));
            for (j, run) in sample.runs.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"case\": {}, \"name\": \"{}\", \"msgs_per_sec\": {:.0}, \
                     \"sessions_per_sec\": {:.0}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
                    run.case.number(),
                    run.case.name(),
                    run.msgs_per_sec(),
                    run.sessions_per_sec(),
                    run.latency_percentile_us(50.0),
                    run.latency_percentile_us(99.0),
                    if j + 1 == sample.runs.len() { "" } else { "," }
                ));
            }
            out.push_str(&format!("    ]}}{}\n", if i + 1 == samples.len() { "" } else { "," }));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"duplicate_query_flood\": {{\"clients\": {flood_clients}, \"wave\": \
             {flood_wave}, \"answer_ttl_ms\": 60000, \"note\": \"Identical queries flood one \
             shard in small waves, so queries after the first completed exchange find the \
             answer cached. hit/full ns are kernel medians via the engine probe API; \
             hit_cost_pct is the cache-hit share of a full fused translation.\", \"cases\": [\n"
        ));
        for (i, sample) in floods.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"case\": {}, \"name\": \"{}\", \"hits\": {}, \"misses\": {}, \
                 \"insertions\": {}, \"hit_rate_pct\": {:.1}, \"cache_on_sessions_per_sec\": \
                 {:.0}, \"cache_off_sessions_per_sec\": {:.0}, \"hit_median_ns\": {}, \
                 \"full_translation_median_ns\": {}, \"hit_cost_pct\": {:.1}}}{}\n",
                sample.case.number(),
                sample.case.name(),
                sample.hits,
                sample.misses,
                sample.insertions,
                sample.hit_rate * 100.0,
                sample.on_sessions_per_sec,
                sample.off_sessions_per_sec,
                sample.hit_ns,
                sample.full_ns,
                sample.hit_cost_ratio() * 100.0,
                if i + 1 == floods.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]},\n");
        out.push_str(&format!(
            "  \"contended_links\": {{\"case\": {}, \"clients\": {contended_clients}, \
             \"link_bandwidth_bytes_per_sec\": {}, \"saturation_bytes\": {}, \
             \"sessions_per_sec\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, \"parked\": {}, \
             \"replayed\": {}, \"overflow\": {}, \"note\": \"Chaos contended-links profile at \
             bench scale: 2 MB/s fair-share links with store-and-forward backpressure; the run \
             passed the full liveness contract (every session completed, counters settled).\"}}\n",
            contended_cell.case.number(),
            contended_profile.link_bandwidth,
            contended_profile.store_forward.map_or(0, |p| p.saturation_bytes),
            contended.sessions_per_sec(),
            contended.latency_percentile_us(50.0),
            contended.latency_percentile_us(99.0),
            contended_sf.parked,
            contended_sf.replayed,
            contended_sf.overflow,
        ));
        out.push_str("}\n");
        match std::fs::write(&path, out) {
            Ok(()) => eprintln!("throughput bench: wrote {path}"),
            Err(err) => eprintln!("throughput bench: cannot write {path}: {err}"),
        }
    }
}
