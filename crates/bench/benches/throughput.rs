//! Saturation throughput of the sharded bridge runtime: sustained
//! msgs/sec and p50/p99 session latency for every [`BridgeCase`] at
//! 1/2/4/8 shards, driving wire-level clients in saturating mode (zero
//! modelled waits — the numbers measure the engine, not somebody's
//! legacy stack).
//!
//! Every run's replies are fully verified (right URL, own transaction
//! id, zero engine errors) before its throughput counts: a msgs/sec
//! figure over misdelivered replies would be meaningless.
//!
//! Prints a table; set `THROUGHPUT_BENCH_JSON=/path.json` to also write
//! the machine-readable snapshot `BENCH_throughput.json` is built from.
//! Knobs: `THROUGHPUT_CLIENTS` (sessions per case, default 512),
//! `THROUGHPUT_REPS` (repetitions, best kept, default 3),
//! `THROUGHPUT_SHARDS` (comma list, default `1,2,4,8`),
//! `THROUGHPUT_WAVE` (sessions started per driver pass, default 256).
//!
//! Shard scaling is core scaling: on an N-core machine the shards run
//! on distinct cores and aggregate msgs/sec grows with the shard count
//! until cores run out. The JSON records `cores_available` so a
//! single-core CI container's flat curve is not misread as a runtime
//! regression.

use starlink_bench::{run_sharded_mixed, ShardedRun, ShardedWorkload};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct MixedSample {
    shards: usize,
    msgs_per_sec: f64,
    sessions_per_sec: f64,
    runs: Vec<ShardedRun>,
}

fn measure(shards: usize, clients: usize, wave: usize, reps: usize) -> MixedSample {
    let mut best: Option<MixedSample> = None;
    for rep in 0..reps {
        let mut workload = ShardedWorkload::new(shards, clients).saturating();
        workload.wave = wave;
        workload.seed = 0xC0DE + rep as u64;
        let runs = run_sharded_mixed(workload);
        for run in &runs {
            run.assert_isolated();
        }
        let messages: u64 = runs.iter().map(|r| r.messages).sum();
        let sessions: usize = runs.iter().map(ShardedRun::completed).sum();
        let elapsed: f64 = runs.iter().map(|r| r.elapsed.as_secs_f64()).sum();
        let sample = MixedSample {
            shards,
            msgs_per_sec: messages as f64 / elapsed.max(1e-9),
            sessions_per_sec: sessions as f64 / elapsed.max(1e-9),
            runs,
        };
        let better = best.as_ref().is_none_or(|b| sample.msgs_per_sec > b.msgs_per_sec);
        if better {
            best = Some(sample);
        }
    }
    best.expect("at least one repetition")
}

fn main() {
    let clients = env_usize("THROUGHPUT_CLIENTS", 512);
    let reps = env_usize("THROUGHPUT_REPS", 3);
    let wave = env_usize("THROUGHPUT_WAVE", 256);
    let shard_counts: Vec<usize> = std::env::var("THROUGHPUT_SHARDS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let cores = std::thread::available_parallelism().map(std::num::NonZero::get).unwrap_or(1);

    println!(
        "sharded throughput: {clients} sessions/case, waves of {wave}, best of {reps} reps, \
         {cores} core(s) available"
    );
    println!(
        "{:<8} {:>14} {:>14} {:>10}   per-case p50/p99 µs",
        "shards", "msgs/sec", "sessions/sec", "vs 1"
    );

    let mut samples: Vec<MixedSample> = Vec::new();
    for &shards in &shard_counts {
        samples.push(measure(shards, clients, wave, reps));
    }
    let base = samples.first().map_or(1.0, |s| s.msgs_per_sec);
    for sample in &samples {
        let per_case: Vec<String> = sample
            .runs
            .iter()
            .map(|r| {
                format!(
                    "c{}:{}/{}",
                    r.case.number(),
                    r.latency_percentile_us(50.0),
                    r.latency_percentile_us(99.0)
                )
            })
            .collect();
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>9.2}x   {}",
            sample.shards,
            sample.msgs_per_sec,
            sample.sessions_per_sec,
            sample.msgs_per_sec / base,
            per_case.join(" ")
        );
    }

    if let Ok(path) = std::env::var("THROUGHPUT_BENCH_JSON") {
        let mut out = String::from("{\n");
        out.push_str(
            "  \"note\": \"Shard workers are OS threads; aggregate msgs/sec scales with shards \
             only up to cores_available. On a single-core host the curve is flat by hardware — \
             regenerate on a multi-core machine to see shard scaling. Every counted run passed \
             full reply-isolation verification.\",\n",
        );
        out.push_str(&format!(
            "  \"config\": {{\"clients_per_case\": {clients}, \"wave\": {wave}, \
             \"repetitions\": {reps}, \"mode\": \"saturating\", \"cores_available\": {cores}}},\n"
        ));
        out.push_str("  \"sharding\": [\n");
        for (i, sample) in samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shards\": {}, \"mixed_msgs_per_sec\": {:.0}, \
                 \"mixed_sessions_per_sec\": {:.0}, \"speedup_vs_1_shard\": {:.3}, \"cases\": [\n",
                sample.shards,
                sample.msgs_per_sec,
                sample.sessions_per_sec,
                sample.msgs_per_sec / base
            ));
            for (j, run) in sample.runs.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"case\": {}, \"name\": \"{}\", \"msgs_per_sec\": {:.0}, \
                     \"sessions_per_sec\": {:.0}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
                    run.case.number(),
                    run.case.name(),
                    run.msgs_per_sec(),
                    run.sessions_per_sec(),
                    run.latency_percentile_us(50.0),
                    run.latency_percentile_us(99.0),
                    if j + 1 == sample.runs.len() { "" } else { "," }
                ));
            }
            out.push_str(&format!("    ]}}{}\n", if i + 1 == samples.len() { "" } else { "," }));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&path, out) {
            Ok(()) => eprintln!("throughput bench: wrote {path}"),
            Err(err) => eprintln!("throughput bench: cannot write {path}: {err}"),
        }
    }
}
