//! Criterion microbench: the real (wall-clock) computational cost of a
//! complete bridge session — every parse, δ-translation, λ action and
//! compose the engine performs for one discovery, measured with the fast
//! calibration so virtual waits do not dominate event counts.
//!
//! This is the implementation-cost complement to the virtual-time
//! Fig. 12(b) table: the paper's ~300 ms translation figures are
//! protocol-bound; this shows the framework machinery itself costs
//! microseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use starlink_bench::run_bridge_case;
use starlink_protocols::{bridges::BridgeCase, Calibration};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("bridge_session");
    for &case in BridgeCase::all() {
        group.bench_function(
            format!("case{}_{}", case.number(), case.name().replace(' ', "_")),
            |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_bridge_case(case, seed, Calibration::fast()))
                })
            },
        );
    }
    group.finish();

    // Model loading + deployment alone (the runtime-generation step).
    let mut group = c.benchmark_group("deployment");
    group.bench_function("load_models_and_deploy_fig10", |b| {
        b.iter(|| {
            let mut framework = starlink_core::Starlink::new();
            starlink_protocols::bridges::load_all_mdls(&mut framework).unwrap();
            let merged = starlink_protocols::bridges::slp_to_bonjour();
            black_box(framework.deploy(merged).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine
}
criterion_main!(benches);
