//! Criterion microbench: the real computational cost of the **generic,
//! model-driven codecs** versus the hand-written native codecs — the
//! price of §IV-A's "general interpreters that execute the MDL
//! specifications" (an ablation of the framework's genericity).

use criterion::{criterion_group, criterion_main, Criterion};
use starlink_mdl::{load_mdl, MdlCodec};
use starlink_protocols::{mdns, slp, ssdp, wsd};
use std::hint::black_box;

fn bench_codecs(c: &mut Criterion) {
    let slp_codec = MdlCodec::generate(load_mdl(slp::mdl_xml()).unwrap()).unwrap();
    let ssdp_codec = MdlCodec::generate(load_mdl(ssdp::mdl_xml()).unwrap()).unwrap();
    let dns_codec = MdlCodec::generate(load_mdl(mdns::mdl_xml()).unwrap()).unwrap();
    let wsd_codec = MdlCodec::generate(load_mdl(wsd::mdl_xml()).unwrap()).unwrap();

    let slp_wire =
        slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(0xBEEF, "service:printer")));
    let ssdp_wire = ssdp::encode(&ssdp::SsdpMessage::MSearch(ssdp::MSearch::new(
        "urn:schemas-upnp-org:service:printer:1",
    )));
    let dns_wire =
        mdns::encode(&mdns::DnsMessage::Question(mdns::DnsQuestion::new(7, "_printer._tcp.local")))
            .unwrap();
    let wsd_wire = wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(7, "dn:printer")));

    let mut group = c.benchmark_group("parse");
    group.bench_function("slp_mdl_binary", |b| {
        b.iter(|| slp_codec.parse(black_box(&slp_wire)).unwrap())
    });
    group.bench_function("slp_native", |b| b.iter(|| slp::decode(black_box(&slp_wire)).unwrap()));
    group.bench_function("ssdp_mdl_text", |b| {
        b.iter(|| ssdp_codec.parse(black_box(&ssdp_wire)).unwrap())
    });
    group
        .bench_function("ssdp_native", |b| b.iter(|| ssdp::decode(black_box(&ssdp_wire)).unwrap()));
    group.bench_function("dns_mdl_binary", |b| {
        b.iter(|| dns_codec.parse(black_box(&dns_wire)).unwrap())
    });
    group.bench_function("dns_native", |b| b.iter(|| mdns::decode(black_box(&dns_wire)).unwrap()));
    group.bench_function("wsd_mdl_text", |b| {
        b.iter(|| wsd_codec.parse(black_box(&wsd_wire)).unwrap())
    });
    group.bench_function("wsd_native", |b| b.iter(|| wsd::decode(black_box(&wsd_wire)).unwrap()));
    group.finish();

    let slp_msg = slp_codec.parse(&slp_wire).unwrap();
    let ssdp_msg = ssdp_codec.parse(&ssdp_wire).unwrap();
    let wsd_msg = wsd_codec.parse(&wsd_wire).unwrap();
    let mut group = c.benchmark_group("compose");
    group.bench_function("slp_mdl_binary", |b| {
        b.iter(|| slp_codec.compose(black_box(&slp_msg)).unwrap())
    });
    group.bench_function("ssdp_mdl_text", |b| {
        b.iter(|| ssdp_codec.compose(black_box(&ssdp_msg)).unwrap())
    });
    group.bench_function("wsd_mdl_text", |b| {
        b.iter(|| wsd_codec.compose(black_box(&wsd_msg)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codecs
}
criterion_main!(benches);
