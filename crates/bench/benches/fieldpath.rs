//! Criterion microbench: field-path parsing and evaluation — the cost of
//! the translation logic's selectors (§III-D / Fig. 8's XPath
//! expressions) over abstract messages.

use criterion::{criterion_group, criterion_main, Criterion};
use starlink_message::{AbstractMessage, Field, FieldPath, Value};
use std::hint::black_box;

fn sample_message() -> AbstractMessage {
    let mut msg = AbstractMessage::new("SLP", "SLPSrvRequest");
    msg.push_field(Field::primitive("XID", 7u16));
    msg.push_field(Field::primitive("SRVType", "service:printer"));
    msg.push_field(Field::structured(
        "URL",
        vec![
            Field::primitive("protocol", "http"),
            Field::primitive("address", "10.0.0.1"),
            Field::primitive("port", 5000u16),
            Field::primitive("resource", "/desc.xml"),
        ],
    ));
    msg
}

fn bench_fieldpath(c: &mut Criterion) {
    let msg = sample_message();
    let dotted = FieldPath::parse("URL.port").unwrap();
    let xpath_expr = "/field/structuredField[label='URL']/field/primitiveField[label='port']/value";
    let xpath = FieldPath::parse(xpath_expr).unwrap();

    let mut group = c.benchmark_group("fieldpath");
    group.bench_function("parse_dotted", |b| {
        b.iter(|| FieldPath::parse(black_box("URL.port")).unwrap())
    });
    group.bench_function("parse_xpath", |b| {
        b.iter(|| FieldPath::parse(black_box(xpath_expr)).unwrap())
    });
    group.bench_function("get_dotted", |b| b.iter(|| msg.get(black_box(&dotted)).unwrap()));
    group.bench_function("get_xpath", |b| b.iter(|| msg.get(black_box(&xpath)).unwrap()));
    group.bench_function("set_top_level", |b| {
        let mut m = msg.clone();
        let path = FieldPath::parse("XID").unwrap();
        b.iter(|| m.set(black_box(&path), Value::Unsigned(9)).unwrap())
    });
    group.bench_function("xml_image_render", |b| {
        b.iter(|| starlink_message::xml::message_to_xml(black_box(&msg)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fieldpath
}
criterion_main!(benches);
