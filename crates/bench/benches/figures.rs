//! Regenerates the paper's **model figures** from the loaded models:
//!
//! * Figs. 1, 2, 3, 9 — coloured automata → Graphviz DOT;
//! * Figs. 4, 10 — merged automata → Graphviz DOT + merge reports;
//! * Figs. 5, 8 — merge/translation specifications → Bridge XML;
//! * Figs. 7, 11 — MDL specifications (verbatim model documents).
//!
//! Artefacts are written to `target/figures/`. Run with
//! `cargo bench -p starlink-bench --bench figures`.

use starlink_automata::{automaton_to_dot, bridge_to_xml, merged_to_dot};
use starlink_protocols::{bridges::BridgeCase, http, mdns, slp, ssdp, wsd};
use std::fs;
use std::path::Path;

fn main() {
    let dir = Path::new("target/figures");
    fs::create_dir_all(dir).expect("create target/figures");
    let mut written: Vec<String> = Vec::new();
    let mut write = |name: &str, content: String| {
        fs::write(dir.join(name), content).expect("write figure");
        written.push(name.to_owned());
    };

    // Figs. 1–3, 9: the coloured automata.
    write("fig1_slp_automaton.dot", automaton_to_dot(&slp::service_automaton()));
    write("fig2_ssdp_automaton.dot", automaton_to_dot(&ssdp::client_automaton()));
    write("fig3_http_automaton.dot", automaton_to_dot(&http::client_automaton(80)));
    write("fig9_mdns_automaton.dot", automaton_to_dot(&mdns::client_automaton()));
    write("wsd_automaton.dot", automaton_to_dot(&wsd::client_automaton()));

    // Figs. 4, 10: the merged automata (and the other ten cases —
    // the synthesized WSD bridges export the same model-document form).
    for &case in BridgeCase::all() {
        let merged = case.build("10.0.0.2");
        let base = match case {
            BridgeCase::SlpToUpnp => "fig4_merged_slp_ssdp_http".to_owned(),
            BridgeCase::SlpToBonjour => "fig10_merged_slp_mdns".to_owned(),
            other => format!("case{}_merged", other.number()),
        };
        write(&format!("{base}.dot"), merged_to_dot(&merged));
        // Figs. 5/8 equivalent: the full bridge model document with the
        // TranslationLogic sections.
        write(&format!("{base}.bridge.xml"), bridge_to_xml(&merged));
        let report = merged.check_merge();
        println!(
            "case {} ({}): mergeable={} weak={} strong={} chain={:?}",
            case.number(),
            case.name(),
            report.is_mergeable(),
            report.weakly_merged,
            report.strongly_merged,
            report.chain
        );
        assert!(report.is_mergeable());
    }

    // Figs. 7, 11: the MDL documents are themselves the model artefacts.
    write("fig7_slp_mdl.xml", slp::mdl_xml().to_owned());
    write("fig11_ssdp_mdl.xml", ssdp::mdl_xml().to_owned());
    write("dns_mdl.xml", mdns::mdl_xml().to_owned());
    write("http_mdl.xml", http::mdl_xml().to_owned());
    write("wsd_mdl.xml", wsd::mdl_xml().to_owned());

    println!("\nwrote {} figure artefacts to target/figures/:", written.len());
    for name in &written {
        println!("  {name}");
    }
}
