//! Regenerates **Fig. 12(b)** — "Translation times of Starlink
//! connectors": min/median/max over 100 seeded runs of each of the six
//! bridge cases, printed next to the paper's values, followed by the
//! §VI overhead analysis (translation cost relative to the client's
//! native protocol).
//!
//! Run with `cargo bench -p starlink-bench --bench fig12b`.

use starlink_bench::{fig12a_table, fig12b_table, print_table};

fn main() {
    let runs = 100;
    let rows = fig12b_table(runs);
    print_table(
        &format!("Fig. 12(b) — Translation times of Starlink connectors ({runs} runs)"),
        &rows,
    );

    // §VI analysis: "in case 6 it is approximately a 600 percentage
    // increase in response time, while in case 1 it is 5 percent" —
    // relative changes computed against the *native* response of the
    // client's own protocol.
    let native = fig12a_table(runs);
    let native_of = |client: &str| {
        native
            .iter()
            .find(|row| row.label == client)
            .map(|row| row.measured.median_ms)
            .expect("native row")
    };
    println!("\n§VI analysis — translation time vs the client's native protocol:");
    for row in &rows {
        // Row labels are "N. <Client> to <Target>".
        let client = row.label.split(". ").nth(1).and_then(|l| l.split(" to ").next()).unwrap();
        let native_ms = native_of(client);
        let ratio = row.measured.median_ms as f64 / native_ms as f64 * 100.0 - 100.0;
        println!(
            "  {:<22} bridge {:>6} ms vs native {client} {:>6} ms  → {:+.0}% response-time change",
            row.label, row.measured.median_ms, native_ms, ratio
        );
    }

    // Shape assertions: SLP-target cases near the 6 s floor; the rest in
    // the low hundreds of ms; everything far below the 15 s OpenSLP
    // timeout the paper cites as the acceptability bound.
    for row in &rows {
        assert!(row.measured.median_ms < 15_000, "{} exceeds timeout bound", row.label);
        if row.label.ends_with("to SLP") {
            assert!(row.measured.median_ms > 5_000, "{} should be SLP-bound", row.label);
        } else {
            assert!(row.measured.median_ms < 1_000, "{} should be sub-second", row.label);
        }
    }
    println!("\nshape check: SLP-target cases are bounded by the 6s legacy SLP response,");
    println!("all other cases complete in the low hundreds of ms, all within the 15s timeout  ✓");
}
