//! Regenerates **Fig. 12(a)** — "Response time measures for legacy
//! discovery protocols": min/median/max over 100 seeded runs of each
//! native client/service pair, printed next to the paper's published
//! values.
//!
//! Run with `cargo bench -p starlink-bench --bench fig12a`.

use starlink_bench::{fig12a_table, print_table};

fn main() {
    let runs = 100;
    let rows = fig12a_table(runs);
    print_table(
        &format!(
            "Fig. 12(a) — Response time measures for legacy discovery protocols ({runs} runs)"
        ),
        &rows,
    );

    // Shape checks mirrored from the paper: SLP ≫ UPnP > Bonjour.
    let slp = rows[0].measured.median_ms;
    let bonjour = rows[1].measured.median_ms;
    let upnp = rows[2].measured.median_ms;
    assert!(slp > upnp && upnp > bonjour, "native ordering broken: {slp} {upnp} {bonjour}");
    println!("\nshape check: SLP ({slp}ms) >> UPnP ({upnp}ms) > Bonjour ({bonjour}ms)  ✓");
}
