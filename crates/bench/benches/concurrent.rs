//! Criterion microbench: wall-clock cost of serving N concurrent bridge
//! sessions through one engine — the multi-session runtime scenario
//! (staggered clients, overlapping sessions, per-session executions).
//!
//! The single-session `engine` bench measures the machinery cost of one
//! discovery; this one measures how that cost scales when 100 clients
//! interleave, which is what a network-transparent bridge actually
//! serves. Fast calibration keeps virtual waits from dominating event
//! counts.

use criterion::{criterion_group, criterion_main, Criterion};
use starlink_bench::run_concurrent_clients;
use starlink_protocols::{bridges::BridgeCase, Calibration};
use std::hint::black_box;

fn bench_concurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("bridge_concurrent_100");
    for &case in BridgeCase::all() {
        group.bench_function(
            format!("case{}_{}", case.number(), case.name().replace(' ', "_")),
            |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_concurrent_clients(case, 100, seed, Calibration::fast()))
                })
            },
        );
    }
    group.finish();

    // Scaling shape: the same case at increasing client counts.
    let mut group = c.benchmark_group("bridge_concurrent_scaling");
    for clients in [1usize, 10, 100] {
        group.bench_function(format!("slp_to_bonjour_{clients}_clients"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_concurrent_clients(
                    BridgeCase::SlpToBonjour,
                    clients,
                    seed,
                    Calibration::fast(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_concurrent
}
criterion_main!(benches);
