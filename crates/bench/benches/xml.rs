//! Criterion microbench: runtime model loading — the cost of §II-E
//! requirement 1 ("the solution is fully generateable at runtime"):
//! parsing MDL XML documents, generating codecs, and loading bridge
//! models.

use criterion::{criterion_group, criterion_main, Criterion};
use starlink_automata::{bridge_to_xml, load_bridge};
use starlink_mdl::{load_mdl, MdlCodec};
use starlink_protocols::{bridges, mdns, slp, ssdp};
use std::hint::black_box;

fn bench_model_loading(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_loading");
    group.bench_function("parse_slp_mdl_xml", |b| {
        b.iter(|| load_mdl(black_box(slp::mdl_xml())).unwrap())
    });
    group.bench_function("parse_ssdp_mdl_xml", |b| {
        b.iter(|| load_mdl(black_box(ssdp::mdl_xml())).unwrap())
    });
    group.bench_function("generate_codec_from_spec", |b| {
        b.iter(|| MdlCodec::generate(load_mdl(black_box(mdns::mdl_xml())).unwrap()).unwrap())
    });

    let bridge_xml = bridge_to_xml(&bridges::slp_to_upnp());
    group.bench_function("load_bridge_xml_fig4", |b| {
        b.iter(|| load_bridge(black_box(&bridge_xml)).unwrap())
    });
    group.bench_function("export_bridge_xml_fig4", |b| {
        let merged = bridges::slp_to_upnp();
        b.iter(|| bridge_to_xml(black_box(&merged)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_model_loading
}
criterion_main!(benches);
