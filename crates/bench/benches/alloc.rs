//! Heap-allocation census of the codec hot path: how many allocator
//! calls one parse / compose / parse→compose round costs per protocol.
//!
//! Wall-clock microbenches (`codec.rs`) can hide allocator pressure
//! behind a warm cache; this harness counts `alloc` calls exactly, which
//! is the regression metric `BENCH_codec.json` tracks alongside time.
//!
//! Run with `cargo bench -p starlink-bench --bench alloc`. Set
//! `ALLOC_BENCH_JSON=<path>` to also write the counts as JSON.

use starlink_core::{EngineConfig, Starlink};
use starlink_mdl::{load_mdl, MdlCodec};
use starlink_protocols::bridges::{self, BridgeCase, Family};
use starlink_protocols::{mdns, slp, ssdp, wsd};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Counts allocator calls made while enabled; delegates to the system
/// allocator.
struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ENABLED: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ENABLED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` `runs` times and returns the mean allocator calls per run.
fn count_allocs(runs: u64, mut f: impl FnMut()) -> u64 {
    // One untracked warm-up run so lazy one-time initialisation (e.g.
    // lookup tables) does not inflate the per-message figure.
    f();
    ALLOCS.store(0, Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
    for _ in 0..runs {
        f();
    }
    ENABLED.store(false, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed) / runs
}

struct Census {
    label: &'static str,
    parse: u64,
    compose: u64,
    roundtrip: u64,
}

fn census(label: &'static str, codec: &MdlCodec, wire: &[u8]) -> Census {
    const RUNS: u64 = 200;
    let message = codec.parse(wire).expect("census wire parses");
    let mut scratch = Vec::new();
    Census {
        label,
        parse: count_allocs(RUNS, || {
            std::hint::black_box(codec.parse(std::hint::black_box(wire)).unwrap());
        }),
        compose: count_allocs(RUNS, || {
            codec.compose_into(std::hint::black_box(&message), &mut scratch).unwrap();
            std::hint::black_box(&scratch);
        }),
        roundtrip: count_allocs(RUNS, || {
            let parsed = codec.parse(std::hint::black_box(wire)).unwrap();
            codec.compose_into(&parsed, &mut scratch).unwrap();
            std::hint::black_box(&scratch);
        }),
    }
}

/// One fused bridged exchange (forward + backward probe) per case —
/// the paths the tentpole claims are allocation-free at steady state.
struct FusedCensus {
    case: BridgeCase,
    roundtrip: u64,
}

fn native_request(family: Family) -> Vec<u8> {
    match family {
        Family::Slp => {
            slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(7, "service:printer")))
        }
        Family::Bonjour => mdns::encode(&mdns::DnsMessage::Question(mdns::DnsQuestion::new(
            7,
            "_printer._tcp.local",
        )))
        .unwrap(),
        Family::Wsd => wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(7, "dn:printer"))),
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    }
}

fn native_response(family: Family) -> Vec<u8> {
    let url = "service:printer://10.0.0.3:631";
    match family {
        Family::Slp => slp::encode(&slp::SlpMessage::SrvRply(slp::SrvRply::new(9, url))),
        Family::Bonjour => mdns::encode(&mdns::DnsMessage::Response(mdns::DnsResponse::new(
            9,
            "_printer._tcp.local",
            url,
        )))
        .unwrap(),
        Family::Wsd => wsd::encode(&wsd::WsdMessage::ProbeMatch(wsd::WsdProbeMatch::new(
            wsd::probe_uuid(9),
            wsd::probe_uuid(7),
            "dn:printer",
            url,
        ))),
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    }
}

fn fused_census(case: BridgeCase) -> FusedCensus {
    const RUNS: u64 = 200;
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).unwrap();
    let config = EngineConfig {
        correlator: Some(std::sync::Arc::new(bridges::default_correlator())),
        ..EngineConfig::default()
    };
    let (mut engine, _) = framework.deploy_with(case.build("10.0.0.2"), config).unwrap();
    assert!(engine.is_fused(), "case {} must fuse", case.number());
    let request = native_request(case.source());
    let response = native_response(case.target());
    let mut query_buf = Vec::new();
    let mut reply_buf = Vec::new();
    let roundtrip = count_allocs(RUNS, || {
        engine.fused_forward_probe(&request, &mut query_buf).unwrap();
        engine.fused_backward_probe(&request, &response, &mut reply_buf).unwrap();
        std::hint::black_box((&query_buf, &reply_buf));
    });
    FusedCensus { case, roundtrip }
}

fn main() {
    let slp_codec = MdlCodec::generate(load_mdl(slp::mdl_xml()).unwrap()).unwrap();
    let ssdp_codec = MdlCodec::generate(load_mdl(ssdp::mdl_xml()).unwrap()).unwrap();
    let dns_codec = MdlCodec::generate(load_mdl(mdns::mdl_xml()).unwrap()).unwrap();
    let wsd_codec = MdlCodec::generate(load_mdl(wsd::mdl_xml()).unwrap()).unwrap();

    let slp_wire =
        slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(0xBEEF, "service:printer")));
    let ssdp_wire = ssdp::encode(&ssdp::SsdpMessage::MSearch(ssdp::MSearch::new(
        "urn:schemas-upnp-org:service:printer:1",
    )));
    let dns_wire =
        mdns::encode(&mdns::DnsMessage::Question(mdns::DnsQuestion::new(7, "_printer._tcp.local")))
            .unwrap();
    let wsd_wire = wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(7, "dn:printer")));

    let rows = [
        census("slp_binary", &slp_codec, &slp_wire),
        census("ssdp_text", &ssdp_codec, &ssdp_wire),
        census("dns_binary", &dns_codec, &dns_wire),
        census("wsd_text", &wsd_codec, &wsd_wire),
    ];

    println!("allocator calls per message (mean of 200 runs):");
    println!("{:<12} {:>7} {:>9} {:>11}", "codec", "parse", "compose", "roundtrip");
    for row in &rows {
        println!("{:<12} {:>7} {:>9} {:>11}", row.label, row.parse, row.compose, row.roundtrip);
    }

    let fused_rows: Vec<FusedCensus> =
        BridgeCase::all().iter().filter(|c| c.fusable()).map(|&case| fused_census(case)).collect();

    println!();
    println!("fused bridge translation, allocator calls per full exchange (mean of 200 runs):");
    println!("{:<24} {:>9}", "case", "roundtrip");
    for row in &fused_rows {
        println!(
            "case{:<2} {:<17} {:>9}",
            row.case.number(),
            row.case.name().replace(' ', "_"),
            row.roundtrip
        );
    }

    if let Ok(path) = std::env::var("ALLOC_BENCH_JSON") {
        let mut out = String::from("{\n  \"codecs\": [\n");
        for (i, row) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"codec\": \"{}\", \"parse_allocs\": {}, \"compose_allocs\": {}, \
                 \"roundtrip_allocs\": {}}}{}\n",
                row.label,
                row.parse,
                row.compose,
                row.roundtrip,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"fused_translation\": [\n");
        for (i, row) in fused_rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"case\": {}, \"name\": \"{}\", \"roundtrip_allocs\": {}}}{}\n",
                row.case.number(),
                row.case.name(),
                row.roundtrip,
                if i + 1 == fused_rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write alloc census JSON");
        eprintln!("alloc bench: wrote {path}");
    }
}
