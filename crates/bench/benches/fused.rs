//! Criterion microbench: the fused parse→translate→compose fast path
//! against the interpreted translation it replaces, per fusable
//! [`BridgeCase`].
//!
//! The fused side measures [`BridgeEngine::fused_forward_probe`] +
//! [`BridgeEngine::fused_backward_probe`] — the exact per-message kernel
//! the deployed engine runs (flat slot parse, precompiled assignment
//! steps, slot compose), minus only the network emit. The interpreted
//! side replays the same data path through the generic machinery:
//! MDL parse into a `Message` tree, `apply_assignments` with by-name
//! field paths and registry function lookups, tree compose. The
//! interpreted kernel here is *favorable* to the baseline — it skips
//! the execution-automaton stepping and session bookkeeping the real
//! interpreted engine also pays — so the reported speedup is a floor.
//!
//! `roundtrip` = one full bridged exchange worth of translation work:
//! request leg (parse query, forward steps, compose outbound query) +
//! response leg (parse reply, backward steps, compose legacy reply).

use criterion::{criterion_group, criterion_main, Criterion};
use starlink_automata::{apply_assignments, Assignment, FunctionRegistry, MessageStore};
use starlink_core::{BridgeEngine, EngineConfig, Starlink};
use starlink_mdl::{load_mdl, MdlCodec};
use starlink_message::AbstractMessage;
use starlink_protocols::{
    bridges::{self, BridgeCase, Family},
    mdns, slp, wsd,
};
use std::hint::black_box;
use std::sync::Arc;

const BRIDGE: &str = "10.0.0.2";
const URL: &str = "service:printer://10.0.0.3:631";

fn request_wire(family: Family) -> Vec<u8> {
    match family {
        Family::Slp => {
            slp::encode(&slp::SlpMessage::SrvRqst(slp::SrvRqst::new(7, "service:printer")))
        }
        Family::Bonjour => mdns::encode(&mdns::DnsMessage::Question(mdns::DnsQuestion::new(
            7,
            "_printer._tcp.local",
        )))
        .expect("question encodes"),
        Family::Wsd => wsd::encode(&wsd::WsdMessage::Probe(wsd::WsdProbe::new(7, "dn:printer"))),
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    }
}

fn response_wire(family: Family) -> Vec<u8> {
    match family {
        Family::Slp => slp::encode(&slp::SlpMessage::SrvRply(slp::SrvRply::new(9, URL))),
        Family::Bonjour => mdns::encode(&mdns::DnsMessage::Response(mdns::DnsResponse::new(
            9,
            "_printer._tcp.local",
            URL,
        )))
        .expect("response encodes"),
        Family::Wsd => wsd::encode(&wsd::WsdMessage::ProbeMatch(wsd::WsdProbeMatch::new(
            wsd::probe_uuid(9),
            wsd::probe_uuid(7),
            "dn:printer",
            URL,
        ))),
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    }
}

fn codec_for(family: Family) -> MdlCodec {
    let xml = match family {
        Family::Slp => slp::mdl_xml(),
        Family::Bonjour => mdns::mdl_xml(),
        Family::Wsd => wsd::mdl_xml(),
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    };
    MdlCodec::generate(load_mdl(xml).expect("mdl loads")).expect("codec generates")
}

/// The MDL protocol name of a family's automaton part (Bonjour's
/// automaton speaks `DNS`).
fn protocol_name(family: Family) -> &'static str {
    match family {
        Family::Slp => "SLP",
        Family::Bonjour => "DNS",
        Family::Wsd => "WSD",
        Family::Upnp => unreachable!("no fusable case touches UPnP"),
    }
}

/// A fused engine deployed for `case` (panics if the case does not
/// actually fuse — the bench is only meaningful on the fast path).
fn fused_engine(case: BridgeCase) -> BridgeEngine {
    let mut framework = Starlink::new();
    bridges::load_all_mdls(&mut framework).expect("models load");
    let config = EngineConfig {
        correlator: Some(Arc::new(bridges::default_correlator())),
        ..EngineConfig::default()
    };
    let (engine, _) = framework.deploy_with(case.build(BRIDGE), config).expect("deploys");
    assert!(
        engine.is_fused(),
        "case {} did not fuse: {:?}",
        case.number(),
        engine.fused_reject_reason()
    );
    engine
}

/// The interpreted translation data path rebuilt from the public model
/// APIs: tree parse, by-name assignments, tree compose.
struct InterpretedKernel {
    src_codec: MdlCodec,
    tgt_codec: MdlCodec,
    forward: Vec<Assignment>,
    backward: Vec<Assignment>,
    req_out: String,
    resp_out: String,
    blank_req_out: AbstractMessage,
    blank_resp_out: AbstractMessage,
    registry: FunctionRegistry,
}

impl InterpretedKernel {
    fn new(case: BridgeCase) -> Self {
        let merged = case.build(BRIDGE);
        let src_codec = codec_for(case.source());
        let tgt_codec = codec_for(case.target());
        let target_protocol = protocol_name(case.target());
        let mut forward = Vec::new();
        let mut backward = Vec::new();
        for delta in merged.deltas() {
            let to_part = merged.part(delta.to.part).expect("delta part exists");
            if to_part.protocol() == target_protocol {
                forward = delta.assignments.clone();
            } else {
                backward = delta.assignments.clone();
            }
        }
        assert!(!forward.is_empty() && !backward.is_empty(), "both δs carry assignments");
        let req_out = forward[0].target_message.clone();
        let resp_out = backward[0].target_message.clone();
        let blank_req_out = tgt_codec.schema(&req_out).expect("request-out schema").instantiate();
        let blank_resp_out =
            src_codec.schema(&resp_out).expect("response-out schema").instantiate();
        InterpretedKernel {
            src_codec,
            tgt_codec,
            forward,
            backward,
            req_out,
            resp_out,
            blank_req_out,
            blank_resp_out,
            registry: FunctionRegistry::with_builtins(),
        }
    }

    fn forward(&self, wire: &[u8], buf: &mut Vec<u8>) {
        let request = self.src_codec.parse(wire).expect("request parses");
        let mut store = MessageStore::new();
        store.insert(request);
        store.insert(self.blank_req_out.clone());
        apply_assignments(&self.forward, &mut store, &self.registry).expect("forward applies");
        let out = store.get(&self.req_out).expect("request-out present");
        self.tgt_codec.compose_into(out, buf).expect("request-out composes");
    }

    fn backward(&self, request_wire: &[u8], response_wire: &[u8], buf: &mut Vec<u8>) {
        let request = self.src_codec.parse(request_wire).expect("request parses");
        let response = self.tgt_codec.parse(response_wire).expect("response parses");
        let mut store = MessageStore::new();
        store.insert(request);
        store.insert(response);
        store.insert(self.blank_resp_out.clone());
        apply_assignments(&self.backward, &mut store, &self.registry).expect("backward applies");
        let out = store.get(&self.resp_out).expect("response-out present");
        self.src_codec.compose_into(out, buf).expect("response-out composes");
    }
}

fn bench_fused(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_vs_interpreted");
    for &case in BridgeCase::all().iter().filter(|c| c.fusable()) {
        let request = request_wire(case.source());
        let response = response_wire(case.target());
        let label = case.name().replace(' ', "_");

        let mut engine = fused_engine(case);
        let mut query_buf = Vec::new();
        let mut reply_buf = Vec::new();
        group.bench_function(format!("case{}_{label}_fused", case.number()), |b| {
            b.iter(|| {
                engine
                    .fused_forward_probe(black_box(&request), &mut query_buf)
                    .expect("forward probe");
                engine
                    .fused_backward_probe(black_box(&request), black_box(&response), &mut reply_buf)
                    .expect("backward probe");
                black_box((&query_buf, &reply_buf));
            })
        });

        let kernel = InterpretedKernel::new(case);
        group.bench_function(format!("case{}_{label}_interpreted", case.number()), |b| {
            b.iter(|| {
                kernel.forward(black_box(&request), &mut query_buf);
                kernel.backward(black_box(&request), black_box(&response), &mut reply_buf);
                black_box((&query_buf, &reply_buf));
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fused
}
criterion_main!(benches);
