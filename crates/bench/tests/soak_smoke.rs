//! Short-mode gateway soak: the same two-phase harness the 100k
//! acceptance run uses ([`starlink_bench::soak`]), at a size `cargo
//! test` can afford. CI runs it bigger via `SOAK_SESSIONS` /
//! `SOAK_SECS` / `SOAK_SUSTAINED`; the liveness, reply-isolation and
//! flat-RSS contracts are asserted at every size. Skips loudly where
//! the environment cannot bind loopback sockets.

use starlink_bench::soak::{run_soak, SoakConfig};
use starlink_net::LoopbackUdp;

#[test]
fn gateway_soak_smoke_holds_and_drains_every_session() {
    if LoopbackUdp::bind().is_err() {
        eprintln!("SKIP gateway soak: loopback UDP unavailable in this environment");
        return;
    }
    let config = SoakConfig::smoke().with_env();
    let report = match run_soak(&config) {
        Ok(report) => report,
        Err(reason) => {
            eprintln!("SKIP gateway soak: {reason}");
            return;
        }
    };
    eprintln!(
        "gateway soak [{}]: {} sessions over {} sockets, peak {} concurrent, \
         ramp {:?}, drain {:?}, RSS {} -> {} kB",
        report.mode,
        report.started,
        report.sockets,
        report.peak_concurrent,
        report.ramp,
        report.drain,
        report.rss_warmup_kb,
        report.rss_hold_peak_kb,
    );
    // A loaded single-core CI box can ramp slower than the short hold
    // window, so the smoke demands a substantial floor rather than the
    // full plan at peak; wedged/isolation/RSS contracts stay absolute.
    let min_peak = (report.sessions / 2).max(1) as u64;
    report.assert_healthy(min_peak);
}
