//! Property tests on the simulator: deterministic replay, timer
//! ordering, and datagram conservation.

use proptest::prelude::*;
use starlink_net::{Actor, Context, Datagram, SimAddr, SimDuration, SimNet};
use std::sync::{Arc, Mutex};

/// Sets a batch of timers at start and records firing order.
struct TimerActor {
    delays: Vec<u64>,
    fired: Arc<Mutex<Vec<(u64, u64)>>>, // (virtual ms, tag)
}

impl Actor for TimerActor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for (tag, delay) in self.delays.iter().enumerate() {
            ctx.set_timer(SimDuration::from_millis(*delay), tag as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        self.fired.lock().unwrap().push((ctx.now().as_millis(), tag));
    }
}

/// Sends `count` datagrams to a sink at start.
struct Burst {
    count: usize,
    to: SimAddr,
}

impl Actor for Burst {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(9999).unwrap();
        for i in 0..self.count {
            ctx.udp_send(9999, self.to.clone(), vec![i as u8]);
        }
    }
}

struct Sink {
    port: u16,
    received: Arc<Mutex<Vec<u8>>>,
}

impl Actor for Sink {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.bind_udp(self.port).unwrap();
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, datagram: Datagram) {
        self.received.lock().unwrap().push(datagram.payload[0]);
    }
}

proptest! {
    #[test]
    fn timers_fire_in_nondecreasing_time_order(delays in prop::collection::vec(0u64..1_000, 1..20)) {
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimNet::new(1);
        sim.add_actor("h", TimerActor { delays: delays.clone(), fired: fired.clone() });
        sim.run_until_idle();
        let fired = fired.lock().unwrap();
        prop_assert_eq!(fired.len(), delays.len());
        // Firing times never decrease, and each firing is at (or after,
        // never before) its requested delay.
        let mut last = 0;
        for (at, tag) in fired.iter() {
            prop_assert!(*at >= last);
            prop_assert!(*at >= delays[*tag as usize]);
            last = *at;
        }
    }

    #[test]
    fn identical_seeds_replay_identical_traces(seed in any::<u64>(), count in 1usize..10) {
        fn run(seed: u64, count: usize) -> (u64, usize, Vec<u8>) {
            let received = Arc::new(Mutex::new(Vec::new()));
            let mut sim = SimNet::new(seed);
            sim.add_actor("10.0.0.2", Sink { port: 80, received: received.clone() });
            sim.add_actor("10.0.0.1", Burst { count, to: SimAddr::new("10.0.0.2", 80) });
            let end = sim.run_until_idle();
            let trace_len = sim.trace().len();
            let got = received.lock().unwrap().clone();
            (end.as_micros(), trace_len, got)
        }
        prop_assert_eq!(run(seed, count), run(seed, count));
    }

    #[test]
    fn every_sent_datagram_to_a_bound_port_arrives(count in 1usize..30) {
        let received = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimNet::new(9);
        sim.add_actor("10.0.0.2", Sink { port: 80, received: received.clone() });
        sim.add_actor("10.0.0.1", Burst { count, to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        let mut got = received.lock().unwrap().clone();
        got.sort_unstable();
        let expected: Vec<u8> = (0..count as u8).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn clock_is_monotone_across_steps(count in 1usize..20) {
        let received = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimNet::new(3);
        sim.add_actor("10.0.0.2", Sink { port: 80, received: received.clone() });
        sim.add_actor("10.0.0.1", Burst { count, to: SimAddr::new("10.0.0.2", 80) });
        let mut last = sim.now();
        while sim.step() {
            prop_assert!(sim.now() >= last);
            last = sim.now();
        }
    }
}
