//! # starlink-net
//!
//! The network substrate of the Starlink reproduction: a **deterministic
//! discrete-event simulator** with virtual time, UDP unicast/multicast,
//! TCP connection semantics and timers — plus a thin loopback engine over
//! real sockets.
//!
//! The paper's evaluation (§VI) ran client, service and bridge on a
//! single machine "to avoid measuring additional network latency, which
//! may not be constant"; the simulator reproduces exactly that controlled
//! setting. Every run is seeded ([`SimNet::new`]), so the 100-run
//! min/median/max sweeps of Fig. 12 regenerate identically.
//!
//! * [`SimTime`]/[`SimDuration`] — integer-microsecond virtual time;
//! * [`SimAddr`] — host:port endpoints, with multicast-range detection;
//! * [`LatencyModel`] — seeded per-delivery latency;
//! * [`Actor`]/[`Context`] — host behaviour: bind ports, join groups,
//!   send datagrams, open TCP connections, set timers;
//! * [`SimNet`] — the event loop;
//! * [`LoopbackUdp`] — real-socket smoke-test engine.
//!
//! ## Example
//!
//! ```
//! use starlink_net::*;
//!
//! struct Pinger;
//! impl Actor for Pinger {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.bind_udp(427).unwrap();
//!         ctx.join_group(SimAddr::new("239.255.255.253", 427));
//!     }
//!     fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
//!         ctx.trace(format!("got {} bytes", datagram.payload.len()));
//!     }
//! }
//!
//! let mut sim = SimNet::new(1);
//! sim.add_actor("10.0.0.1", Pinger);
//! sim.run_until_idle();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod error;
mod export;
mod latency;
mod reactor;
mod realnet;
mod sim;
mod time;

pub use addr::SimAddr;
pub use bytes::Bytes;
pub use epoll::Waker as ReadinessWaker;
pub use error::{NetError, Result};
pub use export::{MetricsServer, RenderFn};
pub use latency::LatencyModel;
pub use reactor::{readiness_supported, GatewayReactor, ReactorStats};
pub use realnet::{
    wait_deadline, BufferPool, GatewayLoop, LoopbackUdp, PumpStats, UdpBridge, MAX_DATAGRAM,
};
pub use sim::{
    Actor, ConnId, Context, Datagram, DelayedActor, ExternalTcpEvent, Impairments, PassSchedule,
    SimNet, TcpEvent, TimerId, TraceEntry,
};
pub use time::{SimDuration, SimTime};
