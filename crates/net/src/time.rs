//! Virtual time for the discrete-event simulator.
//!
//! All Fig. 12 measurements are reported in virtual milliseconds, so the
//! representation is exact integer microseconds — no floating-point drift
//! across the 100-run sweeps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Microseconds since the epoch.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch as a float (for reporting).
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Microseconds in this duration.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncating).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds as a float (for reporting).
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiplies the duration by an integer factor.
    pub fn saturating_mul(&self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_micros(1_500).as_millis(), 1);
        assert!((SimTime::from_micros(1_500).as_millis_f64() - 1.5).abs() < f64::EPSILON);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_millis(), 10);
        assert_eq!(t.since(SimTime::from_millis(4)).as_millis(), 6);
        // Saturation instead of underflow.
        assert_eq!(SimTime::from_millis(1).since(SimTime::from_millis(5)), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(6022).to_string(), "6022.000ms");
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(SimDuration::from_millis(10).saturating_mul(3).as_millis(), 30);
    }
}
