//! Error type for the network engines.

use std::fmt;

/// Error raised by the simulated (or loopback) network engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The host name is not registered in the simulation.
    UnknownHost(String),
    /// A UDP port was already bound on the host.
    PortInUse {
        /// Host name.
        host: String,
        /// Port number.
        port: u16,
    },
    /// A TCP connection id did not resolve (never opened or already
    /// closed).
    NotConnected(u64),
    /// No listener accepts connections at the destination.
    ConnectionRefused {
        /// Destination host.
        host: String,
        /// Destination port.
        port: u16,
    },
    /// An address string could not be parsed.
    InvalidAddress(String),
    /// An I/O error from the loopback engine.
    Io(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownHost(host) => write!(f, "unknown host {host:?}"),
            NetError::PortInUse { host, port } => {
                write!(f, "port {port} already bound on {host}")
            }
            NetError::NotConnected(id) => write!(f, "connection #{id} is not open"),
            NetError::ConnectionRefused { host, port } => {
                write!(f, "connection refused by {host}:{port}")
            }
            NetError::InvalidAddress(addr) => write!(f, "invalid address {addr:?}"),
            NetError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Convenient result alias for network operations.
pub type Result<T> = std::result::Result<T, NetError>;
