//! The deterministic discrete-event network simulator.
//!
//! Hosts are [`Actor`]s reacting to datagrams, TCP events and timers; the
//! simulator owns a single virtual clock and a totally ordered event
//! queue, so a seeded run replays bit-identically. This is the substrate
//! on which the legacy protocol endpoints and the Starlink bridge of the
//! evaluation (§V/§VI) execute.

use crate::addr::SimAddr;
use crate::error::{NetError, Result};
use crate::latency::LatencyModel;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

/// A seeded, fully deterministic network-impairment profile, applied at
/// delivery time on every datagram *link traversal*: in-simulation
/// deliveries, datagrams injected from outside
/// ([`SimNet::inject_datagram`]) and datagrams queued for external
/// endpoints (egress). Any run is exactly reproducible from
/// `(seed, profile)`: impairment decisions are drawn from a dedicated
/// RNG stream (seeded alongside the simulation's), and an inert profile
/// makes **zero** draws and costs one branch per delivery, replaying
/// bit-identically to a run that never heard of impairments. (Active
/// profiles still shift the *latency* stream indirectly — a dropped
/// datagram samples no delivery latency and a duplicate samples one per
/// copy — so runs are comparable per `(seed, profile)` pair, not across
/// profiles.)
///
/// Semantics per traversal, in decision order:
///
/// 1. an active partition between the two hosts drops the datagram;
/// 2. with `partition_permille`, the host pair *enters* a partition for
///    `partition_window` (healing automatically) and the datagram is its
///    first casualty;
/// 3. with `drop_permille`, the datagram is dropped;
/// 4. with `duplicate_permille`, one extra copy is delivered;
/// 5. every copy gains uniform jitter in `[0, jitter]`, plus — with
///    `reorder_permille` — an extra uniform deferral in
///    `[1µs, reorder_window]` (bounded reordering: the event queue is
///    time-ordered, so a deferred copy overtakes nothing later than the
///    window);
/// 6. with `corrupt_permille`, one payload byte of a copy is XOR-flipped.
///
/// Deferrals are meaningless once bytes leave the virtual network, so
/// egress traversals apply loss/partition/duplication/corruption but not
/// jitter/reordering. TCP models a reliable transport: established
/// connections are untouched (real TCP retransmits through loss), but
/// opening a connection across an active partition fails with
/// [`NetError::ConnectionRefused`]. Every impairment event is recorded
/// in the [`SimNet::trace`], so two runs of the same `(seed, profile)`
/// produce byte-identical traces.
///
/// ```
/// use starlink_net::{Impairments, SimDuration, SimNet};
///
/// // 10% loss + duplication with bounded reordering; everything else off.
/// let profile = Impairments {
///     drop_permille: 100,
///     duplicate_permille: 200,
///     reorder_permille: 300,
///     reorder_window: SimDuration::from_millis(2),
///     ..Impairments::none()
/// };
/// assert!(!profile.is_inert());
///
/// let mut sim = SimNet::new(7);
/// sim.set_impairments(profile);           // every link traversal now rolls the dice
/// assert!(Impairments::none().is_inert()); // the control profile draws nothing
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Impairments {
    /// Per-traversal drop probability, in permille (0–1000).
    pub drop_permille: u16,
    /// Probability that a delivered datagram is duplicated (one extra
    /// copy), in permille.
    pub duplicate_permille: u16,
    /// Probability that a copy is deferred for bounded reordering, in
    /// permille.
    pub reorder_permille: u16,
    /// Upper bound of the reordering deferral.
    pub reorder_window: SimDuration,
    /// Uniform extra delay in `[0, jitter]` added to every copy.
    pub jitter: SimDuration,
    /// Probability that one payload byte of a copy is corrupted, in
    /// permille.
    pub corrupt_permille: u16,
    /// Probability that a traversal spontaneously partitions its host
    /// pair, in permille.
    pub partition_permille: u16,
    /// How long a spontaneous partition lasts before healing.
    pub partition_window: SimDuration,
}

impl Impairments {
    /// The inert profile: nothing is impaired and the chaos RNG is never
    /// touched, so a simulation with this profile replays bit-identically
    /// to one that never heard of impairments.
    pub fn none() -> Self {
        Impairments {
            drop_permille: 0,
            duplicate_permille: 0,
            reorder_permille: 0,
            reorder_window: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            corrupt_permille: 0,
            partition_permille: 0,
            partition_window: SimDuration::ZERO,
        }
    }

    /// Whether every knob is zero (the fast-path check).
    pub fn is_inert(&self) -> bool {
        self.drop_permille == 0
            && self.duplicate_permille == 0
            && self.reorder_permille == 0
            && self.jitter == SimDuration::ZERO
            && self.corrupt_permille == 0
            && self.partition_permille == 0
    }
}

impl Default for Impairments {
    fn default() -> Self {
        Impairments::none()
    }
}

/// What chaos decided for one link traversal of one datagram.
enum Fate {
    /// Untouched: one pristine copy on the modelled schedule (also the
    /// fast path when impairments are inert and no partition exists).
    Pristine,
    /// The datagram never arrives.
    Dropped,
    /// Deliver these copies: each with an extra deferral beyond the
    /// modelled latency, and optionally one corrupted byte.
    Copies(Vec<(SimDuration, bool)>),
}

/// A UDP datagram delivered to an actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sender endpoint.
    pub from: SimAddr,
    /// Destination endpoint as addressed (multicast group or unicast).
    pub to: SimAddr,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Identifier of a simulated TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Identifier of a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

/// TCP lifecycle events delivered to actors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// An outbound connection completed (initiator side).
    Connected {
        /// The connection.
        conn: ConnId,
        /// The accepting endpoint.
        peer: SimAddr,
    },
    /// An inbound connection arrived (listener side).
    Accepted {
        /// The connection.
        conn: ConnId,
        /// The initiating endpoint.
        peer: SimAddr,
        /// The local listening port that accepted.
        local_port: u16,
    },
    /// Stream data arrived.
    Data {
        /// The connection.
        conn: ConnId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// The peer closed the connection.
    Closed {
        /// The connection.
        conn: ConnId,
    },
}

/// A simulated host's behaviour. All methods default to no-ops so actors
/// implement only what they use.
///
/// Actors are `Send` so a whole simulation can be moved onto a worker
/// thread — the sharded bridge runtime runs one single-threaded `SimNet`
/// per shard, each on its own core. Nothing here is `Sync`: within one
/// simulation, actors still execute strictly one event at a time.
pub trait Actor: Send {
    /// Called once when the simulation starts (or when the actor is added
    /// to a running simulation).
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// A datagram arrived on a bound port or joined group.
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _datagram: Datagram) {}

    /// A TCP event arrived.
    fn on_tcp(&mut self, _ctx: &mut Context<'_>, _event: TcpEvent) {}

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _tag: u64) {}
}

/// Wraps an actor so its [`Actor::on_start`] runs after a delay — the
/// building block for staggered/interleaved multi-client scenarios.
///
/// The wrapper reserves timer tag `u64::MAX` for the deferred start and
/// forwards every other event to the inner actor untouched.
#[derive(Debug)]
pub struct DelayedActor<A> {
    delay: crate::time::SimDuration,
    inner: A,
    started: bool,
}

impl<A: Actor> DelayedActor<A> {
    /// Wraps `inner` so it starts `delay` after the simulation adds it.
    pub fn new(delay: crate::time::SimDuration, inner: A) -> Self {
        DelayedActor { delay, inner, started: false }
    }
}

impl<A: Actor + ?Sized> Actor for Box<A> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        (**self).on_start(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        (**self).on_datagram(ctx, datagram);
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        (**self).on_tcp(ctx, event);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        (**self).on_timer(ctx, tag);
    }
}

impl<A: Actor> Actor for DelayedActor<A> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.delay, u64::MAX);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        self.inner.on_datagram(ctx, datagram);
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        self.inner.on_tcp(ctx, event);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag == u64::MAX && !self.started {
            self.started = true;
            self.inner.on_start(ctx);
        } else {
            self.inner.on_timer(ctx, tag);
        }
    }
}

#[derive(Debug)]
struct Connection {
    initiator: SimAddr,
    target: SimAddr,
    open: bool,
}

#[derive(Debug)]
enum EventKind {
    Start,
    Datagram(Datagram),
    TcpAccepted { conn: u64, peer: SimAddr, local_port: u16 },
    TcpConnected { conn: u64, peer: SimAddr },
    TcpData { conn: u64, payload: Bytes },
    TcpClosed { conn: u64 },
    Timer { id: u64, tag: u64 },
}

#[derive(Debug)]
struct Event {
    at: SimTime,
    seq: u64,
    host: Arc<str>,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A TCP event leaving the simulation towards an external peer (the
/// mirror image of [`TcpEvent`] for connections whose far end is a real
/// socket or a gateway driver rather than a simulated host). Drained by
/// [`SimNet::drain_tcp_egress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExternalTcpEvent {
    /// Stream data for the external end of `conn`.
    Data {
        /// The connection.
        conn: ConnId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// A simulated actor closed the connection.
    Closed {
        /// The connection.
        conn: ConnId,
    },
}

/// One line of the delivery trace (debugging/verification aid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the entry was recorded.
    pub at: SimTime,
    /// What happened.
    pub description: String,
}

#[derive(Debug)]
struct World {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    rng: StdRng,
    latency: LatencyModel,
    udp_bindings: BTreeSet<(Arc<str>, u16)>,
    groups: BTreeMap<SimAddr, BTreeSet<Arc<str>>>,
    tcp_listeners: BTreeSet<(Arc<str>, u16)>,
    connections: BTreeMap<u64, Connection>,
    next_conn: u64,
    next_ephemeral: u16,
    next_timer: u64,
    cancelled_timers: BTreeSet<u64>,
    trace: Vec<TraceEntry>,
    hosts: BTreeSet<Arc<str>>,
    /// Hosts that live *outside* the simulation (real sockets behind a
    /// gateway loop). Unicast datagrams addressed to them are queued in
    /// `egress` instead of being delivered or dropped.
    external_hosts: BTreeSet<Arc<str>>,
    /// Endpoints outside the simulation that joined a multicast group;
    /// group sends fan out to them through `egress` too.
    external_group_members: BTreeMap<SimAddr, BTreeSet<SimAddr>>,
    /// Datagrams leaving the simulation, drained by the gateway loop.
    egress: Vec<Datagram>,
    /// TCP events leaving the simulation (connections whose peer is an
    /// external endpoint), drained by the gateway loop.
    tcp_egress: Vec<ExternalTcpEvent>,
    /// The impairment profile applied to every datagram link traversal.
    impairments: Impairments,
    /// Dedicated RNG stream for impairment decisions, so enabling chaos
    /// never perturbs the latency stream of the same seed.
    chaos_rng: StdRng,
    /// Active partitions: ordered host pair → heal time (`None` = until
    /// explicitly healed). Spontaneous (profile-driven) and explicit
    /// ([`SimNet::partition`]) entries share this table.
    partitions: BTreeMap<(Arc<str>, Arc<str>), Option<SimTime>>,
}

impl World {
    fn schedule(&mut self, at: SimTime, host: Arc<str>, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { at, seq, host, kind }));
    }

    fn latency(&mut self) -> SimDuration {
        self.latency.sample(&mut self.rng)
    }

    fn trace(&mut self, description: String) {
        let at = self.now;
        self.trace.push(TraceEntry { at, description });
    }

    /// The canonical (ordered) key of a host pair in the partition table.
    fn pair_key(a: &Arc<str>, b: &Arc<str>) -> (Arc<str>, Arc<str>) {
        if a.as_ref() <= b.as_ref() {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        }
    }

    /// Whether an active partition separates `a` and `b`; healed entries
    /// are reaped on the way through.
    fn partition_active(&mut self, a: &Arc<str>, b: &Arc<str>) -> bool {
        if self.partitions.is_empty() {
            return false;
        }
        let key = World::pair_key(a, b);
        match self.partitions.get(&key) {
            Some(None) => true,
            Some(Some(heal_at)) => {
                if self.now < *heal_at {
                    true
                } else {
                    self.partitions.remove(&key);
                    self.trace(format!("chaos partition healed {} <-> {}", key.0, key.1));
                    false
                }
            }
            None => false,
        }
    }

    /// Rolls a permille probability on the chaos stream. Zero knobs make
    /// no draw, keeping inert profiles stream-silent.
    fn chaos_hits(&mut self, permille: u16) -> bool {
        permille > 0 && self.chaos_rng.gen_range(0u64..1000) < u64::from(permille)
    }

    /// Drops every partition whose heal time has passed (tracing each
    /// heal, like the per-traversal reap does), keeping the table
    /// bounded by genuinely active partitions — and restoring the
    /// pristine fast path (which requires an *empty* table) once
    /// everything has healed. Called when a new spontaneous partition is
    /// inserted, when the profile changes, and from the inert-profile
    /// delivery path while the table is non-empty; the per-traversal
    /// path reaps only the pair it touches.
    fn sweep_partitions(&mut self) {
        let now = self.now;
        let healed: Vec<(Arc<str>, Arc<str>)> = self
            .partitions
            .iter()
            .filter(|(_, heal)| heal.is_some_and(|at| now >= at))
            .map(|(key, _)| key.clone())
            .collect();
        for key in healed {
            self.partitions.remove(&key);
            self.trace(format!("chaos partition healed {} <-> {}", key.0, key.1));
        }
    }

    /// The trace rendering of one link traversal's receiving end: the
    /// addressed endpoint, plus the physical member host when they
    /// differ (multicast fan-out impairs each member's link separately).
    fn link_target(to: &SimAddr, dest_host: &Arc<str>) -> String {
        if to.host.as_ref() == dest_host.as_ref() {
            to.to_string()
        } else {
            format!("{to} (member {dest_host})")
        }
    }

    /// Decides the fate of one link traversal of a datagram between
    /// `from.host` and the *physical* receiving host `dest_host` — for a
    /// multicast fan-out that is the group member, not the group
    /// address, so partitions cut each member's link individually (see
    /// [`Impairments`] for the decision order). `deferrable` is false
    /// for egress traversals, where extra delay has no meaning.
    fn impair(
        &mut self,
        from: &SimAddr,
        to: &SimAddr,
        dest_host: &Arc<str>,
        deferrable: bool,
    ) -> Fate {
        if self.impairments.is_inert() {
            if self.partitions.is_empty() {
                return Fate::Pristine;
            }
            // Inert profile but partitions linger (explicit ones, or
            // spontaneous ones that had not yet healed when the profile
            // was reset): reap the healed so the zero-cost path comes
            // back as soon as the table genuinely empties.
            self.sweep_partitions();
            if self.partitions.is_empty() {
                return Fate::Pristine;
            }
        }
        if self.partition_active(&from.host, dest_host) {
            let target = World::link_target(to, dest_host);
            self.trace(format!("chaos partition drop {from} -> {target}"));
            return Fate::Dropped;
        }
        if self.chaos_hits(self.impairments.partition_permille) {
            // Each insertion pays for reaping the already-healed entries,
            // so the table never outgrows the set of partitions spawned
            // within one window.
            self.sweep_partitions();
            let heal_at = self.now + self.impairments.partition_window;
            let key = World::pair_key(&from.host, dest_host);
            self.trace(format!("chaos partition {} <-> {} until {heal_at}", key.0, key.1));
            self.partitions.insert(key, Some(heal_at));
            let target = World::link_target(to, dest_host);
            self.trace(format!("chaos partition drop {from} -> {target}"));
            return Fate::Dropped;
        }
        if self.chaos_hits(self.impairments.drop_permille) {
            let target = World::link_target(to, dest_host);
            self.trace(format!("chaos drop {from} -> {target}"));
            return Fate::Dropped;
        }
        let copies = if self.chaos_hits(self.impairments.duplicate_permille) {
            let target = World::link_target(to, dest_host);
            self.trace(format!("chaos dup {from} -> {target}"));
            2
        } else {
            1
        };
        let mut plan = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut extra = SimDuration::ZERO;
            if deferrable {
                if self.impairments.jitter > SimDuration::ZERO {
                    extra = extra
                        + SimDuration::from_micros(
                            self.chaos_rng.gen_range(0..=self.impairments.jitter.as_micros()),
                        );
                }
                if self.chaos_hits(self.impairments.reorder_permille)
                    && self.impairments.reorder_window > SimDuration::ZERO
                {
                    extra = extra
                        + SimDuration::from_micros(
                            self.chaos_rng
                                .gen_range(1..=self.impairments.reorder_window.as_micros()),
                        );
                }
                if extra > SimDuration::ZERO {
                    let target = World::link_target(to, dest_host);
                    self.trace(format!("chaos delay {from} -> {target} +{extra}"));
                }
            }
            let corrupt = self.chaos_hits(self.impairments.corrupt_permille);
            plan.push((extra, corrupt));
        }
        Fate::Copies(plan)
    }

    /// Applies a corrupt verdict: XOR-flips one chaos-chosen payload
    /// byte (no-op — traced — on empty payloads).
    fn corrupt_payload(&mut self, from: &SimAddr, to: &SimAddr, payload: &Bytes) -> Bytes {
        if payload.is_empty() {
            self.trace(format!("chaos corrupt {from} -> {to} (empty payload, untouched)"));
            return payload.clone();
        }
        let index = self.chaos_rng.gen_range(0..payload.len() as u64) as usize;
        let flip = self.chaos_rng.gen_range(1u64..=255) as u8;
        self.trace(format!("chaos corrupt {from} -> {to} [{index}] ^{flip:#04x}"));
        let mut bytes = payload.to_vec();
        bytes[index] ^= flip;
        Bytes::from(bytes)
    }

    /// Materialises one chaos copy of `datagram`, corrupting the payload
    /// when the copy's plan says so.
    fn chaos_copy(&mut self, datagram: &Datagram, corrupt: bool) -> Datagram {
        let payload = if corrupt {
            self.corrupt_payload(&datagram.from, &datagram.to, &datagram.payload)
        } else {
            datagram.payload.clone()
        };
        Datagram { from: datagram.from.clone(), to: datagram.to.clone(), payload }
    }

    /// Schedules one impaired in-simulation delivery onto `to_host` (the
    /// physical receiver — the group member for multicast fan-out): the
    /// base modelled latency is sampled per copy (as an unimpaired send
    /// would), plus the copy's chaos deferral.
    fn deliver_datagram(&mut self, to_host: Arc<str>, datagram: Datagram) {
        match self.impair(&datagram.from, &datagram.to, &to_host, true) {
            Fate::Pristine => {
                let latency = self.latency();
                let at = self.now + latency;
                self.schedule(at, to_host, EventKind::Datagram(datagram));
            }
            Fate::Dropped => {}
            Fate::Copies(plan) => {
                for (extra, corrupt) in plan {
                    let copy = self.chaos_copy(&datagram, corrupt);
                    let latency = self.latency();
                    let at = self.now + latency + extra;
                    self.schedule(at, to_host.clone(), EventKind::Datagram(copy));
                }
            }
        }
    }

    /// Queues one impaired egress traversal (loss/partition/duplication/
    /// corruption only — deferral has no meaning once bytes leave the
    /// virtual network).
    fn queue_egress(&mut self, datagram: Datagram) {
        let dest_host = datagram.to.host.clone();
        match self.impair(&datagram.from, &datagram.to, &dest_host, false) {
            Fate::Pristine => self.egress.push(datagram),
            Fate::Dropped => {}
            Fate::Copies(plan) => {
                for (_, corrupt) in plan {
                    let copy = self.chaos_copy(&datagram, corrupt);
                    self.egress.push(copy);
                }
            }
        }
    }
}

/// The capabilities an actor has while handling an event.
#[derive(Debug)]
pub struct Context<'w> {
    world: &'w mut World,
    host: &'w Arc<str>,
}

impl Context<'_> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The host this actor runs on.
    pub fn host(&self) -> &str {
        self.host
    }

    /// Binds a UDP port on this host; datagrams addressed to it will be
    /// delivered to the actor.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortInUse`] when already bound.
    pub fn bind_udp(&mut self, port: u16) -> Result<()> {
        let key = (self.host.clone(), port);
        if !self.world.udp_bindings.insert(key) {
            return Err(NetError::PortInUse { host: self.host.as_ref().to_owned(), port });
        }
        Ok(())
    }

    /// Joins a multicast group endpoint (group address + port); all
    /// datagrams sent to the group are delivered to members.
    pub fn join_group(&mut self, group: SimAddr) {
        self.world.groups.entry(group).or_default().insert(self.host.clone());
    }

    /// Leaves a multicast group endpoint.
    pub fn leave_group(&mut self, group: &SimAddr) {
        if let Some(members) = self.world.groups.get_mut(group) {
            members.remove(self.host.as_ref());
        }
    }

    /// Sends a UDP datagram from `from_port` on this host. Multicast
    /// destinations fan out to every group member except the sender;
    /// unicast destinations are delivered when the target host has bound
    /// the port (silently dropped — and traced — otherwise, like real
    /// UDP).
    pub fn udp_send(&mut self, from_port: u16, to: SimAddr, payload: impl Into<Bytes>) {
        let payload: Bytes = payload.into();
        let from = SimAddr::new(self.host.clone(), from_port);
        if to.is_multicast() {
            let members: Vec<Arc<str>> = self
                .world
                .groups
                .get(&to)
                .map(|m| m.iter().filter(|h| h.as_ref() != self.host.as_ref()).cloned().collect())
                .unwrap_or_default();
            self.world.trace(format!(
                "udp multicast {from} -> {to} ({} bytes, {} members)",
                payload.len(),
                members.len()
            ));
            for member in members {
                self.world.deliver_datagram(
                    member,
                    Datagram { from: from.clone(), to: to.clone(), payload: payload.clone() },
                );
            }
            let external: Vec<SimAddr> = self
                .world
                .external_group_members
                .get(&to)
                .map(|m| m.iter().cloned().collect())
                .unwrap_or_default();
            for member in external {
                self.world.trace(format!("udp egress {from} -> {member} (group {to})"));
                self.world.queue_egress(Datagram {
                    from: from.clone(),
                    to: member,
                    payload: payload.clone(),
                });
            }
        } else if self.world.external_hosts.contains(&to.host) {
            self.world.trace(format!("udp egress {from} -> {to} ({} bytes)", payload.len()));
            self.world.queue_egress(Datagram { from, to, payload });
        } else {
            let bound = self.world.udp_bindings.contains(&(to.host.clone(), to.port));
            if bound {
                self.world.trace(format!("udp {from} -> {to} ({} bytes)", payload.len()));
                let to_host = to.host.clone();
                self.world.deliver_datagram(to_host, Datagram { from, to, payload });
            } else {
                self.world.trace(format!("udp {from} -> {to} dropped (no binding)"));
            }
        }
    }

    /// Starts listening for TCP connections on `port`.
    pub fn listen_tcp(&mut self, port: u16) {
        self.world.tcp_listeners.insert((self.host.clone(), port));
    }

    /// Opens a TCP connection to `to`. The listener receives
    /// [`TcpEvent::Accepted`] after one latency, the initiator
    /// [`TcpEvent::Connected`] after two (SYN → SYN/ACK).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] when nothing listens at
    /// the destination.
    pub fn tcp_connect(&mut self, to: SimAddr) -> Result<ConnId> {
        if !self.world.tcp_listeners.contains(&(to.host.clone(), to.port)) {
            return Err(NetError::ConnectionRefused {
                host: to.host.as_ref().to_owned(),
                port: to.port,
            });
        }
        let local = self.host.clone();
        if self.world.partition_active(&local, &to.host) {
            self.world.trace(format!("chaos partition refused tcp {local} -> {to}"));
            return Err(NetError::ConnectionRefused {
                host: to.host.as_ref().to_owned(),
                port: to.port,
            });
        }
        let conn = self.world.next_conn;
        self.world.next_conn += 1;
        let local_port = self.world.next_ephemeral;
        self.world.next_ephemeral = self.world.next_ephemeral.wrapping_add(1).max(49152);
        let initiator = SimAddr::new(self.host.clone(), local_port);
        self.world.connections.insert(
            conn,
            Connection { initiator: initiator.clone(), target: to.clone(), open: true },
        );
        self.world.trace(format!("tcp connect {initiator} -> {to} (#{conn})"));
        let one_way = self.world.latency();
        let accepted_at = self.world.now + one_way;
        self.world.schedule(
            accepted_at,
            to.host.clone(),
            EventKind::TcpAccepted { conn, peer: initiator, local_port: to.port },
        );
        let back = self.world.latency();
        let connected_at = accepted_at + back;
        self.world.schedule(
            connected_at,
            self.host.clone(),
            EventKind::TcpConnected { conn, peer: to },
        );
        Ok(ConnId(conn))
    }

    /// Sends stream data on an open connection; delivered to the peer
    /// after one latency.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotConnected`] for unknown/closed connections.
    pub fn tcp_send(&mut self, conn: ConnId, payload: impl Into<Bytes>) -> Result<()> {
        let payload: Bytes = payload.into();
        let (peer_host, description) = {
            let connection = self
                .world
                .connections
                .get(&conn.0)
                .filter(|c| c.open)
                .ok_or(NetError::NotConnected(conn.0))?;
            let peer = if connection.initiator.host.as_ref() == self.host.as_ref() {
                connection.target.host.clone()
            } else {
                connection.initiator.host.clone()
            };
            (
                peer.clone(),
                format!("tcp data #{} {} -> {peer} ({} bytes)", conn.0, self.host, payload.len()),
            )
        };
        self.world.trace(description);
        if self.world.external_hosts.contains(&peer_host) {
            // The far end is a real endpoint behind a gateway loop: the
            // bytes leave the simulation instead of being scheduled (the
            // real network pays its own latency).
            self.world.tcp_egress.push(ExternalTcpEvent::Data { conn, payload });
            return Ok(());
        }
        let latency = self.world.latency();
        let at = self.world.now + latency;
        self.world.schedule(at, peer_host, EventKind::TcpData { conn: conn.0, payload });
        Ok(())
    }

    /// Closes a connection; the peer receives [`TcpEvent::Closed`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotConnected`] for unknown/closed connections.
    pub fn tcp_close(&mut self, conn: ConnId) -> Result<()> {
        let peer_host = {
            let connection = self
                .world
                .connections
                .get_mut(&conn.0)
                .filter(|c| c.open)
                .ok_or(NetError::NotConnected(conn.0))?;
            connection.open = false;
            if connection.initiator.host.as_ref() == self.host.as_ref() {
                connection.target.host.clone()
            } else {
                connection.initiator.host.clone()
            }
        };
        self.world.trace(format!("tcp close #{} by {}", conn.0, self.host));
        if self.world.external_hosts.contains(&peer_host) {
            self.world.tcp_egress.push(ExternalTcpEvent::Closed { conn });
            return Ok(());
        }
        let latency = self.world.latency();
        let at = self.world.now + latency;
        self.world.schedule(at, peer_host, EventKind::TcpClosed { conn: conn.0 });
        Ok(())
    }

    /// Schedules a timer for this actor after `delay`; `tag` is returned
    /// to [`Actor::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = self.world.next_timer;
        self.world.next_timer += 1;
        let at = self.world.now + delay;
        self.world.schedule(at, self.host.clone(), EventKind::Timer { id, tag });
        TimerId(id)
    }

    /// Cancels a pending timer (firing becomes a no-op).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.world.cancelled_timers.insert(timer.0);
    }

    /// Uniform random integer in `[lo, hi]` from the simulation's seeded
    /// stream (for protocol-level jitter like SSDP's MX backoff).
    pub fn rand_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.world.rng.gen_range(lo..=hi.max(lo))
    }

    /// Appends a line to the simulation trace.
    pub fn trace(&mut self, description: impl Into<String>) {
        self.world.trace(description.into());
    }
}

/// The simulation: hosts, clock and event queue.
///
/// ```
/// use starlink_net::{SimNet, Actor, Context, Datagram, SimAddr};
///
/// struct Echo;
/// impl Actor for Echo {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         ctx.bind_udp(9).unwrap();
///     }
///     fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
///         ctx.udp_send(9, datagram.from, datagram.payload);
///     }
/// }
///
/// struct Probe;
/// impl Actor for Probe {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         ctx.bind_udp(1000).unwrap();
///         ctx.udp_send(1000, SimAddr::new("10.0.0.2", 9), &b"ping"[..]);
///     }
/// }
///
/// // Start order matters: the echo server must bind its port before the
/// // probe's datagram is sent (actors start in registration order).
/// let mut sim = SimNet::new(42);
/// sim.add_actor("10.0.0.2", Echo);
/// sim.add_actor("10.0.0.1", Probe);
/// sim.run_until_idle();
/// assert!(sim.now().as_micros() > 0);
/// ```
#[derive(Debug)]
pub struct SimNet {
    world: World,
    actors: BTreeMap<Arc<str>, Option<Box<dyn Actor>>>,
}

impl std::fmt::Debug for dyn Actor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Actor")
    }
}

impl SimNet {
    /// Creates a simulation seeded with `seed` (identical seeds replay
    /// identical runs).
    pub fn new(seed: u64) -> Self {
        SimNet {
            world: World {
                now: SimTime::ZERO,
                seq: 0,
                events: BinaryHeap::new(),
                rng: StdRng::seed_from_u64(seed),
                latency: LatencyModel::default(),
                udp_bindings: BTreeSet::new(),
                groups: BTreeMap::new(),
                tcp_listeners: BTreeSet::new(),
                connections: BTreeMap::new(),
                next_conn: 1,
                next_ephemeral: 49152,
                next_timer: 1,
                cancelled_timers: BTreeSet::new(),
                trace: Vec::new(),
                hosts: BTreeSet::new(),
                external_hosts: BTreeSet::new(),
                external_group_members: BTreeMap::new(),
                egress: Vec::new(),
                tcp_egress: Vec::new(),
                impairments: Impairments::none(),
                // A distinct stream from the latency RNG: the same seed
                // drives both, but chaos draws never shift latency
                // samples (and vice versa).
                chaos_rng: StdRng::seed_from_u64(seed ^ 0xC4A0_5EED_0000_0001),
                partitions: BTreeMap::new(),
            },
            actors: BTreeMap::new(),
        }
    }

    /// Replaces the impairment profile (default: [`Impairments::none`]).
    /// Takes effect for every subsequent link traversal. Healed
    /// partitions are swept, so resetting to the inert profile restores
    /// the zero-cost delivery path once no partition remains active.
    pub fn set_impairments(&mut self, impairments: Impairments) {
        self.world.sweep_partitions();
        self.world.impairments = impairments;
    }

    /// The active impairment profile.
    pub fn impairments(&self) -> &Impairments {
        &self.world.impairments
    }

    /// Partitions hosts `a` and `b` from each other until
    /// [`SimNet::heal_partition`]: datagrams between them are dropped
    /// (and traced) and new TCP connections are refused. Established TCP
    /// connections are untouched (TCP models a reliable transport).
    pub fn partition(&mut self, a: impl Into<Arc<str>>, b: impl Into<Arc<str>>) {
        let key = World::pair_key(&a.into(), &b.into());
        self.world.trace(format!("chaos partition {} <-> {} until healed", key.0, key.1));
        self.world.partitions.insert(key, None);
    }

    /// Partitions hosts `a` and `b` for `window`, healing automatically.
    pub fn partition_for(
        &mut self,
        a: impl Into<Arc<str>>,
        b: impl Into<Arc<str>>,
        window: SimDuration,
    ) {
        let heal_at = self.world.now + window;
        let key = World::pair_key(&a.into(), &b.into());
        self.world.trace(format!("chaos partition {} <-> {} until {heal_at}", key.0, key.1));
        self.world.partitions.insert(key, Some(heal_at));
    }

    /// Heals the partition between `a` and `b`, if one is active.
    pub fn heal_partition(&mut self, a: impl Into<Arc<str>>, b: impl Into<Arc<str>>) {
        let key = World::pair_key(&a.into(), &b.into());
        if self.world.partitions.remove(&key).is_some() {
            self.world.trace(format!("chaos partition healed {} <-> {}", key.0, key.1));
        }
    }

    /// The whole trace as one newline-terminated text block
    /// (`<micros> <description>` per line) — the byte-comparable form the
    /// chaos determinism tests and failure dumps use.
    pub fn trace_text(&self) -> String {
        let mut out = String::new();
        for entry in &self.world.trace {
            out.push_str(&format!("{} {}\n", entry.at.as_micros(), entry.description));
        }
        out
    }

    /// Declares `host` as living outside the simulation: unicast
    /// datagrams addressed to it are queued for [`SimNet::drain_egress`]
    /// instead of being dropped. A gateway loop (e.g. the realnet
    /// [`crate::UdpBridge`]) forwards them over real sockets.
    pub fn register_external_host(&mut self, host: impl Into<Arc<str>>) {
        self.world.external_hosts.insert(host.into());
    }

    /// Registers an endpoint outside the simulation as a member of a
    /// multicast `group`; group sends fan out to it through the egress
    /// queue.
    pub fn join_group_external(&mut self, group: SimAddr, member: SimAddr) {
        self.world.external_group_members.entry(group).or_default().insert(member);
    }

    /// Injects a datagram arriving from outside the simulation; it is
    /// delivered to `datagram.to.host` at the current virtual time (the
    /// real network already paid its latency). The sender's host is
    /// implicitly registered as external so replies can leave again.
    pub fn inject_datagram(&mut self, datagram: Datagram) {
        self.world.external_hosts.insert(datagram.from.host.clone());
        let host = datagram.to.host.clone();
        match self.world.impair(&datagram.from, &datagram.to, &host, true) {
            Fate::Pristine => {
                let now = self.world.now;
                self.world.schedule(now, host, EventKind::Datagram(datagram));
            }
            Fate::Dropped => {}
            Fate::Copies(plan) => {
                for (extra, corrupt) in plan {
                    let copy = self.world.chaos_copy(&datagram, corrupt);
                    let at = self.world.now + extra;
                    self.world.schedule(at, host.clone(), EventKind::Datagram(copy));
                }
            }
        }
    }

    /// Drains the datagrams queued for external endpoints since the last
    /// call.
    pub fn drain_egress(&mut self) -> Vec<Datagram> {
        std::mem::take(&mut self.world.egress)
    }

    /// Drains queued egress datagrams into `out` (cleared first), so a
    /// gateway loop can reuse one buffer across pump iterations instead
    /// of allocating a fresh `Vec` per call.
    pub fn drain_egress_into(&mut self, out: &mut Vec<Datagram>) {
        out.clear();
        out.append(&mut self.world.egress);
    }

    /// Opens a TCP connection *into* the simulation from an external
    /// endpoint `from` (implicitly registered as an external host): the
    /// listener at `to` receives [`TcpEvent::Accepted`] at the current
    /// virtual time, and the returned [`ConnId`] can immediately carry
    /// [`SimNet::inject_tcp_data`] — injected events keep their order.
    /// Data the simulated side sends on the connection leaves through
    /// [`SimNet::drain_tcp_egress`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] when nothing listens at
    /// `to`.
    pub fn external_tcp_connect(&mut self, from: SimAddr, to: SimAddr) -> Result<ConnId> {
        if !self.world.tcp_listeners.contains(&(to.host.clone(), to.port)) {
            return Err(NetError::ConnectionRefused {
                host: to.host.as_ref().to_owned(),
                port: to.port,
            });
        }
        if self.world.partition_active(&from.host, &to.host) {
            self.world.trace(format!("chaos partition refused tcp {from} -> {to}"));
            return Err(NetError::ConnectionRefused {
                host: to.host.as_ref().to_owned(),
                port: to.port,
            });
        }
        self.world.external_hosts.insert(from.host.clone());
        let conn = self.world.next_conn;
        self.world.next_conn += 1;
        self.world
            .connections
            .insert(conn, Connection { initiator: from.clone(), target: to.clone(), open: true });
        self.world.trace(format!("tcp connect (external) {from} -> {to} (#{conn})"));
        let now = self.world.now;
        self.world.schedule(
            now,
            to.host.clone(),
            EventKind::TcpAccepted { conn, peer: from, local_port: to.port },
        );
        Ok(ConnId(conn))
    }

    /// Injects stream data arriving from the external end of `conn`,
    /// delivered to the simulated side at the current virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotConnected`] for unknown or closed
    /// connections.
    pub fn inject_tcp_data(&mut self, conn: ConnId, payload: impl Into<Bytes>) -> Result<()> {
        let payload: Bytes = payload.into();
        let sim_host = self.external_conn_sim_side(conn)?;
        let now = self.world.now;
        self.world.schedule(now, sim_host, EventKind::TcpData { conn: conn.0, payload });
        Ok(())
    }

    /// Injects a close from the external end of `conn`; the simulated
    /// side receives [`TcpEvent::Closed`] at the current virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotConnected`] for unknown or closed
    /// connections.
    pub fn inject_tcp_close(&mut self, conn: ConnId) -> Result<()> {
        let sim_host = self.external_conn_sim_side(conn)?;
        if let Some(connection) = self.world.connections.get_mut(&conn.0) {
            connection.open = false;
        }
        let now = self.world.now;
        self.world.schedule(now, sim_host, EventKind::TcpClosed { conn: conn.0 });
        Ok(())
    }

    /// The simulated end of a connection with one external endpoint.
    fn external_conn_sim_side(&self, conn: ConnId) -> Result<Arc<str>> {
        let connection = self
            .world
            .connections
            .get(&conn.0)
            .filter(|c| c.open)
            .ok_or(NetError::NotConnected(conn.0))?;
        Ok(if self.world.external_hosts.contains(&connection.initiator.host) {
            connection.target.host.clone()
        } else {
            connection.initiator.host.clone()
        })
    }

    /// Drains the TCP events queued for external endpoints since the
    /// last call.
    pub fn drain_tcp_egress(&mut self) -> Vec<ExternalTcpEvent> {
        std::mem::take(&mut self.world.tcp_egress)
    }

    /// Replaces the latency model (default: [`LatencyModel::local_machine`]).
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.world.latency = latency;
    }

    /// Adds a host running `actor`; its [`Actor::on_start`] runs as the
    /// first event at the current virtual time.
    pub fn add_actor(&mut self, host: impl Into<String>, actor: impl Actor + 'static) {
        let host: Arc<str> = Arc::from(host.into());
        self.world.hosts.insert(host.clone());
        self.actors.insert(host.clone(), Some(Box::new(actor)));
        let now = self.world.now;
        self.world.schedule(now, host, EventKind::Start);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The delivery trace accumulated so far.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.world.trace
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.world.events.len()
    }

    fn dispatch(&mut self, event: Event) {
        // Take the actor out of its slot so the context can borrow the
        // world mutably; single-threaded, so the slot cannot be observed
        // empty by anyone else.
        let Some(slot) = self.actors.get_mut(&event.host) else {
            return;
        };
        let Some(mut actor) = slot.take() else {
            return;
        };
        {
            let mut ctx = Context { world: &mut self.world, host: &event.host };
            match event.kind {
                EventKind::Start => actor.on_start(&mut ctx),
                EventKind::Datagram(datagram) => actor.on_datagram(&mut ctx, datagram),
                EventKind::TcpAccepted { conn, peer, local_port } => actor
                    .on_tcp(&mut ctx, TcpEvent::Accepted { conn: ConnId(conn), peer, local_port }),
                EventKind::TcpConnected { conn, peer } => {
                    actor.on_tcp(&mut ctx, TcpEvent::Connected { conn: ConnId(conn), peer })
                }
                EventKind::TcpData { conn, payload } => {
                    actor.on_tcp(&mut ctx, TcpEvent::Data { conn: ConnId(conn), payload })
                }
                EventKind::TcpClosed { conn } => {
                    actor.on_tcp(&mut ctx, TcpEvent::Closed { conn: ConnId(conn) })
                }
                EventKind::Timer { tag, .. } => actor.on_timer(&mut ctx, tag),
            }
        }
        if let Some(slot) = self.actors.get_mut(&event.host) {
            *slot = Some(actor);
        }
    }

    /// Drops the event without dispatching when it is a cancelled timer.
    /// Cancelled timers do not advance the virtual clock either — they
    /// were revoked before firing, so time must not fast-forward to them
    /// (a completed bridge session cancelling its idle-expiry timer must
    /// not stretch `run_until_idle` by the timeout).
    fn consume_if_cancelled(&mut self, event: &Event) -> bool {
        if let EventKind::Timer { id, .. } = &event.kind {
            if self.world.cancelled_timers.remove(id) {
                return true;
            }
        }
        false
    }

    /// Processes the next event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(Reverse(event)) = self.world.events.pop() else {
                return false;
            };
            if self.consume_if_cancelled(&event) {
                continue;
            }
            self.world.now = event.at;
            self.dispatch(event);
            return true;
        }
    }

    /// Runs until no events remain, returning the final virtual time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.world.now
    }

    /// Runs until the queue is empty or the next event is after
    /// `deadline`; the clock never advances beyond processed events.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            match self.world.events.peek() {
                Some(Reverse(event)) if event.at <= deadline => {
                    let Reverse(event) = self.world.events.pop().expect("peeked");
                    if self.consume_if_cancelled(&event) {
                        continue;
                    }
                    self.world.now = event.at;
                    self.dispatch(event);
                }
                _ => break,
            }
        }
        self.world.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Records every datagram payload it receives.
    struct Sink {
        port: u16,
        group: Option<SimAddr>,
        received: Arc<AtomicUsize>,
    }

    impl Actor for Sink {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(self.port).unwrap();
            if let Some(group) = self.group.clone() {
                ctx.join_group(group);
            }
        }
        fn on_datagram(&mut self, _ctx: &mut Context<'_>, _datagram: Datagram) {
            self.received.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Sends one unicast datagram at start.
    struct OneShot {
        to: SimAddr,
    }

    impl Actor for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(5000).unwrap();
            ctx.udp_send(5000, self.to.clone(), &b"hello"[..]);
        }
    }

    #[test]
    fn unicast_delivery_advances_clock() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(1);
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        let end = sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 1);
        assert!(end.as_micros() >= 200, "latency applied");
    }

    #[test]
    fn datagram_to_unbound_port_is_dropped() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(1);
        sim.add_actor("10.0.0.2", Sink { port: 81, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert!(sim.trace().iter().any(|t| t.description.contains("dropped")));
    }

    #[test]
    fn multicast_fans_out_excluding_sender() {
        let group = SimAddr::new("239.255.255.250", 1900);
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(2);
        sim.add_actor(
            "10.0.0.2",
            Sink { port: 1900, group: Some(group.clone()), received: a.clone() },
        );
        sim.add_actor(
            "10.0.0.3",
            Sink { port: 1900, group: Some(group.clone()), received: b.clone() },
        );

        struct Caster {
            group: SimAddr,
        }
        impl Actor for Caster {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(1900).unwrap();
                ctx.join_group(self.group.clone());
                ctx.udp_send(1900, self.group.clone(), &b"M-SEARCH"[..]);
            }
        }
        sim.add_actor("10.0.0.1", Caster { group });
        sim.run_until_idle();
        assert_eq!(a.load(Ordering::SeqCst), 1);
        assert_eq!(b.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        fn run(seed: u64) -> (SimTime, usize) {
            let received = Arc::new(AtomicUsize::new(0));
            let mut sim = SimNet::new(seed);
            sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
            sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
            (sim.run_until_idle(), sim.trace().len())
        }
        assert_eq!(run(7), run(7));
        // Different seeds give different latencies (with high probability).
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn tcp_handshake_data_and_close() {
        struct Server {
            log: Arc<AtomicU64>,
        }
        impl Actor for Server {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(80);
            }
            fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
                match event {
                    TcpEvent::Accepted { .. } => {
                        self.log.fetch_add(1, Ordering::SeqCst);
                    }
                    TcpEvent::Data { conn, payload } => {
                        assert_eq!(&payload[..], b"GET /");
                        self.log.fetch_add(10, Ordering::SeqCst);
                        ctx.tcp_send(conn, &b"200 OK"[..]).unwrap();
                    }
                    TcpEvent::Closed { .. } => {
                        self.log.fetch_add(100, Ordering::SeqCst);
                    }
                    TcpEvent::Connected { .. } => unreachable!(),
                }
            }
        }
        struct Client {
            log: Arc<AtomicU64>,
        }
        impl Actor for Client {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.tcp_connect(SimAddr::new("10.0.0.2", 80)).unwrap();
            }
            fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
                match event {
                    TcpEvent::Connected { conn, .. } => {
                        self.log.fetch_add(1000, Ordering::SeqCst);
                        ctx.tcp_send(conn, &b"GET /"[..]).unwrap();
                    }
                    TcpEvent::Data { conn, payload } => {
                        assert_eq!(&payload[..], b"200 OK");
                        self.log.fetch_add(10000, Ordering::SeqCst);
                        ctx.tcp_close(conn).unwrap();
                    }
                    _ => {}
                }
            }
        }
        let server_log = Arc::new(AtomicU64::new(0));
        let client_log = Arc::new(AtomicU64::new(0));
        let mut sim = SimNet::new(3);
        sim.add_actor("10.0.0.2", Server { log: server_log.clone() });
        sim.add_actor("10.0.0.1", Client { log: client_log.clone() });
        sim.run_until_idle();
        assert_eq!(server_log.load(Ordering::SeqCst), 111); // accept + data + close
        assert_eq!(client_log.load(Ordering::SeqCst), 11000); // connected + data
    }

    #[test]
    fn tcp_connect_refused_without_listener() {
        struct Lonely;
        impl Actor for Lonely {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let err = ctx.tcp_connect(SimAddr::new("10.0.0.9", 80)).unwrap_err();
                assert!(matches!(err, NetError::ConnectionRefused { .. }));
            }
        }
        let mut sim = SimNet::new(4);
        sim.add_actor("10.0.0.1", Lonely);
        sim.run_until_idle();
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        use std::sync::Mutex;
        struct Timed {
            fired: Arc<Mutex<Vec<u64>>>,
        }
        impl Actor for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let cancel_me = ctx.set_timer(SimDuration::from_millis(5), 2);
                ctx.set_timer(SimDuration::from_millis(20), 3);
                ctx.cancel_timer(cancel_me);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
                self.fired.lock().unwrap().push(tag);
                assert!(ctx.now() >= SimTime::from_millis(10));
            }
        }
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimNet::new(5);
        sim.add_actor("10.0.0.1", Timed { fired: fired.clone() });
        sim.run_until_idle();
        assert_eq!(*fired.lock().unwrap(), vec![1, 3]); // tag 2 cancelled
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Late;
        impl Actor for Late {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_secs(10), 0);
            }
        }
        let mut sim = SimNet::new(6);
        sim.add_actor("10.0.0.1", Late);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.pending_events(), 1);
        assert!(sim.now() <= SimTime::from_millis(100));
    }

    #[test]
    fn double_bind_rejected() {
        struct Binder;
        impl Actor for Binder {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(427).unwrap();
                assert!(matches!(ctx.bind_udp(427), Err(NetError::PortInUse { .. })));
            }
        }
        let mut sim = SimNet::new(7);
        sim.add_actor("10.0.0.1", Binder);
        sim.run_until_idle();
    }

    #[test]
    fn cancelled_timer_does_not_advance_clock() {
        struct Canceller;
        impl Actor for Canceller {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
                let late = ctx.set_timer(SimDuration::from_secs(60), 2);
                ctx.cancel_timer(late);
            }
        }
        let mut sim = SimNet::new(11);
        sim.add_actor("10.0.0.1", Canceller);
        let end = sim.run_until_idle();
        assert_eq!(end, SimTime::from_millis(1), "cancelled timer stretched the run to {end:?}");
    }

    #[test]
    fn external_unicast_is_queued_for_egress() {
        let mut sim = SimNet::new(12);
        sim.register_external_host("127.0.0.1");
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("127.0.0.1", 9000) });
        sim.run_until_idle();
        let egress = sim.drain_egress();
        assert_eq!(egress.len(), 1);
        assert_eq!(egress[0].to, SimAddr::new("127.0.0.1", 9000));
        assert_eq!(&egress[0].payload[..], b"hello");
        assert!(sim.drain_egress().is_empty(), "drain consumes the queue");
    }

    #[test]
    fn external_group_member_receives_multicast_via_egress() {
        let group = SimAddr::new("239.0.0.9", 4000);
        let mut sim = SimNet::new(13);
        sim.join_group_external(group.clone(), SimAddr::new("127.0.0.1", 5555));
        struct Caster {
            group: SimAddr,
        }
        impl Actor for Caster {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(4000).unwrap();
                ctx.udp_send(4000, self.group.clone(), &b"hi"[..]);
            }
        }
        sim.add_actor("10.0.0.1", Caster { group });
        sim.run_until_idle();
        let egress = sim.drain_egress();
        assert_eq!(egress.len(), 1);
        assert_eq!(egress[0].to, SimAddr::new("127.0.0.1", 5555));
    }

    #[test]
    fn injected_datagram_is_delivered_and_reply_leaves_again() {
        struct Echo;
        impl Actor for Echo {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(9).unwrap();
            }
            fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
                ctx.udp_send(9, datagram.from, datagram.payload);
            }
        }
        let mut sim = SimNet::new(14);
        sim.add_actor("10.0.0.2", Echo);
        sim.run_until_idle();
        sim.inject_datagram(Datagram {
            from: SimAddr::new("127.0.0.1", 40_001),
            to: SimAddr::new("10.0.0.2", 9),
            payload: Bytes::copy_from_slice(b"ping"),
        });
        sim.run_until_idle();
        let egress = sim.drain_egress();
        assert_eq!(egress.len(), 1, "reply to the external sender left the sim");
        assert_eq!(egress[0].to, SimAddr::new("127.0.0.1", 40_001));
        assert_eq!(&egress[0].payload[..], b"ping");
    }

    #[test]
    fn external_tcp_connect_delivers_and_replies_leave_via_tcp_egress() {
        struct Server {
            closes: Arc<AtomicUsize>,
        }
        impl Actor for Server {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(80);
            }
            fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
                match event {
                    TcpEvent::Data { conn, payload } => {
                        assert_eq!(&payload[..], b"GET /");
                        ctx.tcp_send(conn, &b"200 OK"[..]).unwrap();
                    }
                    TcpEvent::Closed { .. } => {
                        self.closes.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {}
                }
            }
        }
        let closes = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(15);
        sim.add_actor("10.0.0.2", Server { closes: closes.clone() });
        sim.run_until_idle();

        let from = SimAddr::new("127.0.0.1", 50_000);
        let conn = sim.external_tcp_connect(from, SimAddr::new("10.0.0.2", 80)).unwrap();
        sim.inject_tcp_data(conn, &b"GET /"[..]).unwrap();
        sim.run_until_idle();
        let egress = sim.drain_tcp_egress();
        assert_eq!(egress.len(), 1);
        let ExternalTcpEvent::Data { conn: got, payload } = &egress[0] else {
            panic!("expected data, got {egress:?}");
        };
        assert_eq!(*got, conn);
        assert_eq!(&payload[..], b"200 OK");
        assert!(sim.drain_tcp_egress().is_empty(), "drain consumes the queue");

        sim.inject_tcp_close(conn).unwrap();
        sim.run_until_idle();
        assert_eq!(closes.load(Ordering::SeqCst), 1, "server saw the external close");
        assert!(sim.inject_tcp_data(conn, &b"late"[..]).is_err(), "closed conn rejects data");
    }

    #[test]
    fn external_tcp_connect_refused_without_listener() {
        let mut sim = SimNet::new(16);
        let err = sim
            .external_tcp_connect(SimAddr::new("127.0.0.1", 50_001), SimAddr::new("10.0.0.9", 80))
            .unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused { .. }));
    }

    #[test]
    fn sim_actor_close_towards_external_peer_queues_tcp_egress() {
        struct Closer;
        impl Actor for Closer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(80);
            }
            fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
                if let TcpEvent::Accepted { conn, .. } = event {
                    ctx.tcp_close(conn).unwrap();
                }
            }
        }
        let mut sim = SimNet::new(17);
        sim.add_actor("10.0.0.2", Closer);
        sim.run_until_idle();
        let conn = sim
            .external_tcp_connect(SimAddr::new("127.0.0.1", 50_002), SimAddr::new("10.0.0.2", 80))
            .unwrap();
        sim.run_until_idle();
        assert_eq!(sim.drain_tcp_egress(), vec![ExternalTcpEvent::Closed { conn }]);
    }

    /// An `Impairments` profile with everything off — the base the chaos
    /// tests tweak one knob at a time.
    fn profile() -> Impairments {
        Impairments::none()
    }

    #[test]
    fn inert_profile_changes_nothing() {
        // A sim with the inert profile explicitly set must replay
        // bit-identically to one that never touched impairments (zero
        // chaos draws, identical latency stream, identical trace).
        fn run(set_profile: bool) -> (SimTime, String) {
            let received = Arc::new(AtomicUsize::new(0));
            let mut sim = SimNet::new(21);
            if set_profile {
                sim.set_impairments(Impairments::none());
            }
            sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received });
            sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
            sim.run_until_idle();
            (sim.now(), sim.trace_text())
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn full_drop_loses_every_datagram_and_traces_it() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(22);
        sim.set_impairments(Impairments { drop_permille: 1000, ..profile() });
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert!(sim.trace_text().contains("chaos drop"), "trace: {}", sim.trace_text());
    }

    #[test]
    fn duplication_delivers_an_extra_copy() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(23);
        sim.set_impairments(Impairments { duplicate_permille: 1000, ..profile() });
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 2);
        assert!(sim.trace_text().contains("chaos dup"));
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        use std::sync::Mutex;
        struct Capture {
            seen: Arc<Mutex<Vec<Vec<u8>>>>,
        }
        impl Actor for Capture {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(80).unwrap();
            }
            fn on_datagram(&mut self, _ctx: &mut Context<'_>, datagram: Datagram) {
                self.seen.lock().unwrap().push(datagram.payload.to_vec());
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimNet::new(24);
        sim.set_impairments(Impairments { corrupt_permille: 1000, ..profile() });
        sim.add_actor("10.0.0.2", Capture { seen: seen.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        let diff: usize = seen[0].iter().zip(b"hello").filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1, "exactly one byte flipped: {:?}", seen[0]);
        assert!(sim.trace_text().contains("chaos corrupt"));
    }

    #[test]
    fn reorder_defers_within_the_window() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(25);
        sim.set_impairments(Impairments {
            reorder_permille: 1000,
            reorder_window: SimDuration::from_millis(5),
            ..profile()
        });
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        let end = sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 1);
        assert!(sim.trace_text().contains("chaos delay"));
        // One modelled latency (≤600µs) plus at most the window.
        assert!(end <= SimTime::from_micros(5_600), "deferral bounded: {end}");
    }

    #[test]
    fn partition_drops_datagrams_and_refuses_tcp_until_healed() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(26);
        sim.partition("10.0.0.1", "10.0.0.2");
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert!(sim.trace_text().contains("chaos partition drop"));

        struct Dialer;
        impl Actor for Dialer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(99);
                let err = ctx.tcp_connect(SimAddr::new("10.0.0.9", 80)).unwrap_err();
                assert!(matches!(err, NetError::ConnectionRefused { .. }));
            }
        }
        struct Listener;
        impl Actor for Listener {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(80);
            }
        }
        let mut sim = SimNet::new(26);
        sim.partition("10.0.0.8", "10.0.0.9");
        sim.add_actor("10.0.0.9", Listener);
        sim.add_actor("10.0.0.8", Dialer);
        sim.run_until_idle();
        assert!(sim.trace_text().contains("chaos partition refused tcp"));
    }

    #[test]
    fn partition_cuts_multicast_delivery_per_member() {
        // Regression: the partition key must be the *member* host, not
        // the group address — a partitioned member misses the multicast
        // while the other member still receives it.
        let group = SimAddr::new("239.255.255.250", 1900);
        let cut = Arc::new(AtomicUsize::new(0));
        let open = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(31);
        sim.partition("10.0.0.1", "10.0.0.2");
        sim.add_actor(
            "10.0.0.2",
            Sink { port: 1900, group: Some(group.clone()), received: cut.clone() },
        );
        sim.add_actor(
            "10.0.0.3",
            Sink { port: 1900, group: Some(group.clone()), received: open.clone() },
        );

        struct Caster {
            group: SimAddr,
        }
        impl Actor for Caster {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(1900).unwrap();
                ctx.udp_send(1900, self.group.clone(), &b"M-SEARCH"[..]);
            }
        }
        sim.add_actor("10.0.0.1", Caster { group });
        sim.run_until_idle();
        assert_eq!(cut.load(Ordering::SeqCst), 0, "partitioned member must not receive");
        assert_eq!(open.load(Ordering::SeqCst), 1, "unpartitioned member still receives");
        assert!(
            sim.trace_text().contains("member 10.0.0.2"),
            "partition drop names the member: {}",
            sim.trace_text()
        );
    }

    #[test]
    fn partition_for_heals_automatically() {
        struct Resender {
            to: SimAddr,
        }
        impl Actor for Resender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(5000).unwrap();
                ctx.udp_send(5000, self.to.clone(), &b"first"[..]);
                ctx.set_timer(SimDuration::from_millis(20), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
                ctx.udp_send(5000, self.to.clone(), &b"second"[..]);
            }
        }
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(27);
        sim.partition_for("10.0.0.1", "10.0.0.2", SimDuration::from_millis(10));
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", Resender { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 1, "only the post-heal datagram lands");
        assert!(sim.trace_text().contains("chaos partition healed"));
    }

    #[test]
    fn injected_datagrams_are_impaired_too() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(28);
        sim.set_impairments(Impairments { drop_permille: 1000, ..profile() });
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.run_until_idle();
        sim.inject_datagram(Datagram {
            from: SimAddr::new("127.0.0.1", 40_001),
            to: SimAddr::new("10.0.0.2", 80),
            payload: Bytes::copy_from_slice(b"ping"),
        });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert!(sim.trace_text().contains("chaos drop"));
    }

    #[test]
    fn egress_is_impaired_but_never_deferred() {
        let mut sim = SimNet::new(29);
        sim.set_impairments(Impairments { duplicate_permille: 1000, ..profile() });
        sim.register_external_host("127.0.0.1");
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("127.0.0.1", 9000) });
        sim.run_until_idle();
        assert_eq!(sim.drain_egress().len(), 2, "egress duplicated");
        assert!(!sim.trace_text().contains("chaos delay"), "no deferral on egress");
    }

    #[test]
    fn same_seed_and_profile_replay_byte_identically() {
        fn run() -> (String, usize) {
            let received = Arc::new(AtomicUsize::new(0));
            let mut sim = SimNet::new(30);
            sim.set_impairments(Impairments {
                drop_permille: 300,
                duplicate_permille: 300,
                reorder_permille: 300,
                reorder_window: SimDuration::from_millis(3),
                jitter: SimDuration::from_micros(500),
                corrupt_permille: 300,
                partition_permille: 100,
                partition_window: SimDuration::from_millis(5),
            });
            sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
            for i in 0..6 {
                sim.add_actor(format!("10.0.1.{i}"), OneShot { to: SimAddr::new("10.0.0.2", 80) });
            }
            sim.run_until_idle();
            (sim.trace_text(), received.load(Ordering::SeqCst))
        }
        let (trace_a, count_a) = run();
        let (trace_b, count_b) = run();
        assert_eq!(trace_a, trace_b, "byte-identical traces");
        assert_eq!(count_a, count_b);
        assert!(trace_a.contains("chaos"), "the profile actually fired: {trace_a}");
    }

    #[test]
    fn rand_range_is_seeded() {
        struct R {
            out: Arc<AtomicU64>,
        }
        impl Actor for R {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                self.out.store(ctx.rand_range(0, 1_000_000), Ordering::SeqCst);
            }
        }
        let run = |seed| {
            let out = Arc::new(AtomicU64::new(0));
            let mut sim = SimNet::new(seed);
            sim.add_actor("h", R { out: out.clone() });
            sim.run_until_idle();
            out.load(Ordering::SeqCst)
        };
        assert_eq!(run(9), run(9));
    }
}
