//! The deterministic discrete-event network simulator.
//!
//! Hosts are [`Actor`]s reacting to datagrams, TCP events and timers; the
//! simulator owns a single virtual clock and a totally ordered event
//! queue, so a seeded run replays bit-identically. This is the substrate
//! on which the legacy protocol endpoints and the Starlink bridge of the
//! evaluation (§V/§VI) execute.

use crate::addr::SimAddr;
use crate::error::{NetError, Result};
use crate::latency::LatencyModel;
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::Arc;

/// A seeded, fully deterministic network-impairment profile, applied at
/// delivery time on every datagram *link traversal*: in-simulation
/// deliveries, datagrams injected from outside
/// ([`SimNet::inject_datagram`]) and datagrams queued for external
/// endpoints (egress). Any run is exactly reproducible from
/// `(seed, profile)`: impairment decisions are drawn from a dedicated
/// RNG stream (seeded alongside the simulation's), and an inert profile
/// makes **zero** draws and costs one branch per delivery, replaying
/// bit-identically to a run that never heard of impairments. (Active
/// profiles still shift the *latency* stream indirectly — a dropped
/// datagram samples no delivery latency and a duplicate samples one per
/// copy — so runs are comparable per `(seed, profile)` pair, not across
/// profiles.)
///
/// Semantics per traversal, in decision order:
///
/// 1. an active partition between the two hosts drops the datagram;
/// 2. with `partition_permille`, the host pair *enters* a partition for
///    `partition_window` (healing automatically) and the datagram is its
///    first casualty;
/// 3. with `drop_permille`, the datagram is dropped;
/// 4. with `duplicate_permille`, one extra copy is delivered;
/// 5. every copy gains uniform jitter in `[0, jitter]`, plus — with
///    `reorder_permille` — an extra uniform deferral in
///    `[1µs, reorder_window]` (bounded reordering: the event queue is
///    time-ordered, so a deferred copy overtakes nothing later than the
///    window);
/// 6. with `corrupt_permille`, one payload byte of a copy is XOR-flipped.
///
/// Deferrals are meaningless once bytes leave the virtual network, so
/// egress traversals apply loss/partition/duplication/corruption but not
/// jitter/reordering. TCP models a reliable transport: established
/// connections are untouched (real TCP retransmits through loss), but
/// opening a connection across an active partition fails with
/// [`NetError::ConnectionRefused`]. Every impairment event is recorded
/// in the [`SimNet::trace`], so two runs of the same `(seed, profile)`
/// produce byte-identical traces.
///
/// ```
/// use starlink_net::{Impairments, SimDuration, SimNet};
///
/// // 10% loss + duplication with bounded reordering; everything else off.
/// let profile = Impairments {
///     drop_permille: 100,
///     duplicate_permille: 200,
///     reorder_permille: 300,
///     reorder_window: SimDuration::from_millis(2),
///     ..Impairments::none()
/// };
/// assert!(!profile.is_inert());
///
/// let mut sim = SimNet::new(7);
/// sim.set_impairments(profile);           // every link traversal now rolls the dice
/// assert!(Impairments::none().is_inert()); // the control profile draws nothing
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Impairments {
    /// Per-traversal drop probability, in permille (0–1000).
    pub drop_permille: u16,
    /// Probability that a delivered datagram is duplicated (one extra
    /// copy), in permille.
    pub duplicate_permille: u16,
    /// Probability that a copy is deferred for bounded reordering, in
    /// permille.
    pub reorder_permille: u16,
    /// Upper bound of the reordering deferral.
    pub reorder_window: SimDuration,
    /// Uniform extra delay in `[0, jitter]` added to every copy.
    pub jitter: SimDuration,
    /// Probability that one payload byte of a copy is corrupted, in
    /// permille.
    pub corrupt_permille: u16,
    /// Probability that a traversal spontaneously partitions its host
    /// pair, in permille.
    pub partition_permille: u16,
    /// How long a spontaneous partition lasts before healing.
    pub partition_window: SimDuration,
}

impl Impairments {
    /// The inert profile: nothing is impaired and the chaos RNG is never
    /// touched, so a simulation with this profile replays bit-identically
    /// to one that never heard of impairments.
    pub fn none() -> Self {
        Impairments {
            drop_permille: 0,
            duplicate_permille: 0,
            reorder_permille: 0,
            reorder_window: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            corrupt_permille: 0,
            partition_permille: 0,
            partition_window: SimDuration::ZERO,
        }
    }

    /// Whether every knob is zero (the fast-path check).
    pub fn is_inert(&self) -> bool {
        self.drop_permille == 0
            && self.duplicate_permille == 0
            && self.reorder_permille == 0
            && self.jitter == SimDuration::ZERO
            && self.corrupt_permille == 0
            && self.partition_permille == 0
    }
}

impl Default for Impairments {
    fn default() -> Self {
        Impairments::none()
    }
}

/// A deterministic satellite-style connectivity schedule: time is cut
/// into fixed windows and the schedule's slots take turns being *active*
/// — a link is open only while every non-hub endpoint's slot is the
/// active one. The optional hub host (the bridge in the chaos harness)
/// is reachable in every window, so traffic between hosts in different
/// slots must store-and-forward through it across passes.
///
/// The schedule is a pure function of the virtual clock (`active slot =
/// (now / window) % slots`): it makes **zero** RNG draws, and the inert
/// schedule ([`PassSchedule::always_open`], `window == ZERO` or a single
/// slot) costs one branch per link traversal, replaying bit-identically
/// to a simulation that never heard of passes. Closed-window traversals
/// are dropped and traced as `pass closed`. TCP is deliberately *not*
/// gated: as with [`Impairments`], TCP models a reliable transport
/// riding established connectivity, while the pass schedule models the
/// contended discovery uplink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassSchedule {
    /// Length of one connectivity window; `ZERO` disables the schedule.
    pub window: SimDuration,
    /// Number of slots taking turns (`<= 1` disables the schedule).
    pub slots: u32,
    /// The always-reachable hub host, exempt from slot gating.
    pub hub: Option<Arc<str>>,
    /// Explicit slot assignment per host; unlisted hosts use
    /// `default_slot`.
    pub assignments: BTreeMap<Arc<str>, u32>,
    /// The slot of every host without an explicit assignment.
    pub default_slot: u32,
}

impl PassSchedule {
    /// The inert schedule: every link is open in every window and the
    /// gate costs one branch per traversal.
    pub fn always_open() -> Self {
        PassSchedule {
            window: SimDuration::ZERO,
            slots: 1,
            hub: None,
            assignments: BTreeMap::new(),
            default_slot: 0,
        }
    }

    /// Whether the schedule gates nothing (the fast-path check).
    pub fn is_inert(&self) -> bool {
        self.window == SimDuration::ZERO || self.slots <= 1
    }

    /// The active slot at `now`.
    pub fn active_slot(&self, now: SimTime) -> u32 {
        if self.is_inert() {
            return 0;
        }
        ((now.as_micros() / self.window.as_micros()) % u64::from(self.slots)) as u32
    }

    /// The slot `host` lives in.
    pub fn slot_of(&self, host: &str) -> u32 {
        self.assignments.get(host).copied().unwrap_or(self.default_slot)
    }

    /// Whether the link between hosts `a` and `b` is open at `now`:
    /// every non-hub endpoint's slot must be the active one.
    pub fn open_at(&self, now: SimTime, a: &str, b: &str) -> bool {
        if self.is_inert() {
            return true;
        }
        let active = self.active_slot(now);
        let hub = self.hub.as_deref();
        for host in [a, b] {
            if Some(host) != hub && self.slot_of(host) != active {
                return false;
            }
        }
        true
    }

    /// The start of the next window in which the `a`↔`b` link is open,
    /// or `None` when the schedule can never open it (both endpoints
    /// non-hub in different slots). Used by calibrated retransmission to
    /// pace retries against the schedule instead of guessing.
    pub fn next_open(&self, now: SimTime, a: &str, b: &str) -> Option<SimTime> {
        if self.open_at(now, a, b) {
            return Some(now);
        }
        // The earliest future window whose active slot matches both
        // non-hub endpoints; one lap over the slots suffices.
        let current = now.as_micros() / self.window.as_micros();
        for lap in 1..=u64::from(self.slots) {
            let at = SimTime::from_micros((current + lap) * self.window.as_micros());
            if self.open_at(at, a, b) {
                return Some(at);
            }
        }
        None
    }
}

impl Default for PassSchedule {
    fn default() -> Self {
        PassSchedule::always_open()
    }
}

/// What chaos decided for one link traversal of one datagram.
enum Fate {
    /// Untouched: one pristine copy on the modelled schedule (also the
    /// fast path when impairments are inert and no partition exists).
    Pristine,
    /// The datagram never arrives.
    Dropped,
    /// Deliver these copies: each with an extra deferral beyond the
    /// modelled latency, and optionally one corrupted byte.
    Copies(Vec<(SimDuration, bool)>),
}

/// A UDP datagram delivered to an actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sender endpoint.
    pub from: SimAddr,
    /// Destination endpoint as addressed (multicast group or unicast).
    pub to: SimAddr,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Identifier of a simulated TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// Identifier of a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

/// TCP lifecycle events delivered to actors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// An outbound connection completed (initiator side).
    Connected {
        /// The connection.
        conn: ConnId,
        /// The accepting endpoint.
        peer: SimAddr,
    },
    /// An inbound connection arrived (listener side).
    Accepted {
        /// The connection.
        conn: ConnId,
        /// The initiating endpoint.
        peer: SimAddr,
        /// The local listening port that accepted.
        local_port: u16,
    },
    /// Stream data arrived.
    Data {
        /// The connection.
        conn: ConnId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// The peer closed the connection.
    Closed {
        /// The connection.
        conn: ConnId,
    },
}

/// A simulated host's behaviour. All methods default to no-ops so actors
/// implement only what they use.
///
/// Actors are `Send` so a whole simulation can be moved onto a worker
/// thread — the sharded bridge runtime runs one single-threaded `SimNet`
/// per shard, each on its own core. Nothing here is `Sync`: within one
/// simulation, actors still execute strictly one event at a time.
pub trait Actor: Send {
    /// Called once when the simulation starts (or when the actor is added
    /// to a running simulation).
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// A datagram arrived on a bound port or joined group.
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _datagram: Datagram) {}

    /// A TCP event arrived.
    fn on_tcp(&mut self, _ctx: &mut Context<'_>, _event: TcpEvent) {}

    /// A timer set via [`Context::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _tag: u64) {}

    /// An out-of-band control payload delivered via
    /// [`SimNet::deliver_control`] — the channel a live control plane
    /// uses to hand an actor new behaviour (e.g. a freshly deployed
    /// bridge version) without going over the simulated wire. The
    /// payload is opaque to the simulator; actors downcast what they
    /// understand and drop the rest (the default).
    fn on_control(&mut self, _ctx: &mut Context<'_>, _payload: Box<dyn std::any::Any + Send>) {}
}

/// Wraps an actor so its [`Actor::on_start`] runs after a delay — the
/// building block for staggered/interleaved multi-client scenarios.
///
/// The wrapper reserves timer tag `u64::MAX` for the deferred start and
/// forwards every other event to the inner actor untouched.
#[derive(Debug)]
pub struct DelayedActor<A> {
    delay: crate::time::SimDuration,
    inner: A,
    started: bool,
}

impl<A: Actor> DelayedActor<A> {
    /// Wraps `inner` so it starts `delay` after the simulation adds it.
    pub fn new(delay: crate::time::SimDuration, inner: A) -> Self {
        DelayedActor { delay, inner, started: false }
    }
}

impl<A: Actor + ?Sized> Actor for Box<A> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        (**self).on_start(ctx);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        (**self).on_datagram(ctx, datagram);
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        (**self).on_tcp(ctx, event);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        (**self).on_timer(ctx, tag);
    }

    fn on_control(&mut self, ctx: &mut Context<'_>, payload: Box<dyn std::any::Any + Send>) {
        (**self).on_control(ctx, payload);
    }
}

impl<A: Actor> Actor for DelayedActor<A> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.delay, u64::MAX);
    }

    fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
        self.inner.on_datagram(ctx, datagram);
    }

    fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
        self.inner.on_tcp(ctx, event);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag == u64::MAX && !self.started {
            self.started = true;
            self.inner.on_start(ctx);
        } else {
            self.inner.on_timer(ctx, tag);
        }
    }

    fn on_control(&mut self, ctx: &mut Context<'_>, payload: Box<dyn std::any::Any + Send>) {
        self.inner.on_control(ctx, payload);
    }
}

#[derive(Debug)]
struct Connection {
    initiator: SimAddr,
    target: SimAddr,
    open: bool,
}

#[derive(Debug)]
enum EventKind {
    Start,
    Datagram(Datagram),
    TcpAccepted {
        conn: u64,
        peer: SimAddr,
        local_port: u16,
    },
    TcpConnected {
        conn: u64,
        peer: SimAddr,
    },
    TcpData {
        conn: u64,
        payload: Bytes,
    },
    TcpClosed {
        conn: u64,
    },
    Timer {
        id: u64,
        tag: u64,
    },
    /// The earliest in-flight transfer on `link` finishes transmitting.
    /// Stale ticks (the link's generation moved past `gen` because a
    /// transfer joined or the link drained) are skipped without
    /// advancing the clock, exactly like cancelled timers.
    LinkTick {
        link: (Arc<str>, Arc<str>),
        gen: u64,
    },
}

/// One datagram copy in transmission through a bandwidth-shared link.
#[derive(Debug)]
struct Transfer {
    /// Unsent payload in *micro-bytes* (bytes × 1 000 000): at a link
    /// capacity of C bytes/second a transfer drains C micro-bytes per
    /// virtual microsecond of its fair share, keeping the fluid model in
    /// exact integer arithmetic.
    remaining: u64,
    /// The physical receiving host (the group member for multicast).
    to_host: Arc<str>,
    datagram: Datagram,
    /// Latency (plus chaos deferral) appended after the last byte
    /// leaves the link.
    tail: SimDuration,
    /// Egress transfers are pushed to the egress queue on completion
    /// instead of being scheduled as in-simulation deliveries.
    egress: bool,
}

/// The fair-share fluid state of one host-pair link: all in-flight
/// transfers split the link capacity equally, re-settled on every
/// transfer start and finish (the dslab `SharedBandwidthNetwork`
/// recipe).
#[derive(Debug)]
struct LinkState {
    /// When `transfers[*].remaining` was last settled.
    updated: SimTime,
    /// Bumped on every membership change; ticks carry the generation
    /// they were scheduled under so stale ones self-cancel.
    gen: u64,
    transfers: Vec<Transfer>,
}

#[derive(Debug)]
struct Event {
    at: SimTime,
    seq: u64,
    host: Arc<str>,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A TCP event leaving the simulation towards an external peer (the
/// mirror image of [`TcpEvent`] for connections whose far end is a real
/// socket or a gateway driver rather than a simulated host). Drained by
/// [`SimNet::drain_tcp_egress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExternalTcpEvent {
    /// Stream data for the external end of `conn`.
    Data {
        /// The connection.
        conn: ConnId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// A simulated actor closed the connection.
    Closed {
        /// The connection.
        conn: ConnId,
    },
}

/// One line of the delivery trace (debugging/verification aid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the entry was recorded.
    pub at: SimTime,
    /// What happened.
    pub description: String,
}

#[derive(Debug)]
struct World {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    rng: StdRng,
    latency: LatencyModel,
    udp_bindings: BTreeSet<(Arc<str>, u16)>,
    groups: BTreeMap<SimAddr, BTreeSet<Arc<str>>>,
    tcp_listeners: BTreeSet<(Arc<str>, u16)>,
    connections: BTreeMap<u64, Connection>,
    next_conn: u64,
    next_ephemeral: u16,
    next_timer: u64,
    cancelled_timers: BTreeSet<u64>,
    trace: Vec<TraceEntry>,
    hosts: BTreeSet<Arc<str>>,
    /// Hosts that live *outside* the simulation (real sockets behind a
    /// gateway loop). Unicast datagrams addressed to them are queued in
    /// `egress` instead of being delivered or dropped.
    external_hosts: BTreeSet<Arc<str>>,
    /// Endpoints outside the simulation that joined a multicast group;
    /// group sends fan out to them through `egress` too.
    external_group_members: BTreeMap<SimAddr, BTreeSet<SimAddr>>,
    /// Datagrams leaving the simulation, drained by the gateway loop.
    egress: Vec<Datagram>,
    /// TCP events leaving the simulation (connections whose peer is an
    /// external endpoint), drained by the gateway loop.
    tcp_egress: Vec<ExternalTcpEvent>,
    /// The impairment profile applied to every datagram link traversal.
    impairments: Impairments,
    /// Dedicated RNG stream for impairment decisions, so enabling chaos
    /// never perturbs the latency stream of the same seed.
    chaos_rng: StdRng,
    /// Active partitions: ordered host pair → heal time (`None` = until
    /// explicitly healed). Spontaneous (profile-driven) and explicit
    /// ([`SimNet::partition`]) entries share this table.
    partitions: BTreeMap<(Arc<str>, Arc<str>), Option<SimTime>>,
    /// Shared per-link capacity in bytes per second; `0` (the default)
    /// disables the bandwidth model entirely — delivery times come from
    /// the latency model alone, exactly as before the model existed.
    link_bandwidth: u64,
    /// Fair-share transmission state per ordered host pair; only links
    /// with in-flight transfers have an entry.
    links: BTreeMap<(Arc<str>, Arc<str>), LinkState>,
    /// The connectivity pass schedule (default: inert).
    pass: PassSchedule,
}

impl World {
    fn schedule(&mut self, at: SimTime, host: Arc<str>, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { at, seq, host, kind }));
    }

    fn latency(&mut self) -> SimDuration {
        self.latency.sample(&mut self.rng)
    }

    fn trace(&mut self, description: String) {
        let at = self.now;
        self.trace.push(TraceEntry { at, description });
    }

    /// The canonical (ordered) key of a host pair in the partition table.
    fn pair_key(a: &Arc<str>, b: &Arc<str>) -> (Arc<str>, Arc<str>) {
        if a.as_ref() <= b.as_ref() {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        }
    }

    /// Whether an active partition separates `a` and `b`; healed entries
    /// are reaped on the way through.
    fn partition_active(&mut self, a: &Arc<str>, b: &Arc<str>) -> bool {
        if self.partitions.is_empty() {
            return false;
        }
        let key = World::pair_key(a, b);
        match self.partitions.get(&key) {
            Some(None) => true,
            Some(Some(heal_at)) => {
                if self.now < *heal_at {
                    true
                } else {
                    self.partitions.remove(&key);
                    self.trace(format!("chaos partition healed {} <-> {}", key.0, key.1));
                    false
                }
            }
            None => false,
        }
    }

    /// Rolls a permille probability on the chaos stream. Zero knobs make
    /// no draw, keeping inert profiles stream-silent.
    fn chaos_hits(&mut self, permille: u16) -> bool {
        permille > 0 && self.chaos_rng.gen_range(0u64..1000) < u64::from(permille)
    }

    /// Drops every partition whose heal time has passed (tracing each
    /// heal, like the per-traversal reap does), keeping the table
    /// bounded by genuinely active partitions — and restoring the
    /// pristine fast path (which requires an *empty* table) once
    /// everything has healed. Called when a new spontaneous partition is
    /// inserted, when the profile changes, and from the inert-profile
    /// delivery path while the table is non-empty; the per-traversal
    /// path reaps only the pair it touches.
    fn sweep_partitions(&mut self) {
        let now = self.now;
        let healed: Vec<(Arc<str>, Arc<str>)> = self
            .partitions
            .iter()
            .filter(|(_, heal)| heal.is_some_and(|at| now >= at))
            .map(|(key, _)| key.clone())
            .collect();
        for key in healed {
            self.partitions.remove(&key);
            self.trace(format!("chaos partition healed {} <-> {}", key.0, key.1));
        }
    }

    /// The trace rendering of one link traversal's receiving end: the
    /// addressed endpoint, plus the physical member host when they
    /// differ (multicast fan-out impairs each member's link separately).
    fn link_target(to: &SimAddr, dest_host: &Arc<str>) -> String {
        if to.host.as_ref() == dest_host.as_ref() {
            to.to_string()
        } else {
            format!("{to} (member {dest_host})")
        }
    }

    /// Decides the fate of one link traversal of a datagram between
    /// `from.host` and the *physical* receiving host `dest_host` — for a
    /// multicast fan-out that is the group member, not the group
    /// address, so partitions cut each member's link individually (see
    /// [`Impairments`] for the decision order). `deferrable` is false
    /// for egress traversals, where extra delay has no meaning.
    fn impair(
        &mut self,
        from: &SimAddr,
        to: &SimAddr,
        dest_host: &Arc<str>,
        deferrable: bool,
    ) -> Fate {
        if !self.pass.is_inert() && !self.pass.open_at(self.now, &from.host, dest_host) {
            let target = World::link_target(to, dest_host);
            self.trace(format!("pass closed {from} -> {target}"));
            return Fate::Dropped;
        }
        if self.impairments.is_inert() {
            if self.partitions.is_empty() {
                return Fate::Pristine;
            }
            // Inert profile but partitions linger (explicit ones, or
            // spontaneous ones that had not yet healed when the profile
            // was reset): reap the healed so the zero-cost path comes
            // back as soon as the table genuinely empties.
            self.sweep_partitions();
            if self.partitions.is_empty() {
                return Fate::Pristine;
            }
        }
        if self.partition_active(&from.host, dest_host) {
            let target = World::link_target(to, dest_host);
            self.trace(format!("chaos partition drop {from} -> {target}"));
            return Fate::Dropped;
        }
        if self.chaos_hits(self.impairments.partition_permille) {
            // Each insertion pays for reaping the already-healed entries,
            // so the table never outgrows the set of partitions spawned
            // within one window.
            self.sweep_partitions();
            let heal_at = self.now + self.impairments.partition_window;
            let key = World::pair_key(&from.host, dest_host);
            self.trace(format!("chaos partition {} <-> {} until {heal_at}", key.0, key.1));
            self.partitions.insert(key, Some(heal_at));
            let target = World::link_target(to, dest_host);
            self.trace(format!("chaos partition drop {from} -> {target}"));
            return Fate::Dropped;
        }
        if self.chaos_hits(self.impairments.drop_permille) {
            let target = World::link_target(to, dest_host);
            self.trace(format!("chaos drop {from} -> {target}"));
            return Fate::Dropped;
        }
        let copies = if self.chaos_hits(self.impairments.duplicate_permille) {
            let target = World::link_target(to, dest_host);
            self.trace(format!("chaos dup {from} -> {target}"));
            2
        } else {
            1
        };
        let mut plan = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut extra = SimDuration::ZERO;
            if deferrable {
                if self.impairments.jitter > SimDuration::ZERO {
                    extra = extra
                        + SimDuration::from_micros(
                            self.chaos_rng.gen_range(0..=self.impairments.jitter.as_micros()),
                        );
                }
                if self.chaos_hits(self.impairments.reorder_permille)
                    && self.impairments.reorder_window > SimDuration::ZERO
                {
                    extra = extra
                        + SimDuration::from_micros(
                            self.chaos_rng
                                .gen_range(1..=self.impairments.reorder_window.as_micros()),
                        );
                }
                if extra > SimDuration::ZERO {
                    let target = World::link_target(to, dest_host);
                    self.trace(format!("chaos delay {from} -> {target} +{extra}"));
                }
            }
            let corrupt = self.chaos_hits(self.impairments.corrupt_permille);
            plan.push((extra, corrupt));
        }
        Fate::Copies(plan)
    }

    /// Applies a corrupt verdict: XOR-flips one chaos-chosen payload
    /// byte (no-op — traced — on empty payloads).
    fn corrupt_payload(&mut self, from: &SimAddr, to: &SimAddr, payload: &Bytes) -> Bytes {
        if payload.is_empty() {
            self.trace(format!("chaos corrupt {from} -> {to} (empty payload, untouched)"));
            return payload.clone();
        }
        let index = self.chaos_rng.gen_range(0..payload.len() as u64) as usize;
        let flip = self.chaos_rng.gen_range(1u64..=255) as u8;
        self.trace(format!("chaos corrupt {from} -> {to} [{index}] ^{flip:#04x}"));
        let mut bytes = payload.to_vec();
        bytes[index] ^= flip;
        Bytes::from(bytes)
    }

    /// Materialises one chaos copy of `datagram`, corrupting the payload
    /// when the copy's plan says so.
    fn chaos_copy(&mut self, datagram: &Datagram, corrupt: bool) -> Datagram {
        let payload = if corrupt {
            self.corrupt_payload(&datagram.from, &datagram.to, &datagram.payload)
        } else {
            datagram.payload.clone()
        };
        Datagram { from: datagram.from.clone(), to: datagram.to.clone(), payload }
    }

    /// Schedules one impaired in-simulation delivery onto `to_host` (the
    /// physical receiver — the group member for multicast fan-out): the
    /// base modelled latency is sampled per copy (as an unimpaired send
    /// would), plus the copy's chaos deferral. The copy then rides the
    /// link layer: without a bandwidth model it is scheduled directly
    /// after its latency, otherwise it transmits through the fair-shared
    /// link first.
    fn deliver_datagram(&mut self, to_host: Arc<str>, datagram: Datagram) {
        match self.impair(&datagram.from, &datagram.to, &to_host, true) {
            Fate::Pristine => {
                let latency = self.latency();
                self.transmit(to_host, datagram, latency, false);
            }
            Fate::Dropped => {}
            Fate::Copies(plan) => {
                for (extra, corrupt) in plan {
                    let copy = self.chaos_copy(&datagram, corrupt);
                    let latency = self.latency();
                    self.transmit(to_host.clone(), copy, latency + extra, false);
                }
            }
        }
    }

    /// Queues one impaired egress traversal (loss/partition/duplication/
    /// corruption only — deferral has no meaning once bytes leave the
    /// virtual network). Under the bandwidth model the bytes still pay
    /// their transmission time through the shared link before appearing
    /// in the egress queue.
    fn queue_egress(&mut self, datagram: Datagram) {
        let dest_host = datagram.to.host.clone();
        match self.impair(&datagram.from, &datagram.to, &dest_host, false) {
            Fate::Pristine => self.transmit(dest_host, datagram, SimDuration::ZERO, true),
            Fate::Dropped => {}
            Fate::Copies(plan) => {
                for (_, corrupt) in plan {
                    let copy = self.chaos_copy(&datagram, corrupt);
                    self.transmit(dest_host.clone(), copy, SimDuration::ZERO, true);
                }
            }
        }
    }

    /// Hands one datagram copy to the link layer. With the bandwidth
    /// model off (`link_bandwidth == 0`, the default) this is exactly
    /// the pre-model behaviour — schedule after `tail`, or push egress
    /// immediately — at the cost of one branch. With a capacity set, the
    /// copy joins the fair-share fluid on its host-pair link, every
    /// in-flight transfer is re-settled, and `tail` is appended once the
    /// last byte leaves the link.
    fn transmit(&mut self, to_host: Arc<str>, datagram: Datagram, tail: SimDuration, egress: bool) {
        if self.link_bandwidth == 0 {
            if egress {
                self.egress.push(datagram);
            } else {
                let at = self.now + tail;
                self.schedule(at, to_host, EventKind::Datagram(datagram));
            }
            return;
        }
        let key = World::pair_key(&datagram.from.host, &to_host);
        let bandwidth = self.link_bandwidth;
        let now = self.now;
        let line = format!(
            "bw start {} -> {} ({} bytes)",
            datagram.from,
            World::link_target(&datagram.to, &to_host),
            datagram.payload.len()
        );
        // Empty payloads still cost one micro-byte so every transfer
        // passes through the tick machinery uniformly.
        let remaining = (datagram.payload.len() as u64).saturating_mul(1_000_000).max(1);
        let state = self.links.entry(key.clone()).or_insert_with(|| LinkState {
            updated: now,
            gen: 0,
            transfers: Vec::new(),
        });
        World::settle_link(state, now, bandwidth);
        state.transfers.push(Transfer { remaining, to_host, datagram, tail, egress });
        state.gen += 1;
        let gen = state.gen;
        let delta = World::next_tick_delta(state, bandwidth);
        self.trace(line);
        self.schedule(now + delta, key.0.clone(), EventKind::LinkTick { link: key, gen });
    }

    /// Settles the fluid model up to `now`: every in-flight transfer
    /// drains `capacity × Δt / n` micro-bytes of its fair share.
    fn settle_link(state: &mut LinkState, now: SimTime, bandwidth: u64) {
        let dt = now.since(state.updated).as_micros();
        state.updated = now;
        if dt == 0 || state.transfers.is_empty() {
            return;
        }
        let share = (u128::from(bandwidth) * u128::from(dt) / state.transfers.len() as u128) as u64;
        for transfer in &mut state.transfers {
            transfer.remaining = transfer.remaining.saturating_sub(share);
        }
    }

    /// Microseconds until the smallest in-flight transfer finishes at
    /// the current share — `ceil(min_remaining × n / capacity)`, so the
    /// settled progress at the tick is at least `min_remaining` and
    /// every tick completes at least one transfer (termination).
    fn next_tick_delta(state: &LinkState, bandwidth: u64) -> SimDuration {
        let min_remaining = state.transfers.iter().map(|t| t.remaining).min().unwrap_or(0);
        let n = state.transfers.len().max(1) as u128;
        let delta = (u128::from(min_remaining) * n).div_ceil(u128::from(bandwidth)).max(1);
        SimDuration::from_micros(delta as u64)
    }

    /// Whether a scheduled tick is still current for its link.
    fn link_tick_live(&self, link: &(Arc<str>, Arc<str>), gen: u64) -> bool {
        self.links.get(link).is_some_and(|state| state.gen == gen)
    }

    /// A live tick fired: settle the link, hand every finished transfer
    /// onward (in-sim deliveries pay their latency tail; egress copies
    /// surface in the egress queue), and reschedule for the remainder.
    fn on_link_tick(&mut self, key: (Arc<str>, Arc<str>)) {
        let bandwidth = self.link_bandwidth;
        let now = self.now;
        let (done, reschedule) = {
            let Some(state) = self.links.get_mut(&key) else { return };
            World::settle_link(state, now, bandwidth);
            let (done, rest): (Vec<Transfer>, Vec<Transfer>) =
                state.transfers.drain(..).partition(|t| t.remaining == 0);
            state.transfers = rest;
            if state.transfers.is_empty() {
                (done, None)
            } else {
                state.gen += 1;
                (done, Some((state.gen, World::next_tick_delta(state, bandwidth))))
            }
        };
        match reschedule {
            None => {
                self.links.remove(&key);
            }
            Some((gen, delta)) => {
                self.schedule(now + delta, key.0.clone(), EventKind::LinkTick { link: key, gen });
            }
        }
        for transfer in done {
            self.trace(format!(
                "bw done {} -> {}",
                transfer.datagram.from,
                World::link_target(&transfer.datagram.to, &transfer.to_host)
            ));
            if transfer.egress {
                self.egress.push(transfer.datagram);
            } else {
                let at = now + transfer.tail;
                self.schedule(at, transfer.to_host, EventKind::Datagram(transfer.datagram));
            }
        }
    }

    /// Bytes still in flight on the `a`↔`b` link (0 without the
    /// bandwidth model) — the saturation signal store-and-forward
    /// sessions consult before committing an egress leg.
    fn link_backlog_bytes(&self, a: &Arc<str>, b: &Arc<str>) -> u64 {
        if self.link_bandwidth == 0 {
            return 0;
        }
        let key = World::pair_key(a, b);
        self.links
            .get(&key)
            .map(|state| state.transfers.iter().map(|t| t.remaining.div_ceil(1_000_000)).sum())
            .unwrap_or(0)
    }

    /// Whether the `a`↔`b` link is currently usable: no active
    /// partition and (when a pass schedule is installed) an open
    /// connectivity window.
    fn link_usable(&mut self, a: &Arc<str>, b: &Arc<str>) -> bool {
        if self.partition_active(a, b) {
            return false;
        }
        self.pass.is_inert() || self.pass.open_at(self.now, a, b)
    }
}

/// The capabilities an actor has while handling an event.
#[derive(Debug)]
pub struct Context<'w> {
    world: &'w mut World,
    host: &'w Arc<str>,
}

impl Context<'_> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The host this actor runs on.
    pub fn host(&self) -> &str {
        self.host
    }

    /// Binds a UDP port on this host; datagrams addressed to it will be
    /// delivered to the actor.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::PortInUse`] when already bound.
    pub fn bind_udp(&mut self, port: u16) -> Result<()> {
        let key = (self.host.clone(), port);
        if !self.world.udp_bindings.insert(key) {
            return Err(NetError::PortInUse { host: self.host.as_ref().to_owned(), port });
        }
        Ok(())
    }

    /// Joins a multicast group endpoint (group address + port); all
    /// datagrams sent to the group are delivered to members.
    pub fn join_group(&mut self, group: SimAddr) {
        self.world.groups.entry(group).or_default().insert(self.host.clone());
    }

    /// Leaves a multicast group endpoint.
    pub fn leave_group(&mut self, group: &SimAddr) {
        if let Some(members) = self.world.groups.get_mut(group) {
            members.remove(self.host.as_ref());
        }
    }

    /// Sends a UDP datagram from `from_port` on this host. Multicast
    /// destinations fan out to every group member except the sender;
    /// unicast destinations are delivered when the target host has bound
    /// the port (silently dropped — and traced — otherwise, like real
    /// UDP).
    pub fn udp_send(&mut self, from_port: u16, to: SimAddr, payload: impl Into<Bytes>) {
        let payload: Bytes = payload.into();
        let from = SimAddr::new(self.host.clone(), from_port);
        if to.is_multicast() {
            let members: Vec<Arc<str>> = self
                .world
                .groups
                .get(&to)
                .map(|m| m.iter().filter(|h| h.as_ref() != self.host.as_ref()).cloned().collect())
                .unwrap_or_default();
            self.world.trace(format!(
                "udp multicast {from} -> {to} ({} bytes, {} members)",
                payload.len(),
                members.len()
            ));
            for member in members {
                self.world.deliver_datagram(
                    member,
                    Datagram { from: from.clone(), to: to.clone(), payload: payload.clone() },
                );
            }
            let external: Vec<SimAddr> = self
                .world
                .external_group_members
                .get(&to)
                .map(|m| m.iter().cloned().collect())
                .unwrap_or_default();
            for member in external {
                self.world.trace(format!("udp egress {from} -> {member} (group {to})"));
                self.world.queue_egress(Datagram {
                    from: from.clone(),
                    to: member,
                    payload: payload.clone(),
                });
            }
        } else if self.world.external_hosts.contains(&to.host) {
            self.world.trace(format!("udp egress {from} -> {to} ({} bytes)", payload.len()));
            self.world.queue_egress(Datagram { from, to, payload });
        } else {
            let bound = self.world.udp_bindings.contains(&(to.host.clone(), to.port));
            if bound {
                self.world.trace(format!("udp {from} -> {to} ({} bytes)", payload.len()));
                let to_host = to.host.clone();
                self.world.deliver_datagram(to_host, Datagram { from, to, payload });
            } else {
                self.world.trace(format!("udp {from} -> {to} dropped (no binding)"));
            }
        }
    }

    /// Starts listening for TCP connections on `port`.
    pub fn listen_tcp(&mut self, port: u16) {
        self.world.tcp_listeners.insert((self.host.clone(), port));
    }

    /// Opens a TCP connection to `to`. The listener receives
    /// [`TcpEvent::Accepted`] after one latency, the initiator
    /// [`TcpEvent::Connected`] after two (SYN → SYN/ACK).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] when nothing listens at
    /// the destination.
    pub fn tcp_connect(&mut self, to: SimAddr) -> Result<ConnId> {
        if !self.world.tcp_listeners.contains(&(to.host.clone(), to.port)) {
            return Err(NetError::ConnectionRefused {
                host: to.host.as_ref().to_owned(),
                port: to.port,
            });
        }
        let local = self.host.clone();
        if self.world.partition_active(&local, &to.host) {
            self.world.trace(format!("chaos partition refused tcp {local} -> {to}"));
            return Err(NetError::ConnectionRefused {
                host: to.host.as_ref().to_owned(),
                port: to.port,
            });
        }
        let conn = self.world.next_conn;
        self.world.next_conn += 1;
        let local_port = self.world.next_ephemeral;
        self.world.next_ephemeral = self.world.next_ephemeral.wrapping_add(1).max(49152);
        let initiator = SimAddr::new(self.host.clone(), local_port);
        self.world.connections.insert(
            conn,
            Connection { initiator: initiator.clone(), target: to.clone(), open: true },
        );
        self.world.trace(format!("tcp connect {initiator} -> {to} (#{conn})"));
        let one_way = self.world.latency();
        let accepted_at = self.world.now + one_way;
        self.world.schedule(
            accepted_at,
            to.host.clone(),
            EventKind::TcpAccepted { conn, peer: initiator, local_port: to.port },
        );
        let back = self.world.latency();
        let connected_at = accepted_at + back;
        self.world.schedule(
            connected_at,
            self.host.clone(),
            EventKind::TcpConnected { conn, peer: to },
        );
        Ok(ConnId(conn))
    }

    /// Sends stream data on an open connection; delivered to the peer
    /// after one latency.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotConnected`] for unknown/closed connections.
    pub fn tcp_send(&mut self, conn: ConnId, payload: impl Into<Bytes>) -> Result<()> {
        let payload: Bytes = payload.into();
        let (peer_host, description) = {
            let connection = self
                .world
                .connections
                .get(&conn.0)
                .filter(|c| c.open)
                .ok_or(NetError::NotConnected(conn.0))?;
            let peer = if connection.initiator.host.as_ref() == self.host.as_ref() {
                connection.target.host.clone()
            } else {
                connection.initiator.host.clone()
            };
            (
                peer.clone(),
                format!("tcp data #{} {} -> {peer} ({} bytes)", conn.0, self.host, payload.len()),
            )
        };
        self.world.trace(description);
        if self.world.external_hosts.contains(&peer_host) {
            // The far end is a real endpoint behind a gateway loop: the
            // bytes leave the simulation instead of being scheduled (the
            // real network pays its own latency).
            self.world.tcp_egress.push(ExternalTcpEvent::Data { conn, payload });
            return Ok(());
        }
        let latency = self.world.latency();
        let at = self.world.now + latency;
        self.world.schedule(at, peer_host, EventKind::TcpData { conn: conn.0, payload });
        Ok(())
    }

    /// Closes a connection; the peer receives [`TcpEvent::Closed`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotConnected`] for unknown/closed connections.
    pub fn tcp_close(&mut self, conn: ConnId) -> Result<()> {
        let peer_host = {
            let connection = self
                .world
                .connections
                .get_mut(&conn.0)
                .filter(|c| c.open)
                .ok_or(NetError::NotConnected(conn.0))?;
            connection.open = false;
            if connection.initiator.host.as_ref() == self.host.as_ref() {
                connection.target.host.clone()
            } else {
                connection.initiator.host.clone()
            }
        };
        self.world.trace(format!("tcp close #{} by {}", conn.0, self.host));
        if self.world.external_hosts.contains(&peer_host) {
            self.world.tcp_egress.push(ExternalTcpEvent::Closed { conn });
            return Ok(());
        }
        let latency = self.world.latency();
        let at = self.world.now + latency;
        self.world.schedule(at, peer_host, EventKind::TcpClosed { conn: conn.0 });
        Ok(())
    }

    /// Schedules a timer for this actor after `delay`; `tag` is returned
    /// to [`Actor::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = self.world.next_timer;
        self.world.next_timer += 1;
        let at = self.world.now + delay;
        self.world.schedule(at, self.host.clone(), EventKind::Timer { id, tag });
        TimerId(id)
    }

    /// Cancels a pending timer (firing becomes a no-op).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.world.cancelled_timers.insert(timer.0);
    }

    /// Uniform random integer in `[lo, hi]` from the simulation's seeded
    /// stream (for protocol-level jitter like SSDP's MX backoff).
    pub fn rand_range(&mut self, lo: u64, hi: u64) -> u64 {
        self.world.rng.gen_range(lo..=hi.max(lo))
    }

    /// Whether the link(s) from this host towards `to` are currently
    /// usable: no active partition and — when a [`PassSchedule`] is
    /// installed — an open connectivity window. Multicast destinations
    /// check every in-simulation group member; external endpoints are
    /// gated exactly like in-simulation hosts (the egress queue passes
    /// through the same impairment pipeline, so what this predicate
    /// promises is what the pipeline will do). This is the signal a
    /// store-and-forward session consults before committing an egress
    /// leg.
    pub fn link_open(&mut self, to: &SimAddr) -> bool {
        if to.is_multicast() {
            let members: Vec<Arc<str>> = self
                .world
                .groups
                .get(to)
                .map(|m| m.iter().filter(|h| h.as_ref() != self.host.as_ref()).cloned().collect())
                .unwrap_or_default();
            members.iter().all(|member| {
                let host = self.host.clone();
                self.world.link_usable(&host, member)
            })
        } else {
            let host = self.host.clone();
            self.world.link_usable(&host, &to.host)
        }
    }

    /// Bytes still in transmission on the shared link(s) between this
    /// host and `to` (the worst member for multicast; always 0 without
    /// the bandwidth model) — the saturation signal complementing
    /// [`Context::link_open`].
    pub fn link_backlog(&self, to: &SimAddr) -> u64 {
        if to.is_multicast() {
            self.world
                .groups
                .get(to)
                .map(|members| {
                    members
                        .iter()
                        .filter(|h| h.as_ref() != self.host.as_ref())
                        .map(|member| self.world.link_backlog_bytes(self.host, member))
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        } else {
            self.world.link_backlog_bytes(self.host, &to.host)
        }
    }

    /// Appends a line to the simulation trace.
    pub fn trace(&mut self, description: impl Into<String>) {
        self.world.trace(description.into());
    }
}

/// The simulation: hosts, clock and event queue.
///
/// ```
/// use starlink_net::{SimNet, Actor, Context, Datagram, SimAddr};
///
/// struct Echo;
/// impl Actor for Echo {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         ctx.bind_udp(9).unwrap();
///     }
///     fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
///         ctx.udp_send(9, datagram.from, datagram.payload);
///     }
/// }
///
/// struct Probe;
/// impl Actor for Probe {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         ctx.bind_udp(1000).unwrap();
///         ctx.udp_send(1000, SimAddr::new("10.0.0.2", 9), &b"ping"[..]);
///     }
/// }
///
/// // Start order matters: the echo server must bind its port before the
/// // probe's datagram is sent (actors start in registration order).
/// let mut sim = SimNet::new(42);
/// sim.add_actor("10.0.0.2", Echo);
/// sim.add_actor("10.0.0.1", Probe);
/// sim.run_until_idle();
/// assert!(sim.now().as_micros() > 0);
/// ```
#[derive(Debug)]
pub struct SimNet {
    world: World,
    actors: BTreeMap<Arc<str>, Option<Box<dyn Actor>>>,
}

impl std::fmt::Debug for dyn Actor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Actor")
    }
}

impl SimNet {
    /// Creates a simulation seeded with `seed` (identical seeds replay
    /// identical runs).
    pub fn new(seed: u64) -> Self {
        SimNet {
            world: World {
                now: SimTime::ZERO,
                seq: 0,
                events: BinaryHeap::new(),
                rng: StdRng::seed_from_u64(seed),
                latency: LatencyModel::default(),
                udp_bindings: BTreeSet::new(),
                groups: BTreeMap::new(),
                tcp_listeners: BTreeSet::new(),
                connections: BTreeMap::new(),
                next_conn: 1,
                next_ephemeral: 49152,
                next_timer: 1,
                cancelled_timers: BTreeSet::new(),
                trace: Vec::new(),
                hosts: BTreeSet::new(),
                external_hosts: BTreeSet::new(),
                external_group_members: BTreeMap::new(),
                egress: Vec::new(),
                tcp_egress: Vec::new(),
                impairments: Impairments::none(),
                // A distinct stream from the latency RNG: the same seed
                // drives both, but chaos draws never shift latency
                // samples (and vice versa).
                chaos_rng: StdRng::seed_from_u64(seed ^ 0xC4A0_5EED_0000_0001),
                partitions: BTreeMap::new(),
                link_bandwidth: 0,
                links: BTreeMap::new(),
                pass: PassSchedule::always_open(),
            },
            actors: BTreeMap::new(),
        }
    }

    /// Replaces the impairment profile (default: [`Impairments::none`]).
    /// Takes effect for every subsequent link traversal. Healed
    /// partitions are swept, so resetting to the inert profile restores
    /// the zero-cost delivery path once no partition remains active.
    pub fn set_impairments(&mut self, impairments: Impairments) {
        self.world.sweep_partitions();
        self.world.impairments = impairments;
    }

    /// The active impairment profile.
    pub fn impairments(&self) -> &Impairments {
        &self.world.impairments
    }

    /// Sets the shared per-link capacity in bytes per second. `0` — the
    /// default — disables the bandwidth model: delivery times come from
    /// the latency model alone and a run replays bit-identically to one
    /// that never heard of bandwidth. Any other value routes every
    /// datagram copy through a fair-share fluid on its host-pair link:
    /// all concurrent transfers split the capacity equally, re-settled
    /// on every transfer start and finish, and the sampled latency is
    /// appended after transmission (so the model *composes with* rather
    /// than replaces the latency draws and [`Impairments`]).
    pub fn set_link_bandwidth(&mut self, bytes_per_sec: u64) {
        self.world.link_bandwidth = bytes_per_sec;
    }

    /// The shared per-link capacity in bytes per second (`0` =
    /// unlimited).
    pub fn link_bandwidth(&self) -> u64 {
        self.world.link_bandwidth
    }

    /// Installs a connectivity [`PassSchedule`] (default:
    /// [`PassSchedule::always_open`], which gates nothing and keeps the
    /// replay bit-identical).
    pub fn set_pass_schedule(&mut self, pass: PassSchedule) {
        self.world.pass = pass;
    }

    /// The active pass schedule.
    pub fn pass_schedule(&self) -> &PassSchedule {
        &self.world.pass
    }

    /// Partitions hosts `a` and `b` from each other until
    /// [`SimNet::heal_partition`]: datagrams between them are dropped
    /// (and traced) and new TCP connections are refused. Established TCP
    /// connections are untouched (TCP models a reliable transport).
    pub fn partition(&mut self, a: impl Into<Arc<str>>, b: impl Into<Arc<str>>) {
        let key = World::pair_key(&a.into(), &b.into());
        self.world.trace(format!("chaos partition {} <-> {} until healed", key.0, key.1));
        self.world.partitions.insert(key, None);
    }

    /// Partitions hosts `a` and `b` for `window`, healing automatically.
    pub fn partition_for(
        &mut self,
        a: impl Into<Arc<str>>,
        b: impl Into<Arc<str>>,
        window: SimDuration,
    ) {
        let heal_at = self.world.now + window;
        let key = World::pair_key(&a.into(), &b.into());
        self.world.trace(format!("chaos partition {} <-> {} until {heal_at}", key.0, key.1));
        self.world.partitions.insert(key, Some(heal_at));
    }

    /// Heals the partition between `a` and `b`, if one is active.
    pub fn heal_partition(&mut self, a: impl Into<Arc<str>>, b: impl Into<Arc<str>>) {
        let key = World::pair_key(&a.into(), &b.into());
        if self.world.partitions.remove(&key).is_some() {
            self.world.trace(format!("chaos partition healed {} <-> {}", key.0, key.1));
        }
    }

    /// The whole trace as one newline-terminated text block
    /// (`<micros> <description>` per line) — the byte-comparable form the
    /// chaos determinism tests and failure dumps use.
    pub fn trace_text(&self) -> String {
        let mut out = String::new();
        for entry in &self.world.trace {
            out.push_str(&format!("{} {}\n", entry.at.as_micros(), entry.description));
        }
        out
    }

    /// Declares `host` as living outside the simulation: unicast
    /// datagrams addressed to it are queued for [`SimNet::drain_egress`]
    /// instead of being dropped. A gateway loop (e.g. the realnet
    /// [`crate::UdpBridge`]) forwards them over real sockets.
    pub fn register_external_host(&mut self, host: impl Into<Arc<str>>) {
        self.world.external_hosts.insert(host.into());
    }

    /// Registers an endpoint outside the simulation as a member of a
    /// multicast `group`; group sends fan out to it through the egress
    /// queue.
    pub fn join_group_external(&mut self, group: SimAddr, member: SimAddr) {
        self.world.external_group_members.entry(group).or_default().insert(member);
    }

    /// Injects a datagram arriving from outside the simulation; it is
    /// delivered to `datagram.to.host` at the current virtual time (the
    /// real network already paid its latency). The sender's host is
    /// implicitly registered as external so replies can leave again.
    pub fn inject_datagram(&mut self, datagram: Datagram) {
        self.world.external_hosts.insert(datagram.from.host.clone());
        let host = datagram.to.host.clone();
        match self.world.impair(&datagram.from, &datagram.to, &host, true) {
            Fate::Pristine => {
                self.world.transmit(host, datagram, SimDuration::ZERO, false);
            }
            Fate::Dropped => {}
            Fate::Copies(plan) => {
                for (extra, corrupt) in plan {
                    let copy = self.world.chaos_copy(&datagram, corrupt);
                    self.world.transmit(host.clone(), copy, extra, false);
                }
            }
        }
    }

    /// Drains the datagrams queued for external endpoints since the last
    /// call.
    pub fn drain_egress(&mut self) -> Vec<Datagram> {
        std::mem::take(&mut self.world.egress)
    }

    /// Drains queued egress datagrams into `out` (cleared first), so a
    /// gateway loop can reuse one buffer across pump iterations instead
    /// of allocating a fresh `Vec` per call.
    pub fn drain_egress_into(&mut self, out: &mut Vec<Datagram>) {
        out.clear();
        out.append(&mut self.world.egress);
    }

    /// Opens a TCP connection *into* the simulation from an external
    /// endpoint `from` (implicitly registered as an external host): the
    /// listener at `to` receives [`TcpEvent::Accepted`] at the current
    /// virtual time, and the returned [`ConnId`] can immediately carry
    /// [`SimNet::inject_tcp_data`] — injected events keep their order.
    /// Data the simulated side sends on the connection leaves through
    /// [`SimNet::drain_tcp_egress`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::ConnectionRefused`] when nothing listens at
    /// `to`.
    pub fn external_tcp_connect(&mut self, from: SimAddr, to: SimAddr) -> Result<ConnId> {
        if !self.world.tcp_listeners.contains(&(to.host.clone(), to.port)) {
            return Err(NetError::ConnectionRefused {
                host: to.host.as_ref().to_owned(),
                port: to.port,
            });
        }
        if self.world.partition_active(&from.host, &to.host) {
            self.world.trace(format!("chaos partition refused tcp {from} -> {to}"));
            return Err(NetError::ConnectionRefused {
                host: to.host.as_ref().to_owned(),
                port: to.port,
            });
        }
        self.world.external_hosts.insert(from.host.clone());
        let conn = self.world.next_conn;
        self.world.next_conn += 1;
        self.world
            .connections
            .insert(conn, Connection { initiator: from.clone(), target: to.clone(), open: true });
        self.world.trace(format!("tcp connect (external) {from} -> {to} (#{conn})"));
        let now = self.world.now;
        self.world.schedule(
            now,
            to.host.clone(),
            EventKind::TcpAccepted { conn, peer: from, local_port: to.port },
        );
        Ok(ConnId(conn))
    }

    /// Injects stream data arriving from the external end of `conn`,
    /// delivered to the simulated side at the current virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotConnected`] for unknown or closed
    /// connections.
    pub fn inject_tcp_data(&mut self, conn: ConnId, payload: impl Into<Bytes>) -> Result<()> {
        let payload: Bytes = payload.into();
        let sim_host = self.external_conn_sim_side(conn)?;
        let now = self.world.now;
        self.world.schedule(now, sim_host, EventKind::TcpData { conn: conn.0, payload });
        Ok(())
    }

    /// Injects a close from the external end of `conn`; the simulated
    /// side receives [`TcpEvent::Closed`] at the current virtual time.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotConnected`] for unknown or closed
    /// connections.
    pub fn inject_tcp_close(&mut self, conn: ConnId) -> Result<()> {
        let sim_host = self.external_conn_sim_side(conn)?;
        if let Some(connection) = self.world.connections.get_mut(&conn.0) {
            connection.open = false;
        }
        let now = self.world.now;
        self.world.schedule(now, sim_host, EventKind::TcpClosed { conn: conn.0 });
        Ok(())
    }

    /// The simulated end of a connection with one external endpoint.
    fn external_conn_sim_side(&self, conn: ConnId) -> Result<Arc<str>> {
        let connection = self
            .world
            .connections
            .get(&conn.0)
            .filter(|c| c.open)
            .ok_or(NetError::NotConnected(conn.0))?;
        Ok(if self.world.external_hosts.contains(&connection.initiator.host) {
            connection.target.host.clone()
        } else {
            connection.initiator.host.clone()
        })
    }

    /// Drains the TCP events queued for external endpoints since the
    /// last call.
    pub fn drain_tcp_egress(&mut self) -> Vec<ExternalTcpEvent> {
        std::mem::take(&mut self.world.tcp_egress)
    }

    /// Delivers an out-of-band control payload to the actor at `host`
    /// **immediately**, at the current virtual time — control commands
    /// do not travel the simulated wire, so they are never impaired,
    /// delayed or gated by pass schedules. No-op (traced) when the host
    /// runs no actor.
    pub fn deliver_control(&mut self, host: &str, payload: Box<dyn std::any::Any + Send>) {
        let Some(slot) = self.actors.get_mut(host) else {
            self.world.trace(format!("control payload for unknown host {host} dropped"));
            return;
        };
        let Some(mut actor) = slot.take() else {
            return;
        };
        let host: Arc<str> = Arc::from(host);
        {
            let mut ctx = Context { world: &mut self.world, host: &host };
            actor.on_control(&mut ctx, payload);
        }
        if let Some(slot) = self.actors.get_mut(&host) {
            *slot = Some(actor);
        }
    }

    /// Replaces the latency model (default: [`LatencyModel::local_machine`]).
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.world.latency = latency;
    }

    /// Adds a host running `actor`; its [`Actor::on_start`] runs as the
    /// first event at the current virtual time.
    pub fn add_actor(&mut self, host: impl Into<String>, actor: impl Actor + 'static) {
        let host: Arc<str> = Arc::from(host.into());
        self.world.hosts.insert(host.clone());
        self.actors.insert(host.clone(), Some(Box::new(actor)));
        let now = self.world.now;
        self.world.schedule(now, host, EventKind::Start);
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The delivery trace accumulated so far.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.world.trace
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.world.events.len()
    }

    fn dispatch(&mut self, event: Event) {
        // Take the actor out of its slot so the context can borrow the
        // world mutably; single-threaded, so the slot cannot be observed
        // empty by anyone else.
        let Some(slot) = self.actors.get_mut(&event.host) else {
            return;
        };
        let Some(mut actor) = slot.take() else {
            return;
        };
        {
            let mut ctx = Context { world: &mut self.world, host: &event.host };
            match event.kind {
                EventKind::Start => actor.on_start(&mut ctx),
                EventKind::Datagram(datagram) => actor.on_datagram(&mut ctx, datagram),
                EventKind::TcpAccepted { conn, peer, local_port } => actor
                    .on_tcp(&mut ctx, TcpEvent::Accepted { conn: ConnId(conn), peer, local_port }),
                EventKind::TcpConnected { conn, peer } => {
                    actor.on_tcp(&mut ctx, TcpEvent::Connected { conn: ConnId(conn), peer })
                }
                EventKind::TcpData { conn, payload } => {
                    actor.on_tcp(&mut ctx, TcpEvent::Data { conn: ConnId(conn), payload })
                }
                EventKind::TcpClosed { conn } => {
                    actor.on_tcp(&mut ctx, TcpEvent::Closed { conn: ConnId(conn) })
                }
                EventKind::Timer { tag, .. } => actor.on_timer(&mut ctx, tag),
                // Link ticks are consumed by the event loop before
                // dispatch ever sees them.
                EventKind::LinkTick { .. } => unreachable!("link ticks never reach dispatch"),
            }
        }
        if let Some(slot) = self.actors.get_mut(&event.host) {
            *slot = Some(actor);
        }
    }

    /// Drops the event without dispatching when it is a cancelled timer.
    /// Cancelled timers do not advance the virtual clock either — they
    /// were revoked before firing, so time must not fast-forward to them
    /// (a completed bridge session cancelling its idle-expiry timer must
    /// not stretch `run_until_idle` by the timeout).
    fn consume_if_cancelled(&mut self, event: &Event) -> bool {
        if let EventKind::Timer { id, .. } = &event.kind {
            if self.world.cancelled_timers.remove(id) {
                return true;
            }
        }
        false
    }

    /// Link ticks are simulator-internal: a live one advances the clock
    /// and settles its link; a stale one (the link's generation moved
    /// on) is skipped without advancing the clock, exactly like a
    /// cancelled timer. Returns whether the event was consumed here.
    fn consume_link_tick(&mut self, event: &Event) -> Option<bool> {
        let EventKind::LinkTick { link, gen } = &event.kind else {
            return None;
        };
        if !self.world.link_tick_live(link, *gen) {
            return Some(false);
        }
        let link = link.clone();
        self.world.now = event.at;
        self.world.on_link_tick(link);
        Some(true)
    }

    /// Processes the next event; returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(Reverse(event)) = self.world.events.pop() else {
                return false;
            };
            if self.consume_if_cancelled(&event) {
                continue;
            }
            match self.consume_link_tick(&event) {
                Some(true) => return true,
                Some(false) => continue,
                None => {}
            }
            self.world.now = event.at;
            self.dispatch(event);
            return true;
        }
    }

    /// Runs until no events remain, returning the final virtual time.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.world.now
    }

    /// Runs until the queue is empty or the next event is after
    /// `deadline`; the clock never advances beyond processed events.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            match self.world.events.peek() {
                Some(Reverse(event)) if event.at <= deadline => {
                    let Reverse(event) = self.world.events.pop().expect("peeked");
                    if self.consume_if_cancelled(&event) {
                        continue;
                    }
                    if self.consume_link_tick(&event).is_some() {
                        continue;
                    }
                    self.world.now = event.at;
                    self.dispatch(event);
                }
                _ => break,
            }
        }
        self.world.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Records every datagram payload it receives.
    struct Sink {
        port: u16,
        group: Option<SimAddr>,
        received: Arc<AtomicUsize>,
    }

    impl Actor for Sink {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(self.port).unwrap();
            if let Some(group) = self.group.clone() {
                ctx.join_group(group);
            }
        }
        fn on_datagram(&mut self, _ctx: &mut Context<'_>, _datagram: Datagram) {
            self.received.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Sends one unicast datagram at start.
    struct OneShot {
        to: SimAddr,
    }

    impl Actor for OneShot {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(5000).unwrap();
            ctx.udp_send(5000, self.to.clone(), &b"hello"[..]);
        }
    }

    #[test]
    fn unicast_delivery_advances_clock() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(1);
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        let end = sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 1);
        assert!(end.as_micros() >= 200, "latency applied");
    }

    #[test]
    fn datagram_to_unbound_port_is_dropped() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(1);
        sim.add_actor("10.0.0.2", Sink { port: 81, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert!(sim.trace().iter().any(|t| t.description.contains("dropped")));
    }

    #[test]
    fn multicast_fans_out_excluding_sender() {
        let group = SimAddr::new("239.255.255.250", 1900);
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(2);
        sim.add_actor(
            "10.0.0.2",
            Sink { port: 1900, group: Some(group.clone()), received: a.clone() },
        );
        sim.add_actor(
            "10.0.0.3",
            Sink { port: 1900, group: Some(group.clone()), received: b.clone() },
        );

        struct Caster {
            group: SimAddr,
        }
        impl Actor for Caster {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(1900).unwrap();
                ctx.join_group(self.group.clone());
                ctx.udp_send(1900, self.group.clone(), &b"M-SEARCH"[..]);
            }
        }
        sim.add_actor("10.0.0.1", Caster { group });
        sim.run_until_idle();
        assert_eq!(a.load(Ordering::SeqCst), 1);
        assert_eq!(b.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        fn run(seed: u64) -> (SimTime, usize) {
            let received = Arc::new(AtomicUsize::new(0));
            let mut sim = SimNet::new(seed);
            sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
            sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
            (sim.run_until_idle(), sim.trace().len())
        }
        assert_eq!(run(7), run(7));
        // Different seeds give different latencies (with high probability).
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn tcp_handshake_data_and_close() {
        struct Server {
            log: Arc<AtomicU64>,
        }
        impl Actor for Server {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(80);
            }
            fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
                match event {
                    TcpEvent::Accepted { .. } => {
                        self.log.fetch_add(1, Ordering::SeqCst);
                    }
                    TcpEvent::Data { conn, payload } => {
                        assert_eq!(&payload[..], b"GET /");
                        self.log.fetch_add(10, Ordering::SeqCst);
                        ctx.tcp_send(conn, &b"200 OK"[..]).unwrap();
                    }
                    TcpEvent::Closed { .. } => {
                        self.log.fetch_add(100, Ordering::SeqCst);
                    }
                    TcpEvent::Connected { .. } => unreachable!(),
                }
            }
        }
        struct Client {
            log: Arc<AtomicU64>,
        }
        impl Actor for Client {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.tcp_connect(SimAddr::new("10.0.0.2", 80)).unwrap();
            }
            fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
                match event {
                    TcpEvent::Connected { conn, .. } => {
                        self.log.fetch_add(1000, Ordering::SeqCst);
                        ctx.tcp_send(conn, &b"GET /"[..]).unwrap();
                    }
                    TcpEvent::Data { conn, payload } => {
                        assert_eq!(&payload[..], b"200 OK");
                        self.log.fetch_add(10000, Ordering::SeqCst);
                        ctx.tcp_close(conn).unwrap();
                    }
                    _ => {}
                }
            }
        }
        let server_log = Arc::new(AtomicU64::new(0));
        let client_log = Arc::new(AtomicU64::new(0));
        let mut sim = SimNet::new(3);
        sim.add_actor("10.0.0.2", Server { log: server_log.clone() });
        sim.add_actor("10.0.0.1", Client { log: client_log.clone() });
        sim.run_until_idle();
        assert_eq!(server_log.load(Ordering::SeqCst), 111); // accept + data + close
        assert_eq!(client_log.load(Ordering::SeqCst), 11000); // connected + data
    }

    #[test]
    fn tcp_connect_refused_without_listener() {
        struct Lonely;
        impl Actor for Lonely {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let err = ctx.tcp_connect(SimAddr::new("10.0.0.9", 80)).unwrap_err();
                assert!(matches!(err, NetError::ConnectionRefused { .. }));
            }
        }
        let mut sim = SimNet::new(4);
        sim.add_actor("10.0.0.1", Lonely);
        sim.run_until_idle();
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        use std::sync::Mutex;
        struct Timed {
            fired: Arc<Mutex<Vec<u64>>>,
        }
        impl Actor for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
                let cancel_me = ctx.set_timer(SimDuration::from_millis(5), 2);
                ctx.set_timer(SimDuration::from_millis(20), 3);
                ctx.cancel_timer(cancel_me);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
                self.fired.lock().unwrap().push(tag);
                assert!(ctx.now() >= SimTime::from_millis(10));
            }
        }
        let fired = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimNet::new(5);
        sim.add_actor("10.0.0.1", Timed { fired: fired.clone() });
        sim.run_until_idle();
        assert_eq!(*fired.lock().unwrap(), vec![1, 3]); // tag 2 cancelled
    }

    #[test]
    fn run_until_respects_deadline() {
        struct Late;
        impl Actor for Late {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_secs(10), 0);
            }
        }
        let mut sim = SimNet::new(6);
        sim.add_actor("10.0.0.1", Late);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.pending_events(), 1);
        assert!(sim.now() <= SimTime::from_millis(100));
    }

    #[test]
    fn double_bind_rejected() {
        struct Binder;
        impl Actor for Binder {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(427).unwrap();
                assert!(matches!(ctx.bind_udp(427), Err(NetError::PortInUse { .. })));
            }
        }
        let mut sim = SimNet::new(7);
        sim.add_actor("10.0.0.1", Binder);
        sim.run_until_idle();
    }

    #[test]
    fn cancelled_timer_does_not_advance_clock() {
        struct Canceller;
        impl Actor for Canceller {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
                let late = ctx.set_timer(SimDuration::from_secs(60), 2);
                ctx.cancel_timer(late);
            }
        }
        let mut sim = SimNet::new(11);
        sim.add_actor("10.0.0.1", Canceller);
        let end = sim.run_until_idle();
        assert_eq!(end, SimTime::from_millis(1), "cancelled timer stretched the run to {end:?}");
    }

    #[test]
    fn external_unicast_is_queued_for_egress() {
        let mut sim = SimNet::new(12);
        sim.register_external_host("127.0.0.1");
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("127.0.0.1", 9000) });
        sim.run_until_idle();
        let egress = sim.drain_egress();
        assert_eq!(egress.len(), 1);
        assert_eq!(egress[0].to, SimAddr::new("127.0.0.1", 9000));
        assert_eq!(&egress[0].payload[..], b"hello");
        assert!(sim.drain_egress().is_empty(), "drain consumes the queue");
    }

    #[test]
    fn external_group_member_receives_multicast_via_egress() {
        let group = SimAddr::new("239.0.0.9", 4000);
        let mut sim = SimNet::new(13);
        sim.join_group_external(group.clone(), SimAddr::new("127.0.0.1", 5555));
        struct Caster {
            group: SimAddr,
        }
        impl Actor for Caster {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(4000).unwrap();
                ctx.udp_send(4000, self.group.clone(), &b"hi"[..]);
            }
        }
        sim.add_actor("10.0.0.1", Caster { group });
        sim.run_until_idle();
        let egress = sim.drain_egress();
        assert_eq!(egress.len(), 1);
        assert_eq!(egress[0].to, SimAddr::new("127.0.0.1", 5555));
    }

    #[test]
    fn injected_datagram_is_delivered_and_reply_leaves_again() {
        struct Echo;
        impl Actor for Echo {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(9).unwrap();
            }
            fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
                ctx.udp_send(9, datagram.from, datagram.payload);
            }
        }
        let mut sim = SimNet::new(14);
        sim.add_actor("10.0.0.2", Echo);
        sim.run_until_idle();
        sim.inject_datagram(Datagram {
            from: SimAddr::new("127.0.0.1", 40_001),
            to: SimAddr::new("10.0.0.2", 9),
            payload: Bytes::copy_from_slice(b"ping"),
        });
        sim.run_until_idle();
        let egress = sim.drain_egress();
        assert_eq!(egress.len(), 1, "reply to the external sender left the sim");
        assert_eq!(egress[0].to, SimAddr::new("127.0.0.1", 40_001));
        assert_eq!(&egress[0].payload[..], b"ping");
    }

    #[test]
    fn external_tcp_connect_delivers_and_replies_leave_via_tcp_egress() {
        struct Server {
            closes: Arc<AtomicUsize>,
        }
        impl Actor for Server {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(80);
            }
            fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
                match event {
                    TcpEvent::Data { conn, payload } => {
                        assert_eq!(&payload[..], b"GET /");
                        ctx.tcp_send(conn, &b"200 OK"[..]).unwrap();
                    }
                    TcpEvent::Closed { .. } => {
                        self.closes.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {}
                }
            }
        }
        let closes = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(15);
        sim.add_actor("10.0.0.2", Server { closes: closes.clone() });
        sim.run_until_idle();

        let from = SimAddr::new("127.0.0.1", 50_000);
        let conn = sim.external_tcp_connect(from, SimAddr::new("10.0.0.2", 80)).unwrap();
        sim.inject_tcp_data(conn, &b"GET /"[..]).unwrap();
        sim.run_until_idle();
        let egress = sim.drain_tcp_egress();
        assert_eq!(egress.len(), 1);
        let ExternalTcpEvent::Data { conn: got, payload } = &egress[0] else {
            panic!("expected data, got {egress:?}");
        };
        assert_eq!(*got, conn);
        assert_eq!(&payload[..], b"200 OK");
        assert!(sim.drain_tcp_egress().is_empty(), "drain consumes the queue");

        sim.inject_tcp_close(conn).unwrap();
        sim.run_until_idle();
        assert_eq!(closes.load(Ordering::SeqCst), 1, "server saw the external close");
        assert!(sim.inject_tcp_data(conn, &b"late"[..]).is_err(), "closed conn rejects data");
    }

    #[test]
    fn external_tcp_connect_refused_without_listener() {
        let mut sim = SimNet::new(16);
        let err = sim
            .external_tcp_connect(SimAddr::new("127.0.0.1", 50_001), SimAddr::new("10.0.0.9", 80))
            .unwrap_err();
        assert!(matches!(err, NetError::ConnectionRefused { .. }));
    }

    #[test]
    fn sim_actor_close_towards_external_peer_queues_tcp_egress() {
        struct Closer;
        impl Actor for Closer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(80);
            }
            fn on_tcp(&mut self, ctx: &mut Context<'_>, event: TcpEvent) {
                if let TcpEvent::Accepted { conn, .. } = event {
                    ctx.tcp_close(conn).unwrap();
                }
            }
        }
        let mut sim = SimNet::new(17);
        sim.add_actor("10.0.0.2", Closer);
        sim.run_until_idle();
        let conn = sim
            .external_tcp_connect(SimAddr::new("127.0.0.1", 50_002), SimAddr::new("10.0.0.2", 80))
            .unwrap();
        sim.run_until_idle();
        assert_eq!(sim.drain_tcp_egress(), vec![ExternalTcpEvent::Closed { conn }]);
    }

    /// An `Impairments` profile with everything off — the base the chaos
    /// tests tweak one knob at a time.
    fn profile() -> Impairments {
        Impairments::none()
    }

    #[test]
    fn inert_profile_changes_nothing() {
        // A sim with the inert profile explicitly set must replay
        // bit-identically to one that never touched impairments (zero
        // chaos draws, identical latency stream, identical trace).
        fn run(set_profile: bool) -> (SimTime, String) {
            let received = Arc::new(AtomicUsize::new(0));
            let mut sim = SimNet::new(21);
            if set_profile {
                sim.set_impairments(Impairments::none());
            }
            sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received });
            sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
            sim.run_until_idle();
            (sim.now(), sim.trace_text())
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn full_drop_loses_every_datagram_and_traces_it() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(22);
        sim.set_impairments(Impairments { drop_permille: 1000, ..profile() });
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert!(sim.trace_text().contains("chaos drop"), "trace: {}", sim.trace_text());
    }

    #[test]
    fn duplication_delivers_an_extra_copy() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(23);
        sim.set_impairments(Impairments { duplicate_permille: 1000, ..profile() });
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 2);
        assert!(sim.trace_text().contains("chaos dup"));
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        use std::sync::Mutex;
        struct Capture {
            seen: Arc<Mutex<Vec<Vec<u8>>>>,
        }
        impl Actor for Capture {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(80).unwrap();
            }
            fn on_datagram(&mut self, _ctx: &mut Context<'_>, datagram: Datagram) {
                self.seen.lock().unwrap().push(datagram.payload.to_vec());
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut sim = SimNet::new(24);
        sim.set_impairments(Impairments { corrupt_permille: 1000, ..profile() });
        sim.add_actor("10.0.0.2", Capture { seen: seen.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        let diff: usize = seen[0].iter().zip(b"hello").filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1, "exactly one byte flipped: {:?}", seen[0]);
        assert!(sim.trace_text().contains("chaos corrupt"));
    }

    #[test]
    fn reorder_defers_within_the_window() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(25);
        sim.set_impairments(Impairments {
            reorder_permille: 1000,
            reorder_window: SimDuration::from_millis(5),
            ..profile()
        });
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        let end = sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 1);
        assert!(sim.trace_text().contains("chaos delay"));
        // One modelled latency (≤600µs) plus at most the window.
        assert!(end <= SimTime::from_micros(5_600), "deferral bounded: {end}");
    }

    #[test]
    fn partition_drops_datagrams_and_refuses_tcp_until_healed() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(26);
        sim.partition("10.0.0.1", "10.0.0.2");
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert!(sim.trace_text().contains("chaos partition drop"));

        struct Dialer;
        impl Actor for Dialer {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(99);
                let err = ctx.tcp_connect(SimAddr::new("10.0.0.9", 80)).unwrap_err();
                assert!(matches!(err, NetError::ConnectionRefused { .. }));
            }
        }
        struct Listener;
        impl Actor for Listener {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.listen_tcp(80);
            }
        }
        let mut sim = SimNet::new(26);
        sim.partition("10.0.0.8", "10.0.0.9");
        sim.add_actor("10.0.0.9", Listener);
        sim.add_actor("10.0.0.8", Dialer);
        sim.run_until_idle();
        assert!(sim.trace_text().contains("chaos partition refused tcp"));
    }

    #[test]
    fn partition_cuts_multicast_delivery_per_member() {
        // Regression: the partition key must be the *member* host, not
        // the group address — a partitioned member misses the multicast
        // while the other member still receives it.
        let group = SimAddr::new("239.255.255.250", 1900);
        let cut = Arc::new(AtomicUsize::new(0));
        let open = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(31);
        sim.partition("10.0.0.1", "10.0.0.2");
        sim.add_actor(
            "10.0.0.2",
            Sink { port: 1900, group: Some(group.clone()), received: cut.clone() },
        );
        sim.add_actor(
            "10.0.0.3",
            Sink { port: 1900, group: Some(group.clone()), received: open.clone() },
        );

        struct Caster {
            group: SimAddr,
        }
        impl Actor for Caster {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(1900).unwrap();
                ctx.udp_send(1900, self.group.clone(), &b"M-SEARCH"[..]);
            }
        }
        sim.add_actor("10.0.0.1", Caster { group });
        sim.run_until_idle();
        assert_eq!(cut.load(Ordering::SeqCst), 0, "partitioned member must not receive");
        assert_eq!(open.load(Ordering::SeqCst), 1, "unpartitioned member still receives");
        assert!(
            sim.trace_text().contains("member 10.0.0.2"),
            "partition drop names the member: {}",
            sim.trace_text()
        );
    }

    #[test]
    fn partition_for_heals_automatically() {
        struct Resender {
            to: SimAddr,
        }
        impl Actor for Resender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(5000).unwrap();
                ctx.udp_send(5000, self.to.clone(), &b"first"[..]);
                ctx.set_timer(SimDuration::from_millis(20), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
                ctx.udp_send(5000, self.to.clone(), &b"second"[..]);
            }
        }
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(27);
        sim.partition_for("10.0.0.1", "10.0.0.2", SimDuration::from_millis(10));
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.1", Resender { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 1, "only the post-heal datagram lands");
        assert!(sim.trace_text().contains("chaos partition healed"));
    }

    #[test]
    fn injected_datagrams_are_impaired_too() {
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(28);
        sim.set_impairments(Impairments { drop_permille: 1000, ..profile() });
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.run_until_idle();
        sim.inject_datagram(Datagram {
            from: SimAddr::new("127.0.0.1", 40_001),
            to: SimAddr::new("10.0.0.2", 80),
            payload: Bytes::copy_from_slice(b"ping"),
        });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 0);
        assert!(sim.trace_text().contains("chaos drop"));
    }

    #[test]
    fn egress_is_impaired_but_never_deferred() {
        let mut sim = SimNet::new(29);
        sim.set_impairments(Impairments { duplicate_permille: 1000, ..profile() });
        sim.register_external_host("127.0.0.1");
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("127.0.0.1", 9000) });
        sim.run_until_idle();
        assert_eq!(sim.drain_egress().len(), 2, "egress duplicated");
        assert!(!sim.trace_text().contains("chaos delay"), "no deferral on egress");
    }

    #[test]
    fn same_seed_and_profile_replay_byte_identically() {
        fn run() -> (String, usize) {
            let received = Arc::new(AtomicUsize::new(0));
            let mut sim = SimNet::new(30);
            sim.set_impairments(Impairments {
                drop_permille: 300,
                duplicate_permille: 300,
                reorder_permille: 300,
                reorder_window: SimDuration::from_millis(3),
                jitter: SimDuration::from_micros(500),
                corrupt_permille: 300,
                partition_permille: 100,
                partition_window: SimDuration::from_millis(5),
            });
            sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
            for i in 0..6 {
                sim.add_actor(format!("10.0.1.{i}"), OneShot { to: SimAddr::new("10.0.0.2", 80) });
            }
            sim.run_until_idle();
            (sim.trace_text(), received.load(Ordering::SeqCst))
        }
        let (trace_a, count_a) = run();
        let (trace_b, count_b) = run();
        assert_eq!(trace_a, trace_b, "byte-identical traces");
        assert_eq!(count_a, count_b);
        assert!(trace_a.contains("chaos"), "the profile actually fired: {trace_a}");
    }

    /// Records the arrival time of every datagram it receives.
    struct TimedSink {
        port: u16,
        arrivals: Arc<std::sync::Mutex<Vec<SimTime>>>,
    }

    impl Actor for TimedSink {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(self.port).unwrap();
        }
        fn on_datagram(&mut self, ctx: &mut Context<'_>, _datagram: Datagram) {
            self.arrivals.lock().unwrap().push(ctx.now());
        }
    }

    /// Sends `payloads` back-to-back at start.
    struct Burst {
        to: SimAddr,
        payloads: Vec<Vec<u8>>,
    }

    impl Actor for Burst {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.bind_udp(5000).unwrap();
            for payload in self.payloads.drain(..) {
                ctx.udp_send(5000, self.to.clone(), payload);
            }
        }
    }

    #[test]
    fn bandwidth_serialises_contended_transfers_fairly() {
        // 1 MB/s = 1 byte/µs. A lone 500-byte datagram transmits in
        // 500µs; two sent back-to-back share the link and both finish at
        // 1000µs (fair share, recomputed on every start/finish).
        fn run(payloads: usize) -> Vec<SimTime> {
            let arrivals = Arc::new(std::sync::Mutex::new(Vec::new()));
            let mut sim = SimNet::new(41);
            sim.set_latency(LatencyModel::Fixed(SimDuration::ZERO));
            sim.set_link_bandwidth(1_000_000);
            sim.add_actor("10.0.0.2", TimedSink { port: 80, arrivals: arrivals.clone() });
            sim.add_actor(
                "10.0.0.1",
                Burst {
                    to: SimAddr::new("10.0.0.2", 80),
                    payloads: vec![vec![0u8; 500]; payloads],
                },
            );
            sim.run_until_idle();
            let out = arrivals.lock().unwrap().clone();
            out
        }
        assert_eq!(run(1), vec![SimTime::from_micros(500)]);
        assert_eq!(run(2), vec![SimTime::from_micros(1_000); 2]);
        assert_eq!(run(4), vec![SimTime::from_micros(2_000); 4]);
    }

    #[test]
    fn bandwidth_composes_with_latency_draws() {
        // Transmission time and the sampled latency add up; the latency
        // stream is drawn at send time, so the draw order matches an
        // unmodelled run.
        let arrivals = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut sim = SimNet::new(42);
        sim.set_latency(LatencyModel::Fixed(SimDuration::from_micros(300)));
        sim.set_link_bandwidth(1_000_000);
        sim.add_actor("10.0.0.2", TimedSink { port: 80, arrivals: arrivals.clone() });
        sim.add_actor(
            "10.0.0.1",
            Burst { to: SimAddr::new("10.0.0.2", 80), payloads: vec![vec![0u8; 500]] },
        );
        sim.run_until_idle();
        assert_eq!(*arrivals.lock().unwrap(), vec![SimTime::from_micros(800)]);
        assert!(sim.trace_text().contains("bw start"), "trace: {}", sim.trace_text());
        assert!(sim.trace_text().contains("bw done"));
    }

    #[test]
    fn late_joiner_slows_the_first_transfer_down() {
        // Fair share is *recomputed* when a transfer joins mid-flight: a
        // 1000-byte transfer alone would finish at 1000µs, but a second
        // one starting at 500µs halves its share — the first finishes at
        // 1500µs, the late joiner (500 bytes head start behind) at
        // 2000µs... the exact fluid-model schedule.
        struct Staggered {
            to: SimAddr,
        }
        impl Actor for Staggered {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(5000).unwrap();
                ctx.udp_send(5000, self.to.clone(), vec![0u8; 1000]);
                ctx.set_timer(SimDuration::from_micros(500), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
                ctx.udp_send(5000, self.to.clone(), vec![0u8; 1000]);
            }
        }
        let arrivals = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut sim = SimNet::new(43);
        sim.set_latency(LatencyModel::Fixed(SimDuration::ZERO));
        sim.set_link_bandwidth(1_000_000);
        sim.add_actor("10.0.0.2", TimedSink { port: 80, arrivals: arrivals.clone() });
        sim.add_actor("10.0.0.1", Staggered { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(
            *arrivals.lock().unwrap(),
            vec![SimTime::from_micros(1_500), SimTime::from_micros(2_000)]
        );
    }

    #[test]
    fn bandwidth_delays_egress_until_transmitted() {
        let mut sim = SimNet::new(44);
        sim.set_latency(LatencyModel::Fixed(SimDuration::ZERO));
        sim.set_link_bandwidth(1_000); // 1000 B/s: 5 bytes take 5ms
        sim.register_external_host("127.0.0.1");
        sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("127.0.0.1", 9000) });
        sim.run_until(SimTime::from_millis(2));
        assert!(sim.drain_egress().is_empty(), "still transmitting");
        sim.run_until_idle();
        assert_eq!(sim.drain_egress().len(), 1, "egress surfaced after transmission");
        assert_eq!(sim.now(), SimTime::from_millis(5));
    }

    #[test]
    fn inert_bandwidth_and_pass_schedule_change_nothing() {
        // Explicitly installing the disabled bandwidth model and the
        // inert pass schedule replays bit-identically to a run that
        // never heard of either (zero extra RNG draws, identical trace).
        fn run(configure: bool) -> (SimTime, String) {
            let received = Arc::new(AtomicUsize::new(0));
            let mut sim = SimNet::new(45);
            if configure {
                sim.set_link_bandwidth(0);
                sim.set_pass_schedule(PassSchedule::always_open());
            }
            sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received });
            sim.add_actor("10.0.0.1", OneShot { to: SimAddr::new("10.0.0.2", 80) });
            sim.run_until_idle();
            (sim.now(), sim.trace_text())
        }
        assert_eq!(run(false), run(true));
    }

    /// A two-slot schedule with 10ms windows and a hub: slot 0 hosts use
    /// even windows, slot 1 hosts odd ones; the hub is always reachable.
    fn two_slot_schedule(hub: &str, slot1_host: &str) -> PassSchedule {
        PassSchedule {
            window: SimDuration::from_millis(10),
            slots: 2,
            hub: Some(Arc::from(hub)),
            assignments: BTreeMap::from([(Arc::from(slot1_host), 1u32)]),
            default_slot: 0,
        }
    }

    #[test]
    fn pass_schedule_gates_links_by_window() {
        let schedule = two_slot_schedule("10.0.0.2", "10.0.0.3");
        // Slot arithmetic: window 0 → slot 0, window 1 → slot 1.
        assert_eq!(schedule.active_slot(SimTime::from_millis(3)), 0);
        assert_eq!(schedule.active_slot(SimTime::from_millis(13)), 1);
        // Hub links follow the non-hub endpoint's slot.
        assert!(schedule.open_at(SimTime::from_millis(3), "10.0.1.1", "10.0.0.2"));
        assert!(!schedule.open_at(SimTime::from_millis(13), "10.0.1.1", "10.0.0.2"));
        assert!(!schedule.open_at(SimTime::from_millis(3), "10.0.0.3", "10.0.0.2"));
        assert!(schedule.open_at(SimTime::from_millis(13), "10.0.0.3", "10.0.0.2"));
        // Two non-hub hosts in different slots can never talk directly.
        assert!(!schedule.open_at(SimTime::from_millis(3), "10.0.1.1", "10.0.0.3"));
        assert!(!schedule.open_at(SimTime::from_millis(13), "10.0.1.1", "10.0.0.3"));
        assert_eq!(schedule.next_open(SimTime::from_millis(3), "10.0.1.1", "10.0.0.3"), None);
        // next_open lands on the next matching window boundary.
        assert_eq!(
            schedule.next_open(SimTime::from_millis(3), "10.0.0.3", "10.0.0.2"),
            Some(SimTime::from_millis(10))
        );
        assert_eq!(
            schedule.next_open(SimTime::from_millis(13), "10.0.1.1", "10.0.0.2"),
            Some(SimTime::from_millis(20))
        );
    }

    #[test]
    fn pass_closed_window_drops_datagrams_and_traces() {
        struct Resender {
            to: SimAddr,
        }
        impl Actor for Resender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(5000).unwrap();
                // Window 0: the slot-1 host's uplink to the hub is
                // closed. Window 1 (11ms): open.
                ctx.udp_send(5000, self.to.clone(), &b"early"[..]);
                ctx.set_timer(SimDuration::from_millis(11), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
                ctx.udp_send(5000, self.to.clone(), &b"late"[..]);
            }
        }
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(46);
        sim.set_pass_schedule(two_slot_schedule("10.0.0.2", "10.0.0.3"));
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.0.3", Resender { to: SimAddr::new("10.0.0.2", 80) });
        sim.run_until_idle();
        assert_eq!(received.load(Ordering::SeqCst), 1, "only the in-window datagram lands");
        assert!(sim.trace_text().contains("pass closed"), "trace: {}", sim.trace_text());
    }

    #[test]
    fn link_open_and_backlog_report_link_state() {
        struct Reporter {
            open_early: Arc<AtomicUsize>,
        }
        impl Actor for Reporter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(5000).unwrap();
                let hub = SimAddr::new("10.0.0.2", 80);
                self.open_early.store(usize::from(ctx.link_open(&hub)), Ordering::SeqCst);
                // Saturate the uplink, then observe the backlog.
                ctx.udp_send(5000, hub.clone(), vec![0u8; 4_000]);
                assert!(ctx.link_backlog(&hub) >= 3_000, "backlog visible");
            }
        }
        let open_early = Arc::new(AtomicUsize::new(7));
        let received = Arc::new(AtomicUsize::new(0));
        let mut sim = SimNet::new(47);
        sim.set_latency(LatencyModel::Fixed(SimDuration::ZERO));
        sim.set_link_bandwidth(1_000_000);
        sim.set_pass_schedule(two_slot_schedule("10.0.0.2", "10.0.0.3"));
        sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
        sim.add_actor("10.0.1.1", Reporter { open_early: open_early.clone() });
        sim.run_until_idle();
        assert_eq!(open_early.load(Ordering::SeqCst), 1, "slot-0 uplink open in window 0");
        assert_eq!(received.load(Ordering::SeqCst), 1);

        // The slot-1 host sees its hub uplink closed during window 0.
        struct ClosedCheck;
        impl Actor for ClosedCheck {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                assert!(!ctx.link_open(&SimAddr::new("10.0.0.2", 80)));
                assert_eq!(ctx.link_backlog(&SimAddr::new("10.0.0.2", 80)), 0);
            }
        }
        let mut sim = SimNet::new(48);
        sim.set_pass_schedule(two_slot_schedule("10.0.0.2", "10.0.0.3"));
        sim.add_actor("10.0.0.3", ClosedCheck);
        sim.run_until_idle();
    }

    #[test]
    fn partition_closes_link_open() {
        struct Check;
        impl Actor for Check {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                assert!(!ctx.link_open(&SimAddr::new("10.0.0.2", 80)), "partitioned");
                assert!(ctx.link_open(&SimAddr::new("10.0.0.9", 80)), "other links fine");
            }
        }
        let mut sim = SimNet::new(49);
        sim.partition("10.0.0.1", "10.0.0.2");
        sim.add_actor("10.0.0.1", Check);
        sim.run_until_idle();
    }

    #[test]
    fn bandwidth_and_pass_replay_byte_identically() {
        fn run() -> (String, SimTime) {
            let received = Arc::new(AtomicUsize::new(0));
            let mut sim = SimNet::new(50);
            sim.set_link_bandwidth(100_000);
            sim.set_pass_schedule(two_slot_schedule("10.0.0.2", "10.0.0.3"));
            sim.set_impairments(Impairments {
                drop_permille: 200,
                duplicate_permille: 200,
                jitter: SimDuration::from_micros(400),
                ..Impairments::none()
            });
            sim.add_actor("10.0.0.2", Sink { port: 80, group: None, received: received.clone() });
            for i in 0..4 {
                sim.add_actor(format!("10.0.1.{i}"), OneShot { to: SimAddr::new("10.0.0.2", 80) });
            }
            sim.add_actor("10.0.0.3", OneShot { to: SimAddr::new("10.0.0.2", 80) });
            sim.run_until_idle();
            (sim.trace_text(), sim.now())
        }
        let (trace_a, end_a) = run();
        let (trace_b, end_b) = run();
        assert_eq!(trace_a, trace_b);
        assert_eq!(end_a, end_b);
        assert!(trace_a.contains("bw start"), "bandwidth fired: {trace_a}");
        assert!(trace_a.contains("pass closed"), "pass gate fired: {trace_a}");
    }

    #[test]
    fn rand_range_is_seeded() {
        struct R {
            out: Arc<AtomicU64>,
        }
        impl Actor for R {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                self.out.store(ctx.rand_range(0, 1_000_000), Ordering::SeqCst);
            }
        }
        let run = |seed| {
            let out = Arc::new(AtomicU64::new(0));
            let mut sim = SimNet::new(seed);
            sim.add_actor("h", R { out: out.clone() });
            sim.run_until_idle();
            out.load(Ordering::SeqCst)
        };
        assert_eq!(run(9), run(9));
    }
}
