//! The observability export surface: a minimal text-over-HTTP endpoint
//! serving rendered metrics/trace pages from a live gateway.
//!
//! [`MetricsServer`] owns one real loopback TCP listener and a serving
//! thread. Every request is answered from a caller-supplied render
//! closure — the server knows nothing about Prometheus, stats or
//! traces; it maps a request path to the text the closure returns (or
//! 404). Responses are `HTTP/1.0`-framed with `Connection: close`, so
//! `curl http://127.0.0.1:<port>/metrics` works against it directly.
//!
//! The server is deliberately tiny — one request per connection, one
//! serving thread, bounded request reads — because its job is exposing
//! counters a scraper polls every few seconds, not serving traffic.

use crate::error::{NetError, Result};
use std::io::{Read, Write};
use std::net::{Ipv4Addr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maps a request path (e.g. `/metrics`) to a text page; `None` is a
/// 404.
pub type RenderFn = Arc<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// A loopback text endpoint serving rendered pages (metrics, traces)
/// over HTTP/1.0. Bound to an ephemeral `127.0.0.1` port; dropped
/// servers stop serving and join their thread.
pub struct MetricsServer {
    port: u16,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("port", &self.port).finish()
    }
}

impl MetricsServer {
    /// Binds an ephemeral loopback port and starts serving `render`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the listener cannot be bound.
    pub fn serve(render: RenderFn) -> Result<Self> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))
            .map_err(|e| NetError::Io(format!("metrics listener bind: {e}")))?;
        let port = listener
            .local_addr()
            .map_err(|e| NetError::Io(format!("metrics listener addr: {e}")))?
            .port();
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(format!("metrics listener nonblocking: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => serve_one(stream, &render),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
        });
        Ok(MetricsServer { port, stop, thread: Some(thread) })
    }

    /// The real loopback port the endpoint listens on.
    pub fn port(&self) -> u16 {
        self.port
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Serves one request on `stream`: parse the request line, render, and
/// write an HTTP/1.0 response. Any I/O failure just drops the
/// connection — the scraper retries on its next poll.
fn serve_one(mut stream: TcpStream, render: &RenderFn) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    // Bounded read: the request line is all that matters; headers past
    // 4 KiB are someone else's problem.
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    while len < buf.len() {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf[..len]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/")
        .to_owned();
    let response = match render(&path) {
        Some(body) => format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
        None => {
            let body = format!("no page at {path}\n");
            format!(
                "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
        }
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(port: u16, path: &str) -> String {
        let mut stream = TcpStream::connect((Ipv4Addr::LOCALHOST, port)).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").as_bytes())
            .expect("write request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn serves_rendered_page_and_404() {
        let server = MetricsServer::serve(Arc::new(|path: &str| {
            (path == "/metrics").then(|| "starlink_up 1\n".to_owned())
        }))
        .expect("server starts");
        let ok = get(server.port(), "/metrics");
        assert!(ok.starts_with("HTTP/1.0 200 OK"), "{ok}");
        assert!(ok.ends_with("starlink_up 1\n"), "{ok}");
        let missing = get(server.port(), "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
    }

    #[test]
    fn drop_stops_the_server() {
        let server =
            MetricsServer::serve(Arc::new(|_: &str| Some(String::new()))).expect("server starts");
        let port = server.port();
        drop(server);
        // The listener is gone: connects are refused (or reset).
        assert!(TcpStream::connect_timeout(
            &std::net::SocketAddr::from((Ipv4Addr::LOCALHOST, port)),
            Duration::from_millis(200),
        )
        .is_err());
    }
}
