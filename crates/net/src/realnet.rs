//! A thin real-socket engine over `std::net` loopback.
//!
//! The simulator is the primary substrate for the evaluation (§VI runs
//! everything on one machine anyway), but the stack is also exercised
//! over real UDP sockets here to demonstrate that nothing in it depends
//! on simulation artefacts. Multicast is not used — sandboxed
//! environments rarely route it — so peers address each other directly
//! on 127.0.0.1.
//!
//! Two layers live here:
//!
//! * [`LoopbackUdp`] — one bound socket with a configurable receive
//!   timeout and a non-blocking poll mode;
//! * [`UdpBridge`] — a gateway loop that hosts any [`Actor`] (typically
//!   a deployed bridge engine) behind real loopback sockets: datagrams
//!   arriving on a real socket are injected into a private [`SimNet`],
//!   the actor's replies leave through the simulator's egress queue, and
//!   the virtual clock is advanced in step with real time so
//!   timer-driven behaviour (session idle expiry) works live.

use crate::addr::SimAddr;
use crate::error::{NetError, Result};
use crate::sim::{Actor, Datagram, SimNet};
use crate::time::SimTime;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

/// The largest UDP payload a loopback socket can carry (64 KiB minus
/// headers fits; a full 64 KiB scratch buffer always suffices).
pub const MAX_DATAGRAM: usize = 65_536;

/// A pool of reusable receive buffers for [`LoopbackUdp::recv_into`]/
/// [`LoopbackUdp::try_recv_into`] callers: acquire before a receive
/// loop, release once payloads are copied out, and steady state
/// performs **zero** buffer allocations (the old `recv` path allocated
/// — and zeroed — a fresh 64 KiB `Vec` per datagram). `UdpBridge`
/// drains all its sockets through one pooled buffer per pump pass;
/// callers that keep several receives in flight pool one per receive.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
}

impl BufferPool {
    /// Creates an empty pool (buffers are allocated on first use and
    /// retained thereafter).
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Takes a [`MAX_DATAGRAM`]-sized buffer from the pool, allocating
    /// only when the pool is empty.
    ///
    /// **Contract: the buffer is dirty.** Its length is always
    /// [`MAX_DATAGRAM`], but its contents are whatever the previous
    /// user received into it — re-zeroing 64 KiB per datagram is
    /// exactly the cost the pool exists to avoid. Receive paths must
    /// bound every read by the length the socket reported (e.g.
    /// [`LoopbackUdp::try_recv_into`]'s `len`), never by scanning for
    /// sentinel bytes.
    pub fn acquire(&mut self) -> Vec<u8> {
        self.free.pop().unwrap_or_else(|| vec![0u8; MAX_DATAGRAM])
    }

    /// Returns a buffer to the pool for reuse.
    ///
    /// Restores the full [`MAX_DATAGRAM`] length; `Vec::resize` zeroes
    /// only the tail a caller truncated away, so bytes below the old
    /// length keep their stale contents **by design** (see
    /// [`BufferPool::acquire`] for the dirty-buffer contract this
    /// implies).
    pub fn release(&mut self, mut buf: Vec<u8>) {
        buf.resize(MAX_DATAGRAM, 0);
        self.free.push(buf);
    }

    /// Buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// A bound UDP endpoint on 127.0.0.1 with an ephemeral port.
#[derive(Debug)]
pub struct LoopbackUdp {
    socket: UdpSocket,
}

impl LoopbackUdp {
    /// Binds an ephemeral UDP port on loopback with the default 5 s
    /// receive timeout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when binding fails (e.g. no network
    /// namespace available).
    pub fn bind() -> Result<Self> {
        Self::bind_with_timeout(Duration::from_secs(5))
    }

    /// Binds an ephemeral UDP port on loopback with an explicit receive
    /// timeout, so a dropped datagram stalls a caller for exactly as
    /// long as it chooses — not a hardcoded 5 s.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when binding fails.
    pub fn bind_with_timeout(timeout: Duration) -> Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| NetError::Io(e.to_string()))?;
        socket.set_read_timeout(Some(timeout)).map_err(|e| NetError::Io(e.to_string()))?;
        Ok(LoopbackUdp { socket })
    }

    /// Binds an ephemeral UDP port on loopback in non-blocking mode
    /// (poll with [`LoopbackUdp::try_recv`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when binding fails.
    pub fn bind_nonblocking() -> Result<Self> {
        let this = Self::bind()?;
        this.set_nonblocking(true)?;
        Ok(this)
    }

    /// The bound port.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the local address cannot be read.
    pub fn port(&self) -> Result<u16> {
        Ok(self.socket.local_addr().map_err(|e| NetError::Io(e.to_string()))?.port())
    }

    /// Sends a datagram to another loopback port.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failures.
    pub fn send_to(&self, payload: &[u8], port: u16) -> Result<()> {
        self.socket
            .send_to(payload, ("127.0.0.1", port))
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(())
    }

    /// Receives one datagram (blocking up to the configured timeout),
    /// returning the payload and the sender's port.
    ///
    /// Allocates a fresh payload `Vec` per call; hot loops should prefer
    /// [`LoopbackUdp::recv_into`] with a pooled buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on timeout or socket failure.
    pub fn recv(&self) -> Result<(Vec<u8>, u16)> {
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let (len, from) = self.recv_into(&mut buf)?;
        buf.truncate(len);
        Ok((buf, from))
    }

    /// Receives one datagram into a caller-provided buffer (blocking up
    /// to the configured timeout), returning the payload length and the
    /// sender's port — the zero-allocation receive path.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on timeout or socket failure.
    pub fn recv_into(&self, buf: &mut [u8]) -> Result<(usize, u16)> {
        let (len, from) = self.socket.recv_from(buf).map_err(|e| NetError::Io(e.to_string()))?;
        Ok((len, from.port()))
    }

    /// Polls for one datagram without blocking: `Ok(None)` when nothing
    /// is queued. Requires non-blocking mode (or is bounded by the read
    /// timeout otherwise).
    ///
    /// Allocates a fresh payload `Vec` per datagram; hot loops should
    /// prefer [`LoopbackUdp::try_recv_into`] with a pooled buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failures other than
    /// would-block/timeout.
    pub fn try_recv(&self) -> Result<Option<(Vec<u8>, u16)>> {
        let mut buf = vec![0u8; MAX_DATAGRAM];
        Ok(self.try_recv_into(&mut buf)?.map(|(len, from)| {
            buf.truncate(len);
            (buf, from)
        }))
    }

    /// Polls for one datagram into a caller-provided buffer without
    /// blocking: `Ok(None)` when nothing is queued — the zero-allocation
    /// poll path used by the gateway's batched pump.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failures other than
    /// would-block/timeout.
    pub fn try_recv_into(&self, buf: &mut [u8]) -> Result<Option<(usize, u16)>> {
        match self.socket.recv_from(buf) {
            Ok((len, from)) => Ok(Some((len, from.port()))),
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(err) => Err(NetError::Io(err.to_string())),
        }
    }

    /// Sets the receive timeout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the option cannot be set.
    pub fn set_timeout(&self, timeout: Duration) -> Result<()> {
        self.socket.set_read_timeout(Some(timeout)).map_err(|e| NetError::Io(e.to_string()))
    }

    /// Switches the socket between blocking and non-blocking mode.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the option cannot be set.
    pub fn set_nonblocking(&self, nonblocking: bool) -> Result<()> {
        self.socket.set_nonblocking(nonblocking).map_err(|e| NetError::Io(e.to_string()))
    }

    /// The raw fd, for readiness registration.
    #[cfg(unix)]
    pub(crate) fn raw_fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.socket.as_raw_fd()
    }

    /// Non-unix targets have no raw fd; readiness construction already
    /// failed before anything could ask for one.
    #[cfg(not(unix))]
    pub(crate) fn raw_fd(&self) -> i32 {
        -1
    }
}

/// Polls `step` until it yields a value or `budget` elapses, backing
/// off between empty polls (a scheduler yield, then sleeps doubling up
/// to 1 ms) — the shared replacement for fixed `sleep(1ms)` client
/// polling loops, so waits finish as soon as the condition holds
/// instead of being paced by a hardcoded quantum.
///
/// Returns `Ok(None)` when the budget elapses without a value.
///
/// # Errors
///
/// Propagates the first error `step` returns.
pub fn wait_deadline<T, E>(
    budget: Duration,
    mut step: impl FnMut() -> std::result::Result<Option<T>, E>,
) -> std::result::Result<Option<T>, E> {
    const MAX_BACKOFF: Duration = Duration::from_millis(1);
    let deadline = Instant::now() + budget;
    let mut backoff: Option<Duration> = None;
    loop {
        if let Some(value) = step()? {
            return Ok(Some(value));
        }
        if Instant::now() >= deadline {
            return Ok(None);
        }
        match backoff {
            None => {
                std::thread::yield_now();
                backoff = Some(Duration::from_micros(100));
            }
            Some(pause) => {
                std::thread::sleep(pause);
                backoff = Some((pause * 2).min(MAX_BACKOFF));
            }
        }
    }
}

/// Hosts an [`Actor`] behind real loopback UDP sockets: a live bridge
/// serving real multi-client traffic, not just codec smoke tests.
///
/// Each simulated UDP port the actor binds is exposed as one real
/// ephemeral loopback socket ([`UdpBridge::real_port`] maps them).
/// [`UdpBridge::pump`] polls the sockets, injects arrivals into the
/// private simulation as datagrams from `127.0.0.1:<sender port>`,
/// advances the virtual clock to the real elapsed time (so the actor's
/// timers — e.g. session idle expiry — fire on the real clock), and
/// forwards the simulation's egress datagrams back out of the matching
/// socket. TCP colours are not bridged.
#[derive(Debug)]
pub struct UdpBridge {
    sim: SimNet,
    host: std::sync::Arc<str>,
    sockets: Vec<(u16, LoopbackUdp)>,
    epoch: Instant,
    /// Pooled receive buffers: a pump pass borrows one per datagram and
    /// returns it once the payload is copied into the simulation.
    pool: BufferPool,
    /// Arrival batch reused across pump passes (capacity persists).
    arrivals: Vec<Datagram>,
    /// Egress batch reused across pump passes.
    egress: Vec<Datagram>,
    /// Readiness state when [`UdpBridge::enable_readiness`] succeeded:
    /// idle waits block in `epoll_wait` and pump passes drain only
    /// ready sockets.
    ready: Option<ReadySet>,
    /// Portable idle backoff (reset whenever a pass moves datagrams).
    backoff: Option<Duration>,
    stats: PumpStats,
}

/// Counters describing how a gateway loop has been spending its time —
/// the semantic evidence behind the latency claims: a readiness-driven
/// gateway shows `backoff_sleeps == 0` (it blocks in `epoll_wait`
/// instead), a portable one accumulates them while idle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PumpStats {
    /// Pump passes executed.
    pub passes: u64,
    /// Portable idle sleeps taken (each costs up to a scheduler
    /// quantum of wakeup latency when traffic resumes).
    pub backoff_sleeps: u64,
    /// Blocking readiness waits taken (woken instantly by arrivals).
    pub readiness_waits: u64,
}

/// Level-triggered readiness over a bridge's socket set.
#[derive(Debug)]
struct ReadySet {
    readiness: epoll::Readiness,
    events: epoll::Events,
    /// Socket indices reported ready by the last wait/refresh.
    ready_idx: Vec<usize>,
}

impl ReadySet {
    fn over(sockets: &[(u16, LoopbackUdp)]) -> Result<Self> {
        let readiness = epoll::Readiness::new().map_err(|e| NetError::Io(e.to_string()))?;
        for (idx, (_, socket)) in sockets.iter().enumerate() {
            readiness
                .register(
                    socket.raw_fd(),
                    idx as u64,
                    epoll::Interest::READABLE,
                    epoll::Trigger::Level,
                )
                .map_err(|e| NetError::Io(e.to_string()))?;
        }
        Ok(ReadySet { readiness, events: epoll::Events::with_capacity(64), ready_idx: Vec::new() })
    }

    /// One readiness wait; fills `ready_idx` with the sockets to drain.
    fn wait(&mut self, timeout: Duration) -> Result<()> {
        self.ready_idx.clear();
        self.readiness
            .wait(&mut self.events, Some(timeout))
            .map_err(|e| NetError::Io(e.to_string()))?;
        self.ready_idx.extend(self.events.iter().map(|event| event.token as usize));
        Ok(())
    }
}

/// The gateway pump loop, abstracted over how idle time is spent: the
/// readiness-driven path blocks in `epoll_wait` (woken instantly by
/// arrivals, ~0 CPU while idle), the portable fallback backs off with
/// doubling sleeps. [`UdpBridge`] implements both behind this trait —
/// [`UdpBridge::enable_readiness`] switches paths at runtime, so
/// consumers keep working wherever epoll is unavailable.
pub trait GatewayLoop {
    /// One iteration: move every deliverable datagram in both
    /// directions, returning how many moved.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failures.
    fn pump(&mut self) -> Result<usize>;

    /// Waits (at most `timeout`) for traffic to plausibly be ready,
    /// after a pass that moved nothing.
    fn idle_wait(&mut self, timeout: Duration);

    /// Pumps for up to `budget` real time until `done()` reports true,
    /// returning whether it was reached within the budget. Active
    /// passes loop back immediately; idle passes spend their time in
    /// [`GatewayLoop::idle_wait`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failures.
    fn pump_until(&mut self, budget: Duration, mut done: impl FnMut() -> bool) -> Result<bool>
    where
        Self: Sized,
    {
        // Bound each idle wait so `done()` conditions flipped by other
        // threads (not by traffic through this gateway) are still
        // noticed promptly.
        const MAX_IDLE_WAIT: Duration = Duration::from_millis(5);
        let deadline = Instant::now() + budget;
        loop {
            let moved = self.pump()?;
            if done() {
                return Ok(true);
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if moved == 0 {
                self.idle_wait((deadline - now).min(MAX_IDLE_WAIT));
            }
        }
        self.pump()?;
        Ok(done())
    }
}

impl UdpBridge {
    /// Deploys `actor` on `host` inside a private simulation and binds
    /// one real non-blocking loopback socket per port in `udp_ports`
    /// (the simulated ports the actor listens on).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when a real socket cannot be bound.
    pub fn deploy(
        seed: u64,
        host: impl Into<String>,
        actor: impl Actor + 'static,
        udp_ports: &[u16],
    ) -> Result<Self> {
        let host: std::sync::Arc<str> = std::sync::Arc::from(host.into());
        let mut sim = SimNet::new(seed);
        sim.register_external_host("127.0.0.1");
        sim.add_actor(host.as_ref(), actor);
        // Process the actor's on_start (bindings) without firing any
        // timers it may set for the future.
        sim.run_until(SimTime::ZERO);
        let mut sockets = Vec::with_capacity(udp_ports.len());
        for &port in udp_ports {
            sockets.push((port, LoopbackUdp::bind_nonblocking()?));
        }
        Ok(UdpBridge {
            sim,
            host,
            sockets,
            epoch: Instant::now(),
            pool: BufferPool::new(),
            arrivals: Vec::new(),
            egress: Vec::new(),
            ready: None,
            backoff: None,
            stats: PumpStats::default(),
        })
    }

    /// Switches the gateway to readiness-driven mode: idle waits block
    /// in `epoll_wait` (woken instantly by arrivals) and pump passes
    /// drain only the sockets the kernel reports ready, instead of
    /// polling all of them with backoff sleeps.
    ///
    /// Returns `Ok(false)` — loudly staying on the portable polling
    /// path — where epoll is unavailable (non-Linux targets).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when epoll is supported but
    /// registration fails.
    pub fn enable_readiness(&mut self) -> Result<bool> {
        if !epoll::supported() {
            return Ok(false);
        }
        self.ready = Some(ReadySet::over(&self.sockets)?);
        Ok(true)
    }

    /// Whether the readiness-driven path is active.
    pub fn readiness_active(&self) -> bool {
        self.ready.is_some()
    }

    /// How this gateway has been spending its time (see [`PumpStats`]).
    pub fn pump_stats(&self) -> PumpStats {
        self.stats
    }

    /// The real loopback port exposing the actor's simulated `sim_port`.
    pub fn real_port(&self, sim_port: u16) -> Option<u16> {
        self.sockets
            .iter()
            .find(|(port, _)| *port == sim_port)
            .and_then(|(_, socket)| socket.port().ok())
    }

    /// Registers a real endpoint as a member of a simulated multicast
    /// group: the actor's group sends fan out to `127.0.0.1:real_port`.
    pub fn join_group_external(&mut self, group: SimAddr, real_port: u16) {
        self.sim.join_group_external(group, SimAddr::new("127.0.0.1", real_port));
    }

    /// The gateway simulation's delivery trace (debugging aid).
    pub fn trace_len(&self) -> usize {
        self.sim.trace().len()
    }

    /// One gateway iteration: drains every socket into a reusable batch
    /// of pooled buffers (no per-datagram allocation), injects the whole
    /// batch, advances the virtual clock to the real elapsed time, and
    /// flushes the egress batch out of the matching sockets. Returns the
    /// number of datagrams forwarded in either direction.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failures.
    pub fn pump(&mut self) -> Result<usize> {
        self.stats.passes += 1;
        let mut forwarded = 0usize;
        // Ingress phase: drain all sockets into one batch before touching
        // the simulation, so a burst arriving across several ports is
        // dispatched in a single virtual-clock advance. In readiness
        // mode a zero-timeout wait asks the kernel which sockets hold
        // data and only those are drained.
        self.arrivals.clear();
        let mut buf = self.pool.acquire();
        let ready_refreshed = match &mut self.ready {
            Some(ready) => {
                ready.wait(Duration::ZERO)?;
                true
            }
            None => false,
        };
        let mut drain =
            |sim_port: u16, socket: &LoopbackUdp, arrivals: &mut Vec<Datagram>| -> Result<()> {
                while let Some((len, from_port)) = socket.try_recv_into(&mut buf)? {
                    arrivals.push(Datagram {
                        from: SimAddr::new("127.0.0.1", from_port),
                        to: SimAddr { host: self.host.clone(), port: sim_port },
                        payload: bytes::Bytes::copy_from_slice(&buf[..len]),
                    });
                }
                Ok(())
            };
        if ready_refreshed {
            let ready = self.ready.as_ref().expect("refreshed above");
            for &idx in &ready.ready_idx {
                let (sim_port, socket) = &self.sockets[idx];
                drain(*sim_port, socket, &mut self.arrivals)?;
            }
        } else {
            for (sim_port, socket) in &self.sockets {
                drain(*sim_port, socket, &mut self.arrivals)?;
            }
        }
        self.pool.release(buf);
        for datagram in self.arrivals.drain(..) {
            self.sim.inject_datagram(datagram);
            forwarded += 1;
        }
        let elapsed = self.epoch.elapsed();
        self.sim.run_until(SimTime::from_micros(elapsed.as_micros() as u64));
        // Egress phase: forward everything deliverable first, then
        // surface any failure or misconfiguration — erroring mid-loop
        // would drop queued datagrams from correctly exposed ports.
        self.sim.drain_egress_into(&mut self.egress);
        let mut unexposed: Option<Datagram> = None;
        let mut send_error: Option<NetError> = None;
        for datagram in self.egress.drain(..) {
            match self.sockets.iter().find(|(port, _)| *port == datagram.from.port) {
                Some((_, socket)) => match socket.send_to(&datagram.payload, datagram.to.port) {
                    Ok(()) => forwarded += 1,
                    Err(err) => send_error = send_error.or(Some(err)),
                },
                None => unexposed = unexposed.or(Some(datagram)),
            }
        }
        if forwarded > 0 {
            self.backoff = None;
        }
        if let Some(err) = send_error {
            // The batch was finished above; only now report the first
            // send failure.
            return Err(err);
        }
        if let Some(datagram) = unexposed {
            // The actor emitted from a port `deploy` was not told about —
            // a misconfiguration that would otherwise look like silent
            // packet loss.
            return Err(NetError::Io(format!(
                "egress datagram from unexposed port {} (to {}): \
                 add it to UdpBridge::deploy's udp_ports",
                datagram.from.port, datagram.to
            )));
        }
        Ok(forwarded)
    }

    /// Pumps for up to `budget` real time until `done()` reports true,
    /// returning whether it was reached within the budget.
    ///
    /// Active passes (datagrams moved) loop back immediately; idle
    /// passes wait via [`GatewayLoop::idle_wait`] — blocked in
    /// `epoll_wait` when [`UdpBridge::enable_readiness`] succeeded
    /// (woken instantly by arrivals), or backing off with sleeps
    /// doubling up to 2 ms on the portable path — so a waiting gateway
    /// neither burns a core nor adds latency when traffic resumes
    /// mid-burst.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failures.
    pub fn pump_until(&mut self, budget: Duration, done: impl FnMut() -> bool) -> Result<bool> {
        GatewayLoop::pump_until(self, budget, done)
    }
}

impl GatewayLoop for UdpBridge {
    fn pump(&mut self) -> Result<usize> {
        UdpBridge::pump(self)
    }

    fn idle_wait(&mut self, timeout: Duration) {
        match &mut self.ready {
            Some(ready) => {
                // Blocked in epoll_wait: zero CPU while idle, woken the
                // instant a datagram lands (no sleep-quantum latency).
                self.stats.readiness_waits += 1;
                let _ = ready.wait(timeout);
            }
            None => {
                const MAX_BACKOFF: Duration = Duration::from_millis(2);
                match self.backoff {
                    None => {
                        std::thread::yield_now();
                        self.backoff = Some(Duration::from_micros(250));
                    }
                    Some(pause) => {
                        let pause = pause.min(timeout);
                        self.stats.backoff_sleeps += 1;
                        std::thread::sleep(pause);
                        self.backoff = Some((pause * 2).min(MAX_BACKOFF));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip() {
        let Ok(a) = LoopbackUdp::bind() else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            return;
        };
        let b = LoopbackUdp::bind().unwrap();
        a.send_to(b"ping", b.port().unwrap()).unwrap();
        let (payload, from) = b.recv().unwrap();
        assert_eq!(payload, b"ping");
        assert_eq!(from, a.port().unwrap());
    }

    #[test]
    fn concurrent_peers_echo() {
        let Ok(server) = LoopbackUdp::bind() else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            return;
        };
        let server_port = server.port().unwrap();
        let handle = std::thread::spawn(move || {
            let (payload, from) = server.recv().unwrap();
            server.send_to(&payload, from).unwrap();
        });
        let client = LoopbackUdp::bind().unwrap();
        client.send_to(b"echo?", server_port).unwrap();
        let (reply, _) = client.recv().unwrap();
        assert_eq!(reply, b"echo?");
        handle.join().unwrap();
    }

    #[test]
    fn nonblocking_try_recv_returns_none_when_idle() {
        let Ok(socket) = LoopbackUdp::bind_nonblocking() else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            return;
        };
        let start = Instant::now();
        assert!(socket.try_recv().unwrap().is_none());
        assert!(start.elapsed() < Duration::from_secs(1), "poll must not block");
    }

    #[test]
    fn configurable_timeout_bounds_recv() {
        let Ok(socket) = LoopbackUdp::bind_with_timeout(Duration::from_millis(20)) else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            return;
        };
        let start = Instant::now();
        assert!(socket.recv().is_err(), "nothing was sent");
        let elapsed = start.elapsed();
        assert!(elapsed < Duration::from_secs(2), "timeout not applied: {elapsed:?}");
    }

    #[test]
    fn udp_bridge_hosts_an_echo_actor_for_real_clients() {
        use crate::sim::{Actor, Context, Datagram};

        /// Echoes every datagram back to its sender.
        struct Echo;
        impl Actor for Echo {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(9).unwrap();
            }
            fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
                ctx.udp_send(9, datagram.from, datagram.payload);
            }
        }

        let Ok(mut bridge) = UdpBridge::deploy(1, "10.0.0.2", Echo, &[9]) else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            return;
        };
        let echo_port = bridge.real_port(9).unwrap();
        let client = LoopbackUdp::bind_nonblocking().unwrap();
        client.send_to(b"marco", echo_port).unwrap();
        let reply = wait_deadline(Duration::from_secs(5), || {
            bridge.pump()?;
            client.try_recv()
        })
        .unwrap();
        let (payload, _) = reply.expect("echo reply arrived");
        assert_eq!(payload, b"marco");
    }

    #[test]
    fn pooled_buffer_stale_bytes_are_bounded_by_the_receive_length() {
        // The dirty-buffer contract: a short datagram received into a
        // pooled buffer that previously held a long one leaves the long
        // one's tail in place — correct consumers read only `..len`.
        let Ok(receiver) = LoopbackUdp::bind_nonblocking() else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            return;
        };
        let sender = LoopbackUdp::bind().unwrap();
        let port = receiver.port().unwrap();
        let mut pool = BufferPool::new();

        let mut buf = pool.acquire();
        sender.send_to(&[0xAA; 100], port).unwrap();
        let (len, _) = wait_deadline(Duration::from_secs(5), || receiver.try_recv_into(&mut buf))
            .unwrap()
            .expect("long datagram arrived");
        assert_eq!(len, 100);
        pool.release(buf);

        let mut buf = pool.acquire();
        assert_eq!(buf.len(), MAX_DATAGRAM);
        assert_eq!(&buf[..100], &[0xAA; 100], "acquire hands back the dirty buffer by design");
        sender.send_to(b"hi", port).unwrap();
        let (len, _) = wait_deadline(Duration::from_secs(5), || receiver.try_recv_into(&mut buf))
            .unwrap()
            .expect("short datagram arrived");
        assert_eq!(len, 2);
        assert_eq!(&buf[..len], b"hi", "the reported length bounds the valid bytes");
        assert_eq!(buf[len], 0xAA, "bytes past the length are stale — never read them");
        pool.release(buf);
    }

    #[test]
    fn pump_finishes_the_egress_batch_before_reporting_a_send_error() {
        use crate::sim::{Actor, Context, Datagram};

        /// Replies twice per datagram: once to an unreachable
        /// destination (port 1 is almost never ours to receive on, but
        /// loopback `send_to` succeeds; the *failure* case is forced
        /// below by an oversized payload) and once to the sender.
        struct DoubleEcho;
        impl Actor for DoubleEcho {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.bind_udp(9).unwrap();
            }
            fn on_datagram(&mut self, ctx: &mut Context<'_>, datagram: Datagram) {
                // First egress datagram: oversized, so the real socket's
                // send fails with EMSGSIZE mid-batch.
                ctx.udp_send(9, datagram.from.clone(), bytes::Bytes::from(vec![0u8; 70_000]));
                // Second egress datagram: the deliverable echo.
                ctx.udp_send(9, datagram.from, datagram.payload);
            }
        }

        let Ok(mut bridge) = UdpBridge::deploy(1, "10.0.0.2", DoubleEcho, &[9]) else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            return;
        };
        let echo_port = bridge.real_port(9).unwrap();
        let client = LoopbackUdp::bind_nonblocking().unwrap();
        client.send_to(b"marco", echo_port).unwrap();
        // The pass that flushes the two replies must report the
        // oversized send's error — but only after finishing the batch,
        // so the echo still arrives.
        let mut saw_error = false;
        let reply = wait_deadline(Duration::from_secs(5), || {
            if bridge.pump().is_err() {
                saw_error = true;
            }
            client.try_recv()
        })
        .unwrap();
        let (payload, _) = reply.expect("echo reply survived the failed send in the same batch");
        assert_eq!(payload, b"marco");
        assert!(saw_error, "the oversized send's error must still be reported");
    }
}
