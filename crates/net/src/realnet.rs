//! A thin real-socket engine over `std::net` loopback.
//!
//! The simulator is the primary substrate for the evaluation (§VI runs
//! everything on one machine anyway), but the wire codecs are also
//! exercised over real UDP sockets here to demonstrate that nothing in
//! the stack depends on simulation artefacts. Multicast is not used —
//! sandboxed environments rarely route it — so peers address each other
//! directly on 127.0.0.1.

use crate::error::{NetError, Result};
use std::net::UdpSocket;
use std::time::Duration;

/// A bound UDP endpoint on 127.0.0.1 with an ephemeral port.
#[derive(Debug)]
pub struct LoopbackUdp {
    socket: UdpSocket,
}

impl LoopbackUdp {
    /// Binds an ephemeral UDP port on loopback.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when binding fails (e.g. no network
    /// namespace available).
    pub fn bind() -> Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| NetError::Io(e.to_string()))?;
        socket
            .set_read_timeout(Some(Duration::from_secs(5)))
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(LoopbackUdp { socket })
    }

    /// The bound port.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the local address cannot be read.
    pub fn port(&self) -> Result<u16> {
        Ok(self.socket.local_addr().map_err(|e| NetError::Io(e.to_string()))?.port())
    }

    /// Sends a datagram to another loopback port.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on socket failures.
    pub fn send_to(&self, payload: &[u8], port: u16) -> Result<()> {
        self.socket
            .send_to(payload, ("127.0.0.1", port))
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(())
    }

    /// Receives one datagram (blocking up to the configured timeout),
    /// returning the payload and the sender's port.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on timeout or socket failure.
    pub fn recv(&self) -> Result<(Vec<u8>, u16)> {
        let mut buf = vec![0u8; 65536];
        let (len, from) =
            self.socket.recv_from(&mut buf).map_err(|e| NetError::Io(e.to_string()))?;
        buf.truncate(len);
        Ok((buf, from.port()))
    }

    /// Sets the receive timeout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the option cannot be set.
    pub fn set_timeout(&self, timeout: Duration) -> Result<()> {
        self.socket.set_read_timeout(Some(timeout)).map_err(|e| NetError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip() {
        let Ok(a) = LoopbackUdp::bind() else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            return;
        };
        let b = LoopbackUdp::bind().unwrap();
        a.send_to(b"ping", b.port().unwrap()).unwrap();
        let (payload, from) = b.recv().unwrap();
        assert_eq!(payload, b"ping");
        assert_eq!(from, a.port().unwrap());
    }

    #[test]
    fn concurrent_peers_echo() {
        let Ok(server) = LoopbackUdp::bind() else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            return;
        };
        let server_port = server.port().unwrap();
        let handle = std::thread::spawn(move || {
            let (payload, from) = server.recv().unwrap();
            server.send_to(&payload, from).unwrap();
        });
        let client = LoopbackUdp::bind().unwrap();
        client.send_to(b"echo?", server_port).unwrap();
        let (reply, _) = client.recv().unwrap();
        assert_eq!(reply, b"echo?");
        handle.join().unwrap();
    }
}
