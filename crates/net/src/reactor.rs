//! The readiness-driven gateway reactor: many loopback sockets behind
//! one `epoll` instance, drained only when the kernel reports them
//! ready.
//!
//! [`UdpBridge`](crate::UdpBridge) hosts one actor behind a handful of
//! sockets; a production gateway front instead runs **N gateway
//! threads, each owning a [`GatewayReactor`]** over its share of the
//! socket set, sleeping in `epoll_wait` (zero CPU while idle, woken the
//! instant a datagram lands) and feeding arrival batches to the engine
//! shards. The wiring to `ShardedBridge` lives in `starlink-core`
//! (`ShardedGateway`); this layer knows only sockets, tags, and
//! readiness.
//!
//! Each socket is registered under a caller-chosen `tag` (for the
//! sharded gateway: shard index × simulated port). Registration is
//! **level-triggered**: a socket with queued data is reported by every
//! wait, so a drain pass interrupted mid-socket (batch budget, error)
//! loses nothing. An [`epoll::Waker`] is registered alongside the
//! sockets so another thread — e.g. a shard worker that just published
//! egress — can pop the reactor out of a blocking wait.

use crate::error::{NetError, Result};
use crate::realnet::{BufferPool, LoopbackUdp};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Whether this target supports the readiness reactor (Linux epoll).
/// Callers elsewhere fall back to polling loops — loudly, not silently.
pub fn readiness_supported() -> bool {
    epoll::supported()
}

/// Token reserved for the cross-thread waker.
const WAKER_TOKEN: u64 = u64::MAX;

/// Counters describing a reactor's life so far.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReactorStats {
    /// Blocking/zero-timeout waits performed.
    pub polls: u64,
    /// Waits interrupted by the cross-thread [`GatewayReactor::waker`].
    pub wakeups: u64,
    /// Datagrams drained from ready sockets.
    pub datagrams_in: u64,
    /// Datagrams sent out through [`GatewayReactor::send_from`].
    pub datagrams_out: u64,
}

struct Slot {
    tag: u64,
    socket: LoopbackUdp,
}

/// Many loopback sockets behind one `epoll` instance: add sockets under
/// tags, block in [`GatewayReactor::poll`] until some are ready, drain
/// **only those** into a caller-provided sink, and send egress back out
/// of the socket owning a tag.
pub struct GatewayReactor {
    readiness: epoll::Readiness,
    events: epoll::Events,
    waker: Arc<epoll::Waker>,
    slots: Vec<Slot>,
    by_tag: HashMap<u64, usize>,
    stats: ReactorStats,
}

impl std::fmt::Debug for GatewayReactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayReactor")
            .field("sockets", &self.slots.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl GatewayReactor {
    /// Creates an empty reactor (epoll instance + waker, no sockets).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] where epoll is unavailable (check
    /// [`readiness_supported`] first to fall back loudly).
    pub fn new() -> Result<Self> {
        let readiness = epoll::Readiness::new().map_err(|e| NetError::Io(e.to_string()))?;
        let waker = Arc::new(epoll::Waker::new().map_err(|e| NetError::Io(e.to_string()))?);
        readiness
            .register(waker.raw_fd(), WAKER_TOKEN, epoll::Interest::READABLE, epoll::Trigger::Level)
            .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(GatewayReactor {
            readiness,
            events: epoll::Events::with_capacity(512),
            waker,
            slots: Vec::new(),
            by_tag: HashMap::new(),
            stats: ReactorStats::default(),
        })
    }

    /// Binds a fresh non-blocking loopback socket, registers it under
    /// `tag`, and returns its real port.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the bind or registration fails, or
    /// when `tag` is already in use.
    pub fn add_socket(&mut self, tag: u64) -> Result<u16> {
        if self.by_tag.contains_key(&tag) {
            return Err(NetError::Io(format!("reactor tag {tag} already registered")));
        }
        let socket = LoopbackUdp::bind_nonblocking()?;
        let port = socket.port()?;
        let token = self.slots.len() as u64;
        self.readiness
            .register(socket.raw_fd(), token, epoll::Interest::READABLE, epoll::Trigger::Level)
            .map_err(|e| NetError::Io(e.to_string()))?;
        self.by_tag.insert(tag, self.slots.len());
        self.slots.push(Slot { tag, socket });
        Ok(port)
    }

    /// The real loopback port of the socket registered under `tag`.
    pub fn real_port(&self, tag: u64) -> Option<u16> {
        self.by_tag.get(&tag).and_then(|&idx| self.slots[idx].socket.port().ok())
    }

    /// Registered sockets.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no sockets are registered yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The cross-thread wakeup handle: [`epoll::Waker::wake`] from any
    /// thread pops this reactor out of a blocking [`GatewayReactor::poll`].
    pub fn waker(&self) -> Arc<epoll::Waker> {
        Arc::clone(&self.waker)
    }

    /// Counters so far.
    pub fn stats(&self) -> ReactorStats {
        self.stats
    }

    /// Waits (up to `timeout`; `None` blocks indefinitely) until some
    /// registered sockets are ready, then drains **only those** through
    /// one pooled buffer, calling `sink(tag, payload, from_port)` per
    /// datagram. Returns the number of datagrams drained — `0` means
    /// the timeout elapsed or the wait was interrupted by the waker.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on wait or socket failures.
    pub fn poll(
        &mut self,
        timeout: Option<Duration>,
        pool: &mut BufferPool,
        mut sink: impl FnMut(u64, &[u8], u16),
    ) -> Result<usize> {
        self.stats.polls += 1;
        self.readiness.wait(&mut self.events, timeout).map_err(|e| NetError::Io(e.to_string()))?;
        let mut drained = 0usize;
        let mut buf = pool.acquire();
        for event in self.events.iter() {
            if event.token == WAKER_TOKEN {
                self.waker.drain();
                self.stats.wakeups += 1;
                continue;
            }
            let slot = &self.slots[event.token as usize];
            while let Some((len, from_port)) = slot.socket.try_recv_into(&mut buf)? {
                sink(slot.tag, &buf[..len], from_port);
                drained += 1;
            }
        }
        pool.release(buf);
        self.stats.datagrams_in += drained as u64;
        Ok(drained)
    }

    /// Sends `payload` to `127.0.0.1:to_port` out of the socket
    /// registered under `tag` — the egress half of the gateway loop.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the tag is unknown or the send
    /// fails.
    pub fn send_from(&mut self, tag: u64, payload: &[u8], to_port: u16) -> Result<()> {
        let &idx = self
            .by_tag
            .get(&tag)
            .ok_or_else(|| NetError::Io(format!("reactor tag {tag} not registered")))?;
        self.slots[idx].socket.send_to(payload, to_port)?;
        self.stats.datagrams_out += 1;
        Ok(())
    }

    /// Rebuilds the epoll instance and re-registers every socket and
    /// the waker — the fd-churn recovery path (e.g. after the epoll fd
    /// was lost across a fork/restart boundary). The **sockets are
    /// kept**, so every tag's [`GatewayReactor::real_port`] is stable
    /// across the rebuild and clients holding old ports stay routable.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the new instance cannot be built;
    /// the old one is already gone, so treat failure as fatal.
    pub fn rebuild(&mut self) -> Result<()> {
        let readiness = epoll::Readiness::new().map_err(|e| NetError::Io(e.to_string()))?;
        readiness
            .register(
                self.waker.raw_fd(),
                WAKER_TOKEN,
                epoll::Interest::READABLE,
                epoll::Trigger::Level,
            )
            .map_err(|e| NetError::Io(e.to_string()))?;
        for (token, slot) in self.slots.iter().enumerate() {
            readiness
                .register(
                    slot.socket.raw_fd(),
                    token as u64,
                    epoll::Interest::READABLE,
                    epoll::Trigger::Level,
                )
                .map_err(|e| NetError::Io(e.to_string()))?;
        }
        self.readiness = readiness;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reactor_or_skip() -> Option<GatewayReactor> {
        if !readiness_supported() {
            eprintln!("skipping: epoll readiness unavailable on this target");
            return None;
        }
        match GatewayReactor::new() {
            Ok(reactor) => Some(reactor),
            Err(err) => {
                eprintln!("skipping: reactor construction failed: {err}");
                None
            }
        }
    }

    #[test]
    fn drains_only_ready_sockets() {
        let Some(mut reactor) = reactor_or_skip() else { return };
        let quiet_tag = 1u64;
        let busy_tag = 2u64;
        reactor.add_socket(quiet_tag).unwrap();
        let busy_port = reactor.add_socket(busy_tag).unwrap();
        let client = LoopbackUdp::bind().unwrap();
        client.send_to(b"only-for-busy", busy_port).unwrap();
        let mut pool = BufferPool::new();
        let mut seen = Vec::new();
        let drained = reactor
            .poll(Some(Duration::from_secs(2)), &mut pool, |tag, payload, _| {
                seen.push((tag, payload.to_vec()));
            })
            .unwrap();
        assert_eq!(drained, 1);
        assert_eq!(seen, vec![(busy_tag, b"only-for-busy".to_vec())]);
    }

    #[test]
    fn send_from_uses_the_tagged_socket() {
        let Some(mut reactor) = reactor_or_skip() else { return };
        let tag = 7u64;
        let port = reactor.add_socket(tag).unwrap();
        let client = LoopbackUdp::bind_with_timeout(Duration::from_secs(2)).unwrap();
        reactor.send_from(tag, b"hello", client.port().unwrap()).unwrap();
        let (payload, from) = client.recv().unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(from, port, "egress leaves through the tag's own socket");
        assert!(reactor.send_from(99, b"x", port).is_err(), "unknown tag is an error");
    }

    #[test]
    fn waker_interrupts_a_blocking_poll() {
        let Some(mut reactor) = reactor_or_skip() else { return };
        reactor.add_socket(1).unwrap();
        let waker = reactor.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut pool = BufferPool::new();
        let start = std::time::Instant::now();
        let drained = reactor.poll(Some(Duration::from_secs(10)), &mut pool, |_, _, _| {}).unwrap();
        assert_eq!(drained, 0, "a wakeup is not traffic");
        assert!(start.elapsed() < Duration::from_secs(5), "waker did not interrupt the wait");
        assert_eq!(reactor.stats().wakeups, 1);
        handle.join().unwrap();
    }

    #[test]
    fn rebuild_keeps_ports_and_delivery() {
        let Some(mut reactor) = reactor_or_skip() else { return };
        let tags = [10u64, 11, 12];
        let ports: Vec<u16> = tags.iter().map(|&t| reactor.add_socket(t).unwrap()).collect();
        reactor.rebuild().unwrap();
        for (tag, port) in tags.iter().zip(&ports) {
            assert_eq!(reactor.real_port(*tag), Some(*port), "real_port stable across rebuild");
        }
        let client = LoopbackUdp::bind().unwrap();
        client.send_to(b"post-rebuild", ports[1]).unwrap();
        let mut pool = BufferPool::new();
        let mut seen = Vec::new();
        reactor
            .poll(Some(Duration::from_secs(2)), &mut pool, |tag, payload, _| {
                seen.push((tag, payload.to_vec()));
            })
            .unwrap();
        assert_eq!(seen, vec![(11u64, b"post-rebuild".to_vec())]);
    }
}
