//! Simulated addresses: hosts are named by IPv4-style strings, endpoints
//! add a port, and multicast groups are `239.x`/`224.x` style addresses
//! that hosts join.

use crate::error::{NetError, Result};
use std::fmt;
use std::sync::Arc;

/// A host + port endpoint in the simulated network.
///
/// The host is a shared string: cloning an address — which the simulator
/// does for every scheduled delivery — bumps a reference count instead of
/// copying the text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimAddr {
    /// Host address string (e.g. `"10.0.0.1"` or `"239.255.255.253"`).
    pub host: Arc<str>,
    /// Port number.
    pub port: u16,
}

impl SimAddr {
    /// Creates an endpoint.
    pub fn new(host: impl Into<Arc<str>>, port: u16) -> Self {
        SimAddr { host: host.into(), port }
    }

    /// Parses `"host:port"`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidAddress`] when the port is missing or
    /// non-numeric.
    pub fn parse(text: &str) -> Result<Self> {
        let (host, port) =
            text.rsplit_once(':').ok_or_else(|| NetError::InvalidAddress(text.to_owned()))?;
        let port = port.parse::<u16>().map_err(|_| NetError::InvalidAddress(text.to_owned()))?;
        if host.is_empty() {
            return Err(NetError::InvalidAddress(text.to_owned()));
        }
        Ok(SimAddr::new(host, port))
    }

    /// True when the host address is in the IPv4 multicast range
    /// (224.0.0.0 – 239.255.255.255).
    pub fn is_multicast(&self) -> bool {
        self.host
            .split('.')
            .next()
            .and_then(|octet| octet.parse::<u8>().ok())
            .map(|octet| (224..=239).contains(&octet))
            .unwrap_or(false)
    }
}

impl fmt::Display for SimAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let addr = SimAddr::parse("239.255.255.253:427").unwrap();
        assert_eq!(addr.host.as_ref(), "239.255.255.253");
        assert_eq!(addr.port, 427);
        assert_eq!(addr.to_string(), "239.255.255.253:427");
    }

    #[test]
    fn parse_rejects_bad_addresses() {
        for bad in ["nohost", "h:", ":80", "h:notaport", "h:99999"] {
            assert!(SimAddr::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn multicast_detection() {
        assert!(SimAddr::new("239.255.255.250", 1900).is_multicast());
        assert!(SimAddr::new("224.0.0.251", 5353).is_multicast());
        assert!(!SimAddr::new("10.0.0.1", 80).is_multicast());
        assert!(!SimAddr::new("localhost", 80).is_multicast());
    }
}
