//! Link latency models. Deterministic given a seed: jitter comes from the
//! simulation's own RNG stream, so every 100-run sweep of the Fig. 12
//! harness regenerates identical tables.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::Rng;

/// How long a packet takes from one host to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every delivery takes exactly this long.
    Fixed(SimDuration),
    /// Uniformly distributed in `[min, max]`.
    Uniform {
        /// Lower bound (inclusive).
        min: SimDuration,
        /// Upper bound (inclusive).
        max: SimDuration,
    },
}

impl LatencyModel {
    /// A conventional same-host latency (the paper ran client, service and
    /// bridge on one machine "to avoid measuring additional network
    /// latency"): 0.2–0.6 ms, the cost of loopback + stack traversal.
    pub fn local_machine() -> Self {
        LatencyModel::Uniform {
            min: SimDuration::from_micros(200),
            max: SimDuration::from_micros(600),
        }
    }

    /// Samples a delivery latency.
    pub fn sample(&self, rng: &mut StdRng) -> SimDuration {
        match self {
            LatencyModel::Fixed(latency) => *latency,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo);
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::local_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_is_constant() {
        let model = LatencyModel::Fixed(SimDuration::from_millis(5));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(model.sample(&mut rng), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let model = LatencyModel::Uniform {
            min: SimDuration::from_micros(100),
            max: SimDuration::from_micros(200),
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let sample = model.sample(&mut rng);
            assert!(sample >= SimDuration::from_micros(100));
            assert!(sample <= SimDuration::from_micros(200));
        }
    }

    #[test]
    fn same_seed_same_samples() {
        let model = LatencyModel::local_machine();
        let a: Vec<_> = (0..20).map(|_| model.sample(&mut StdRng::seed_from_u64(3))).collect();
        let b: Vec<_> = (0..20).map(|_| model.sample(&mut StdRng::seed_from_u64(3))).collect();
        assert_eq!(a, b);
    }
}
