//! Offline shim for the `bytes` crate: an immutable, cheaply clonable
//! byte buffer. Cloning shares the underlying allocation (`Arc`), which
//! is what the network simulator relies on when fanning a multicast
//! payload out to many receivers.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the content into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            for escaped in std::ascii::escape_default(byte) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes { data: Arc::from(data.into_bytes()) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn conversions_and_views() {
        let b: Bytes = (&b"hello"[..]).into();
        assert_eq!(b.len(), 5);
        assert_eq!(&b[1..3], b"el");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert_eq!(format!("{b:?}"), "b\"hello\"");
    }
}
