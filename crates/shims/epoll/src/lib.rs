//! Offline shim for epoll-style readiness polling: `extern "C"`
//! bindings to `epoll_create1`/`epoll_ctl`/`epoll_wait` (plus `eventfd`
//! for cross-thread wakeups) under a safe [`Readiness`] wrapper.
//!
//! The build environment has no crates registry, so instead of `mio` or
//! the `epoll` crate this shim binds the three syscalls directly —
//! exactly the fxhash/rand-shim pattern, covering only the surface the
//! workspace needs. All `unsafe` in the workspace lives here; every
//! dependent crate keeps `#![forbid(unsafe_code)]`.
//!
//! ## Semantics
//!
//! A [`Readiness`] instance owns one epoll file descriptor. Sockets are
//! registered by raw fd with a caller-chosen `token` (returned verbatim
//! in [`Event`]s) and a [`Trigger`]:
//!
//! * [`Trigger::Level`] — a registered fd is reported by **every**
//!   [`Readiness::wait`] while it stays ready (data still queued). A
//!   consumer that drains incompletely is re-notified; this is the
//!   forgiving mode the gateway reactor uses.
//! * [`Trigger::Edge`] — a readiness **transition** is reported once;
//!   the fd is silent until new readiness arrives (more data queued),
//!   so consumers must drain to `WouldBlock` before waiting again.
//!
//! Both semantics are locked in by tests below. [`Waker`] wraps an
//! `eventfd` so another thread can interrupt a blocking wait — the
//! shard workers use it to tell a sleeping reactor that egress landed.
//!
//! On non-Linux targets the module compiles but [`Readiness::new`] and
//! [`Waker::new`] return [`std::io::ErrorKind::Unsupported`] and
//! [`supported`] is `false`; callers fall back to polling loops.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

/// A raw file descriptor (`std::os::fd::RawFd` without the `cfg(unix)`
/// gate, so the API surface is identical on every target).
pub type RawFd = i32;

#[cfg(target_os = "linux")]
mod sys {
    #![allow(non_camel_case_types)]

    pub type c_int = i32;
    pub type c_uint = u32;

    /// The kernel's `struct epoll_event`. On x86 and x86-64 the kernel
    /// declares it `__attribute__((packed))`; elsewhere it has natural
    /// alignment — getting this wrong corrupts every reported event.
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86_64", target_arch = "x86")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }
}

/// Whether this target has a real epoll implementation. `false` means
/// every constructor returns [`std::io::ErrorKind::Unsupported`] and
/// callers should use their polling fallback.
pub const fn supported() -> bool {
    cfg!(target_os = "linux")
}

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// Readable-only interest (the common gateway-socket case).
    pub const READABLE: Interest = Interest { readable: true, writable: false };
    /// Writable-only interest (egress backpressure drain).
    pub const WRITABLE: Interest = Interest { readable: false, writable: true };
    /// Both directions.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
}

/// Level- vs edge-triggered reporting (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Report on every wait while the fd stays ready.
    Level,
    /// Report once per readiness transition.
    Edge,
}

/// One readiness report: the registration's `token` plus what happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Data can be read (or a peer connected / the fd hung up with data
    /// pending — always attempt the read).
    pub readable: bool,
    /// The fd accepts writes again.
    pub writable: bool,
    /// Error condition (`EPOLLERR`); the next I/O call will surface it.
    pub error: bool,
    /// Hangup (`EPOLLHUP`).
    pub hangup: bool,
}

/// Reusable event buffer for [`Readiness::wait`] — allocate once, reuse
/// every iteration.
pub struct Events {
    #[cfg(target_os = "linux")]
    buf: Vec<sys::epoll_event>,
    len: usize,
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events").field("len", &self.len).finish()
    }
}

impl Events {
    /// A buffer reporting up to `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Events {
            #[cfg(target_os = "linux")]
            buf: vec![sys::epoll_event { events: 0, data: 0 }; capacity],
            len: 0,
        }
    }

    /// Events reported by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last wait reported nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the events of the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        #[cfg(target_os = "linux")]
        {
            self.buf[..self.len].iter().map(|raw| {
                // Copy out of the (possibly packed) kernel struct before
                // touching the fields.
                let events = raw.events;
                let data = raw.data;
                Event {
                    token: data,
                    readable: events & (sys::EPOLLIN | sys::EPOLLHUP) != 0,
                    writable: events & sys::EPOLLOUT != 0,
                    error: events & sys::EPOLLERR != 0,
                    hangup: events & sys::EPOLLHUP != 0,
                }
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            std::iter::empty()
        }
    }
}

impl Default for Events {
    fn default() -> Self {
        Events::with_capacity(256)
    }
}

/// A safe wrapper over one epoll instance: register raw fds with
/// tokens, then block in [`Readiness::wait`] until one is ready.
///
/// Dropping deregisters nothing explicitly — closing the epoll fd
/// releases the whole interest set (the kernel removes entries when the
/// watched fds close, too).
#[derive(Debug)]
pub struct Readiness {
    epfd: RawFd,
}

impl Readiness {
    /// Creates an epoll instance (`epoll_create1(EPOLL_CLOEXEC)`).
    ///
    /// # Errors
    ///
    /// The syscall's error, or [`io::ErrorKind::Unsupported`] on
    /// non-Linux targets.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Readiness { epfd })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::new(io::ErrorKind::Unsupported, "epoll is Linux-only"))
        }
    }

    #[cfg(target_os = "linux")]
    fn ctl(
        &self,
        op: sys::c_int,
        fd: RawFd,
        mut event: Option<sys::epoll_event>,
    ) -> io::Result<()> {
        let ptr = event.as_mut().map_or(std::ptr::null_mut(), std::ptr::from_mut);
        if unsafe { sys::epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    #[cfg(target_os = "linux")]
    fn event_bits(interest: Interest, trigger: Trigger) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= sys::EPOLLIN;
        }
        if interest.writable {
            bits |= sys::EPOLLOUT;
        }
        if trigger == Trigger::Edge {
            bits |= sys::EPOLLET;
        }
        bits
    }

    /// Adds `fd` to the interest set; `token` comes back in every
    /// [`Event`] for it.
    ///
    /// # Errors
    ///
    /// The `EPOLL_CTL_ADD` error (e.g. `EEXIST` when already
    /// registered).
    #[allow(unused_variables)]
    pub fn register(
        &self,
        fd: RawFd,
        token: u64,
        interest: Interest,
        trigger: Trigger,
    ) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let event =
                sys::epoll_event { events: Self::event_bits(interest, trigger), data: token };
            self.ctl(sys::EPOLL_CTL_ADD, fd, Some(event))
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::new(io::ErrorKind::Unsupported, "epoll is Linux-only"))
        }
    }

    /// Changes an existing registration's token, interest or trigger.
    ///
    /// # Errors
    ///
    /// The `EPOLL_CTL_MOD` error (e.g. `ENOENT` when not registered).
    #[allow(unused_variables)]
    pub fn modify(
        &self,
        fd: RawFd,
        token: u64,
        interest: Interest,
        trigger: Trigger,
    ) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            let event =
                sys::epoll_event { events: Self::event_bits(interest, trigger), data: token };
            self.ctl(sys::EPOLL_CTL_MOD, fd, Some(event))
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::new(io::ErrorKind::Unsupported, "epoll is Linux-only"))
        }
    }

    /// Removes `fd` from the interest set.
    ///
    /// # Errors
    ///
    /// The `EPOLL_CTL_DEL` error.
    #[allow(unused_variables)]
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            self.ctl(sys::EPOLL_CTL_DEL, fd, None)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::new(io::ErrorKind::Unsupported, "epoll is Linux-only"))
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses (`events` left empty), or a [`Waker`] fires. `None`
    /// blocks indefinitely. Sub-millisecond timeouts round **up** so a
    /// short timeout never degenerates into a busy spin. `EINTR`
    /// retries transparently.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` error.
    #[allow(unused_variables)]
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        {
            let ms: sys::c_int = match timeout {
                None => -1,
                Some(t) => t
                    .as_millis()
                    .try_into()
                    .map(|ms: u64| if t.subsec_nanos() % 1_000_000 != 0 { ms + 1 } else { ms })
                    .unwrap_or(u64::from(u32::MAX))
                    .min(sys::c_int::MAX as u64) as sys::c_int,
            };
            loop {
                let n = unsafe {
                    sys::epoll_wait(
                        self.epfd,
                        events.buf.as_mut_ptr(),
                        events.buf.len() as sys::c_int,
                        ms,
                    )
                };
                if n >= 0 {
                    events.len = n as usize;
                    return Ok(events.len);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    events.len = 0;
                    return Err(err);
                }
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            events.len = 0;
            Err(io::Error::new(io::ErrorKind::Unsupported, "epoll is Linux-only"))
        }
    }
}

impl Drop for Readiness {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        unsafe {
            sys::close(self.epfd);
        }
    }
}

// The epoll fd is just a kernel handle; waiting and registering from
// several threads is what the API is for.
unsafe impl Send for Readiness {}
unsafe impl Sync for Readiness {}

/// An `eventfd`-backed wakeup handle: [`Waker::wake`] from any thread
/// makes the fd readable, interrupting a blocked [`Readiness::wait`]
/// where it is registered. Drain with [`Waker::drain`] after waking up,
/// or the (level-triggered) registration keeps reporting it.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a non-blocking eventfd.
    ///
    /// # Errors
    ///
    /// The `eventfd` error, or [`io::ErrorKind::Unsupported`] on
    /// non-Linux targets.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Waker { fd })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(io::Error::new(io::ErrorKind::Unsupported, "eventfd is Linux-only"))
        }
    }

    /// The fd to register with a [`Readiness`] (readable, level).
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the fd readable (adds 1 to the eventfd counter). Safe from
    /// any thread; wakes a concurrent or future wait.
    pub fn wake(&self) {
        #[cfg(target_os = "linux")]
        {
            let one = 1u64.to_ne_bytes();
            // A full counter (EAGAIN) still leaves the fd readable —
            // the wake is already pending, so the result is ignorable.
            let _ = unsafe { sys::write(self.fd, one.as_ptr(), one.len()) };
        }
    }

    /// Clears pending wakes (reads the counter). Returns whether any
    /// wake was pending.
    pub fn drain(&self) -> bool {
        #[cfg(target_os = "linux")]
        {
            let mut buf = [0u8; 8];
            (unsafe { sys::read(self.fd, buf.as_mut_ptr(), buf.len()) }) == 8
        }
        #[cfg(not(target_os = "linux"))]
        {
            false
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        unsafe {
            sys::close(self.fd);
        }
    }
}

unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::os::fd::AsRawFd;

    fn pair() -> (UdpSocket, UdpSocket) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn send(from: &UdpSocket, to: &UdpSocket, payload: &[u8]) {
        from.send_to(payload, to.local_addr().unwrap()).unwrap();
    }

    #[test]
    fn timeout_expires_on_empty_set() {
        let readiness = Readiness::new().unwrap();
        let mut events = Events::with_capacity(4);
        let start = std::time::Instant::now();
        let n = readiness.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(15), "returned early");
    }

    #[test]
    fn level_trigger_reports_until_drained() {
        let (tx, rx) = pair();
        let readiness = Readiness::new().unwrap();
        readiness.register(rx.as_raw_fd(), 7, Interest::READABLE, Trigger::Level).unwrap();
        send(&tx, &rx, b"one");
        let mut events = Events::default();
        // Reported while data stays queued — on every wait.
        for _ in 0..3 {
            readiness.wait(&mut events, Some(Duration::from_secs(2))).unwrap();
            let reported: Vec<Event> = events.iter().collect();
            assert_eq!(reported.len(), 1);
            assert_eq!(reported[0].token, 7);
            assert!(reported[0].readable);
        }
        // Draining silences it.
        let mut buf = [0u8; 16];
        rx.recv_from(&mut buf).unwrap();
        let n = readiness.wait(&mut events, Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0, "drained level-triggered fd must go quiet");
    }

    #[test]
    fn edge_trigger_reports_once_per_arrival() {
        let (tx, rx) = pair();
        let readiness = Readiness::new().unwrap();
        readiness.register(rx.as_raw_fd(), 9, Interest::READABLE, Trigger::Edge).unwrap();
        send(&tx, &rx, b"one");
        let mut events = Events::default();
        assert_eq!(readiness.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        // Undrained, but edge-triggered: no new transition, no report.
        assert_eq!(readiness.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
        // New data is a new edge even without draining the old.
        send(&tx, &rx, b"two");
        assert_eq!(readiness.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
    }

    #[test]
    fn waker_interrupts_a_blocking_wait() {
        let readiness = Readiness::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        readiness.register(waker.raw_fd(), u64::MAX, Interest::READABLE, Trigger::Level).unwrap();
        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        let mut events = Events::default();
        let start = std::time::Instant::now();
        readiness.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "wake did not interrupt");
        assert_eq!(events.iter().next().unwrap().token, u64::MAX);
        assert!(waker.drain());
        // Drained: quiet again.
        assert_eq!(readiness.wait(&mut events, Some(Duration::from_millis(10))).unwrap(), 0);
        handle.join().unwrap();
    }

    #[test]
    fn deregister_silences_and_reregister_restores() {
        let (tx, rx) = pair();
        let readiness = Readiness::new().unwrap();
        readiness.register(rx.as_raw_fd(), 1, Interest::READABLE, Trigger::Level).unwrap();
        send(&tx, &rx, b"x");
        let mut events = Events::default();
        assert_eq!(readiness.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        readiness.deregister(rx.as_raw_fd()).unwrap();
        assert_eq!(readiness.wait(&mut events, Some(Duration::from_millis(20))).unwrap(), 0);
        // Re-registration with a fresh token sees the still-queued data
        // (level) — fd churn loses no state that matters.
        readiness.register(rx.as_raw_fd(), 2, Interest::READABLE, Trigger::Level).unwrap();
        assert_eq!(readiness.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        assert_eq!(events.iter().next().unwrap().token, 2);
    }

    #[test]
    fn a_rebuilt_instance_can_rewatch_the_same_fds() {
        // The fd-churn scenario of the gateway rebind test, at the shim
        // level: dropping the epoll instance and building a new one over
        // the same sockets keeps working (ports are a socket property,
        // not an epoll one).
        let (tx, rx) = pair();
        let first = Readiness::new().unwrap();
        first.register(rx.as_raw_fd(), 3, Interest::READABLE, Trigger::Level).unwrap();
        drop(first);
        let second = Readiness::new().unwrap();
        second.register(rx.as_raw_fd(), 4, Interest::READABLE, Trigger::Level).unwrap();
        send(&tx, &rx, b"still here");
        let mut events = Events::default();
        assert_eq!(second.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        assert_eq!(events.iter().next().unwrap().token, 4);
    }

    #[test]
    fn modify_switches_token_and_interest() {
        let (tx, rx) = pair();
        let readiness = Readiness::new().unwrap();
        readiness.register(rx.as_raw_fd(), 5, Interest::READABLE, Trigger::Level).unwrap();
        readiness.modify(rx.as_raw_fd(), 6, Interest::READABLE, Trigger::Level).unwrap();
        send(&tx, &rx, b"y");
        let mut events = Events::default();
        assert_eq!(readiness.wait(&mut events, Some(Duration::from_secs(2))).unwrap(), 1);
        assert_eq!(events.iter().next().unwrap().token, 6);
    }
}
